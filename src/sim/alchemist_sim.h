// Cycle-level simulator of the Alchemist accelerator.
//
// Model (matching §5 of the paper):
//  * An op graph is executed level by level (ASAP schedule over the DAG).
//  * Every high-level op lowers to Meta-OP batches; a Meta-OP occupies one
//    core for n + 2 cycles. Batches spread over all num_units *
//    cores_per_unit cores (slot partitioning makes units independent, so the
//    distribution is uniform; a partially-filled last wave still costs a full
//    n + 2 window — the "tail" loss).
//  * 4-step NTTs pay one global transpose through the transpose register
//    file, which moves num_units * lanes words per cycle and is serialized
//    between the two NTT phases.
//  * Off-chip traffic (evk streaming) is double-buffered against compute:
//    a level's wall time is max(compute, HBM); the excess is a memory stall.
//
// Telemetry: when `config.telemetry` is set and a Timeline sink is passed,
// the simulator records one Chrome-trace slice per op (on its operator
// class's unit-group track), per-op HBM streaming slices, transpose slices
// and per-level scheduler frames. Recording never changes the accounting —
// the returned SimResult is bit-identical with telemetry on or off.
//
// Fault modeling: an optional fault::FaultModel degrades the machine
// (permanent unit masks re-partition the slot stripe over the healthy units,
// DMR halves effective cores) and injects seed-deterministic transient
// faults whose mitigation cost (retries, corrections) is charged per op and
// counted under fault.* metrics. A model with zero rates, no mask and a
// non-DMR policy — or no model at all — leaves the results bit-identical to
// the fault-free simulator.
//
// Profiling: an optional sim::UnitProfiler attributes every cycle of every
// unit to utilization.v1 buckets (SimResult.profile) without perturbing the
// result. Profiling is unavailable on checkpoint-resumed runs — the skipped
// levels were accounted elsewhere — so the engine drops the profiler when it
// restores a checkpoint and the profile comes back empty.
//
// Memory profiling: an optional sim::MemProfiler attributes every streamed
// HBM byte to (operand class x op class), keeps the key-reuse ledger and the
// bandwidth/occupancy timelines (SimResult.mem_profile, schema memory.v1) —
// again without perturbing the result. Unlike the UnitProfiler it DOES
// survive checkpoint/resume: the engine serializes its accumulators into the
// checkpoint state blob (schema v2) and restores them, so a resumed run's
// memory.v1 is bit-identical to an uninterrupted one. Resuming a checkpoint
// written without memory state drops the profiler (the skipped prefix cannot
// be attributed).
//
// Execution control: an optional sim::SimControl makes the run cooperative —
// a step here is one ASAP level. The engine polls the CancelToken / step
// budget before each level, snapshots its cursor (completed levels, cycle
// accumulators, registry, fault totals) into the attached Checkpoint, and
// throws CancelledError on stop. A valid incoming checkpoint resumes the run:
// completed levels are skipped (the fault RNG is replayed over them so
// transient sampling stays aligned; the fault model must be in its seed
// state) and the final SimResult is bit-identical to an uninterrupted run.
#pragma once

#include "arch/config.h"
#include "fault/fault_model.h"
#include "metaop/op_graph.h"
#include "obs/timeline.h"
#include "sim/result.h"
#include "sim/mem_profiler.h"
#include "sim/sim_control.h"
#include "sim/unit_profiler.h"

namespace alchemist::sim {

SimResult simulate_alchemist(const metaop::OpGraph& graph,
                             const arch::ArchConfig& config,
                             obs::Timeline* timeline = nullptr,
                             fault::FaultModel* fault_model = nullptr,
                             SimControl* control = nullptr,
                             UnitProfiler* profiler = nullptr,
                             MemProfiler* mem_profiler = nullptr);

}  // namespace alchemist::sim
