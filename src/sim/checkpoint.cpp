#include "sim/checkpoint.h"

#include <algorithm>

namespace alchemist::sim {

namespace {

constexpr std::uint64_t kMagic = 0x414c'4348'434b'5031ull;  // "ALCHCKP1"
// v2: the level-engine state blob carries an optional MemProfiler frame
// (memory.v1 attribution survives resume). Old blobs lack the frame, so v1
// streams are rejected rather than misparsed.
constexpr std::uint64_t kVersion = 2;

}  // namespace

std::vector<std::uint8_t> Checkpoint::serialize() const {
  BinaryWriter w;
  w.write_u64(kMagic);
  w.write_u64(kVersion);
  w.write_tag(engine);
  w.write_tag(workload);
  w.write_u64(op_count);
  w.write_u64(fingerprint);
  w.write_u64(step);
  w.write_bytes(state);
  w.write_u64(w.checksum_since(0));
  return w.buffer();
}

Checkpoint Checkpoint::deserialize(const std::vector<std::uint8_t>& bytes) {
  try {
    BinaryReader r(bytes);
    if (r.read_u64() != kMagic) throw CheckpointError("checkpoint: bad magic");
    if (r.read_u64() != kVersion) throw CheckpointError("checkpoint: unsupported version");
    Checkpoint cp;
    cp.engine = r.read_string(64);
    cp.workload = r.read_string(1024);
    cp.op_count = r.read_u64();
    cp.fingerprint = r.read_u64();
    cp.step = r.read_u64();
    cp.state = r.read_bytes();
    // The footer digests every byte before itself; recompute over the bytes
    // consumed so far, then read the stored value.
    const std::uint64_t actual = r.checksum_since(0);
    const std::uint64_t declared = r.read_u64();
    if (declared != actual) {
      throw CheckpointError("checkpoint: integrity footer mismatch");
    }
    if (!r.at_end()) throw CheckpointError("checkpoint: trailing bytes");
    if (cp.engine != kLevelEngine && cp.engine != kEventEngine) {
      throw CheckpointError("checkpoint: unknown engine '" + cp.engine + "'");
    }
    return cp;
  } catch (const CheckpointError&) {
    throw;
  } catch (const std::exception& e) {
    // Truncation and length-cap failures surface from BinaryReader as
    // std::runtime_error; re-type them so callers catch one exception.
    throw CheckpointError(std::string("checkpoint: ") + e.what());
  }
}

std::uint64_t sim_fingerprint(const arch::ArchConfig& config,
                              const fault::FaultModel* fault_model) {
  BinaryWriter w;
  w.write_u64(config.num_units);
  w.write_u64(config.cores_per_unit);
  w.write_u64(config.lanes);
  w.write_double(config.freq_ghz);
  w.write_u64(static_cast<std::uint64_t>(config.local_sram_kb));
  w.write_u64(static_cast<std::uint64_t>(config.shared_sram_kb));
  w.write_double(config.hbm_bw_gb_s);
  w.write_u64(static_cast<std::uint64_t>(config.word_bits));
  if (fault_model != nullptr) {
    const fault::FaultConfig& fc = fault_model->config();
    w.write_u64(fc.seed);
    w.write_double(fc.compute_fault_rate);
    w.write_double(fc.sram_fault_rate);
    w.write_double(fc.hbm_fault_rate);
    std::vector<u64> mask(fc.masked_units.begin(), fc.masked_units.end());
    std::sort(mask.begin(), mask.end());
    w.write_u64_vector(mask);
    w.write_u64(static_cast<std::uint64_t>(fc.policy));
    w.write_u64(fc.max_retries);
  }
  return fnv1a(w.buffer());
}

void write_registry(BinaryWriter& w, const obs::Registry& reg) {
  w.write_u64(reg.counters().size());
  for (const auto& [key, value] : reg.counters()) {
    w.write_tag(key);
    w.write_u64(value);
  }
  w.write_u64(reg.gauges().size());
  for (const auto& [key, value] : reg.gauges()) {
    w.write_tag(key);
    w.write_double(value);
  }
}

void read_registry(BinaryReader& r, obs::Registry& reg) {
  reg.clear();
  const std::uint64_t n_counters = r.read_u64();
  for (std::uint64_t i = 0; i < n_counters; ++i) {
    // Keys are already canonical (metric_key of a tagless add is the name
    // verbatim), so re-adding under the stored key reproduces the exact map.
    const std::string key = r.read_string();
    reg.add(key, r.read_u64());
  }
  const std::uint64_t n_gauges = r.read_u64();
  for (std::uint64_t i = 0; i < n_gauges; ++i) {
    const std::string key = r.read_string();
    reg.set_gauge(key, r.read_double());
  }
}

}  // namespace alchemist::sim
