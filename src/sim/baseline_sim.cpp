#include "sim/baseline_sim.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "metaop/metaop.h"
#include "metaop/mult_count.h"

namespace alchemist::sim {

namespace {

using metaop::class_of;
using metaop::class_tag;
using metaop::HighOp;
using metaop::kNumOpClasses;
using metaop::OpClass;
using metaop::OpGraph;
using metaop::OpKind;

// Engine index: 0 = NTTU, 1 = BconvU, 2 = element-wise/MAC engine.
int engine_of(OpKind kind) {
  switch (kind) {
    case OpKind::Ntt:
    case OpKind::Intt: return 0;
    case OpKind::Bconv: return 1;
    default: return 2;  // DecompPolyMult and elementwise run on the MAC engine
  }
}

std::vector<std::vector<std::size_t>> asap_levels(const OpGraph& graph) {
  std::vector<std::size_t> level(graph.ops.size(), 0);
  std::size_t max_level = 0;
  for (std::size_t i = 0; i < graph.ops.size(); ++i) {
    for (std::size_t dep : graph.ops[i].deps) {
      if (dep >= i) throw std::invalid_argument("simulate: deps must point backwards");
      level[i] = std::max(level[i], level[dep] + 1);
    }
    max_level = std::max(max_level, level[i]);
  }
  std::vector<std::vector<std::size_t>> levels(max_level + 1);
  for (std::size_t i = 0; i < graph.ops.size(); ++i) levels[level[i]].push_back(i);
  return levels;
}

}  // namespace

SimResult simulate_modular(const OpGraph& graph, const arch::AcceleratorSpec& spec) {
  SimResult result;
  result.workload = graph.name;
  result.accelerator = spec.name;
  obs::Registry& reg = result.registry;

  const double engine_peaks[3] = {
      spec.peak_mults_per_cycle * spec.fu_ntt_frac,
      spec.peak_mults_per_cycle * spec.fu_bconv_frac,
      spec.peak_mults_per_cycle * spec.fu_mac_frac,
  };
  for (double p : engine_peaks) {
    if (p < 0) throw std::invalid_argument("simulate_modular: bad FU fractions");
  }
  const double hbm_bpc = spec.offchip_bw_gb_s * 1e9 / (spec.freq_ghz * 1e9);

  double total_hbm_bytes = 0;
  double engine_mults[3] = {0, 0, 0};
  std::array<double, kNumOpClasses> class_mult_totals{};
  double total_mults = 0;

  for (const auto& level : asap_levels(graph)) {
    for (std::size_t idx : level) {
      const HighOp& op = graph.ops[idx];
      // Baselines run the eagerly-reduced (origin) multiplication counts.
      const std::uint64_t mults = metaop::count(op).origin;
      const int engine = engine_of(op.kind);
      if (mults > 0 && engine_peaks[engine] <= 0) {
        throw std::invalid_argument("simulate_modular: " + spec.name +
                                    " has no engine for a required operator class");
      }
      engine_mults[engine] += static_cast<double>(mults);
      class_mult_totals[static_cast<std::size_t>(class_of(op.kind))] +=
          static_cast<double>(mults);
      total_hbm_bytes += static_cast<double>(op.hbm_bytes);
      reg.add(metrics::kMults, mults, {{"lazy", "false"}});
      reg.add(metrics::kOps, 1);
      reg.add(metrics::kOps, 1, {{"class", class_tag(class_of(op.kind))}});
      reg.add(metrics::kHbmBytes, op.hbm_bytes);
      total_mults += static_cast<double>(mults);
    }
  }

  // Steady-state pipelined execution: each dedicated engine streams its own
  // operator class, so wall time is set by the busiest engine (and off-chip
  // streaming). The other engines idle — this *is* the utilization mismatch
  // of Fig. 1 / Fig. 7(b).
  double total_cycles = 0;
  for (int e = 0; e < 3; ++e) {
    if (engine_mults[e] > 0) {
      total_cycles = std::max(total_cycles, engine_mults[e] / engine_peaks[e]);
    }
  }
  const double hbm_cycles = total_hbm_bytes / hbm_bpc;
  std::uint64_t stall_cycles = 0;
  if (hbm_cycles > total_cycles) {
    stall_cycles = static_cast<std::uint64_t>(hbm_cycles - total_cycles);
    total_cycles = hbm_cycles;
  }

  reg.add(metrics::kCycles, static_cast<std::uint64_t>(std::ceil(total_cycles)));
  reg.add(metrics::kStall, stall_cycles, {{"cause", "hbm"}});
  reg.set_gauge(metrics::kTimeUs, total_cycles / (spec.freq_ghz * 1e3));
  reg.set_gauge(metrics::kUtilization,
                total_cycles == 0
                    ? 0.0
                    : total_mults / (spec.peak_mults_per_cycle * total_cycles));
  // Per-class engine utilization over the whole run — the same quantity the
  // paper quotes for SHARP's NTTU / BconvU / element-wise engine.
  const std::array<double, kNumOpClasses> class_engine_peak = {
      engine_peaks[0], engine_peaks[1], engine_peaks[2], engine_peaks[2]};
  for (std::size_t c = 0; c < kNumOpClasses; ++c) {
    const char* tag = class_tag(static_cast<OpClass>(c));
    reg.add(metrics::kCycles, static_cast<std::uint64_t>(total_cycles),
            {{"class", tag}});
    reg.set_gauge(metrics::kUtilization,
                  total_cycles == 0 || class_engine_peak[c] == 0
                      ? 0.0
                      : class_mult_totals[c] / (class_engine_peak[c] * total_cycles),
                  {{"class", tag}});
  }
  result.finalize();
  return result;
}

}  // namespace alchemist::sim
