// Cooperative execution control for the simulator engines.
//
// Both engines (sim/alchemist_sim.h level-by-level, sim/event_sim.h
// event-driven) advance in *steps* — one scheduled level, one completion
// interval — and poll a SimControl between steps. That gives the serving
// layer (src/svc) three capabilities without preemption:
//
//   * cancellation:  a CancelToken flipped from any thread stops the run at
//     the next step boundary;
//   * deadlines:     either a wall-clock deadline carried by the token or a
//     deterministic per-call step budget (max_steps) — the latter is what the
//     reproducible soak and the checkpoint tests use;
//   * checkpointing: the engine snapshots its cursor (completed-step index,
//     cycle accumulators, registry state) into a sim::Checkpoint every
//     checkpoint_interval steps and always at the stop point, so an
//     interrupted job can later resume instead of restarting.
//
// A stopped run throws CancelledError after publishing the final checkpoint;
// the SimResult of a resumed run is bit-identical to an uninterrupted one
// (pinned by tests/test_sim_control.cpp).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>

#include "obs/trace.h"
#include "sim/checkpoint.h"

namespace alchemist::sim {

// Fidelity of a run. Full is the default; Reduced is the serving layer's
// graceful-degradation hook: the engine skips the optional bookkeeping that
// costs wall time but never changes the simulated outcome — interval
// checkpoint snapshots are suppressed (the stop-point snapshot still
// happens) and engine span volume clamps to Lifecycle. The SimResult of a
// Reduced run is bit-identical to a Full run of the same job; only the
// observability detail and the wall-clock cost differ.
enum class SimDetail : std::uint8_t { Full, Reduced };

enum class StopReason : std::uint8_t {
  None = 0,
  Cancelled,        // CancelToken::request_cancel()
  DeadlineExpired,  // wall-clock deadline on the token passed
  StepBudget,       // SimControl::max_steps exhausted (deterministic deadline)
};

const char* to_string(StopReason r);

// Thread-safe cancellation flag plus optional wall-clock deadline. The
// producing side (JobRunner, a signal handler, a test) flips it; the engines
// poll should_stop() once per step.
class CancelToken {
 public:
  void request_cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancel_requested() const { return cancelled_.load(std::memory_order_relaxed); }

  // Absolute steady-clock deadline; a zero time_point means "none".
  void set_deadline(std::chrono::steady_clock::time_point tp) {
    deadline_ns_.store(tp.time_since_epoch().count(), std::memory_order_relaxed);
  }
  void clear_deadline() { deadline_ns_.store(0, std::memory_order_relaxed); }

  StopReason should_stop() const {
    if (cancel_requested()) return StopReason::Cancelled;
    const auto ns = deadline_ns_.load(std::memory_order_relaxed);
    if (ns != 0 &&
        std::chrono::steady_clock::now().time_since_epoch().count() >= ns) {
      return StopReason::DeadlineExpired;
    }
    return StopReason::None;
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<std::chrono::steady_clock::rep> deadline_ns_{0};
};

// Per-run control block handed to the engines. All pointers are borrowed and
// optional; a null/default SimControl is equivalent to no control at all.
struct SimControl {
  CancelToken* cancel = nullptr;
  // Steps this *call* may execute before stopping with StopReason::StepBudget
  // (0 = unlimited). Counts only steps actually executed, so a resumed run
  // gets a fresh budget.
  std::uint64_t max_steps = 0;
  // Snapshot the cursor into `checkpoint` every k executed steps (0 = only at
  // the stop point). Ignored when `checkpoint` is null.
  std::uint64_t checkpoint_interval = 0;
  // In: a valid() checkpoint resumes the run from its cursor (engine,
  // workload, geometry and fault fingerprints must match, else
  // CheckpointError). Out: overwritten with the latest snapshot.
  Checkpoint* checkpoint = nullptr;
  // Distributed tracing (obs/trace.h). When `trace` is attached and
  // `trace_ctx` is valid, the engine records spans under the caller's context
  // — the run itself, scheduler phases, per-op slices, checkpoint markers —
  // stamped in machine cycles so traced runs stay bit-reproducible. Span ids
  // are minted from deterministic ordinals (level/op indices), never from the
  // host clock. Recording must not perturb the SimResult: with `trace` null
  // or the context invalid this is a single pointer test per step.
  obs::TraceSink* trace = nullptr;
  obs::TraceContext trace_ctx{};
  obs::TraceDetail trace_detail = obs::TraceDetail::Phases;
  // Run fidelity (see SimDetail). The engines consult the effective_*
  // accessors below instead of the raw fields so the downgrade applies in
  // one place.
  SimDetail detail = SimDetail::Full;

  obs::TraceDetail effective_trace_detail() const {
    return detail == SimDetail::Reduced ? obs::TraceDetail::Lifecycle
                                        : trace_detail;
  }
  std::uint64_t effective_checkpoint_interval() const {
    return detail == SimDetail::Reduced ? 0 : checkpoint_interval;
  }
};

// A cooperative stop. The latest cursor has already been written to
// control->checkpoint (when one was attached) by the time this is thrown.
class CancelledError : public std::runtime_error {
 public:
  CancelledError(StopReason reason, std::uint64_t step)
      : std::runtime_error(std::string("simulation stopped: ") +
                           sim::to_string(reason) + " at step " +
                           std::to_string(step)),
        reason_(reason),
        step_(step) {}

  StopReason reason() const { return reason_; }
  std::uint64_t step() const { return step_; }

 private:
  StopReason reason_;
  std::uint64_t step_;
};

inline const char* to_string(StopReason r) {
  switch (r) {
    case StopReason::None: return "none";
    case StopReason::Cancelled: return "cancelled";
    case StopReason::DeadlineExpired: return "deadline-expired";
    case StopReason::StepBudget: return "step-budget";
  }
  return "?";
}

}  // namespace alchemist::sim
