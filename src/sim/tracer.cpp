#include "sim/tracer.h"

namespace alchemist::sim {

namespace {

using metaop::OpKind;

}  // namespace

TracedEvaluator::TracedEvaluator(ckks::ContextPtr ctx,
                                 const ckks::Evaluator& evaluator,
                                 std::size_t arch_n, double hbm_stream_fraction)
    : ctx_(std::move(ctx)),
      evaluator_(evaluator),
      arch_n_(arch_n == 0 ? ctx_->degree() : arch_n),
      hbm_stream_fraction_(hbm_stream_fraction) {}

workloads::CkksWl TracedEvaluator::arch_params(std::size_t level) const {
  workloads::CkksWl w;
  w.n = arch_n_;
  w.level = level;
  w.max_level = ctx_->params().num_levels;
  w.dnum = ctx_->params().dnum;
  w.hbm_stream_fraction = hbm_stream_fraction_;
  return w;
}

std::vector<std::size_t> TracedEvaluator::deps_of(
    std::initializer_list<const TracedCiphertext*> cts) const {
  std::vector<std::size_t> deps;
  for (const TracedCiphertext* c : cts) {
    if (c->node != npos) deps.push_back(c->node);
  }
  return deps;
}

TracedCiphertext TracedEvaluator::add(const TracedCiphertext& a,
                                      const TracedCiphertext& b) {
  const workloads::CkksWl w = arch_params(a.ct.level);
  const std::size_t node =
      builder_.add(OpKind::PointwiseAdd, w.n, 2 * w.level, deps_of({&a, &b}));
  return {evaluator_.add(a.ct, b.ct), node};
}

TracedCiphertext TracedEvaluator::mul_plain(const TracedCiphertext& a,
                                            const ckks::Plaintext& pt) {
  const workloads::CkksWl w = arch_params(a.ct.level);
  const std::size_t node =
      builder_.add(OpKind::PointwiseMult, w.n, 2 * w.level, deps_of({&a}));
  return {evaluator_.mul_plain(a.ct, pt), node};
}

TracedCiphertext TracedEvaluator::multiply_rescale(const TracedCiphertext& a,
                                                   const TracedCiphertext& b,
                                                   const ckks::RelinKeys& rk) {
  const workloads::CkksWl w = arch_params(a.ct.level);
  const std::size_t node =
      workloads::append_cmult_rescale(builder_, w, deps_of({&a, &b}));
  return {evaluator_.rescale(evaluator_.multiply(a.ct, b.ct, rk)), node};
}

TracedCiphertext TracedEvaluator::rescale(const TracedCiphertext& a) {
  const workloads::CkksWl w = arch_params(a.ct.level);
  const std::size_t node = workloads::append_rescale(builder_, w, deps_of({&a}));
  return {evaluator_.rescale(a.ct), node};
}

TracedCiphertext TracedEvaluator::rotate(const TracedCiphertext& a, int steps,
                                         const ckks::GaloisKeys& gk) {
  const workloads::CkksWl w = arch_params(a.ct.level);
  const std::size_t node = workloads::append_rotation(builder_, w, deps_of({&a}));
  return {evaluator_.rotate(a.ct, steps, gk), node};
}

metaop::OpGraph TracedEvaluator::take_graph(std::string name) {
  metaop::OpGraph out = std::move(builder_.g);
  out.name = std::move(name);
  builder_.g = metaop::OpGraph{};
  return out;
}

}  // namespace alchemist::sim
