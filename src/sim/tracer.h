// Tracing evaluator: run *real* CKKS application code and record the
// polynomial-level operator graph it executes, ready for the cycle simulator.
//
// This closes the loop between the functional library and the architecture
// model: the same program that produces correct ciphertexts also produces the
// op DAG whose cost the Alchemist/baseline simulators report. Ciphertexts are
// wrapped with their producing node so dependencies wire themselves.
#pragma once

#include "ckks/encoder.h"
#include "ckks/evaluator.h"
#include "metaop/op_graph.h"
#include "workloads/ckks_subgraphs.h"

namespace alchemist::sim {

struct TracedCiphertext {
  ckks::Ciphertext ct;
  // Node index of the op that produced this ciphertext; npos for fresh ones.
  std::size_t node = static_cast<std::size_t>(-1);
};

class TracedEvaluator {
 public:
  // `arch_n` overrides the polynomial length recorded in the trace (e.g.
  // trace a functional N=2048 program but cost it at the paper's N=65536);
  // 0 keeps the functional length. Key traffic uses `hbm_stream_fraction`.
  TracedEvaluator(ckks::ContextPtr ctx, const ckks::Evaluator& evaluator,
                  std::size_t arch_n = 0, double hbm_stream_fraction = 1.0);

  TracedCiphertext wrap(ckks::Ciphertext ct) const { return {std::move(ct), npos}; }

  TracedCiphertext add(const TracedCiphertext& a, const TracedCiphertext& b);
  TracedCiphertext mul_plain(const TracedCiphertext& a, const ckks::Plaintext& pt);
  // multiply + relinearize + rescale (the fused form the accelerator runs).
  TracedCiphertext multiply_rescale(const TracedCiphertext& a,
                                    const TracedCiphertext& b,
                                    const ckks::RelinKeys& rk);
  TracedCiphertext rescale(const TracedCiphertext& a);
  TracedCiphertext rotate(const TracedCiphertext& a, int steps,
                          const ckks::GaloisKeys& gk);

  const metaop::OpGraph& graph() const { return builder_.g; }
  metaop::OpGraph take_graph(std::string name);

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  workloads::CkksWl arch_params(std::size_t level) const;
  std::vector<std::size_t> deps_of(std::initializer_list<const TracedCiphertext*> cts) const;

  ckks::ContextPtr ctx_;
  const ckks::Evaluator& evaluator_;
  std::size_t arch_n_;
  double hbm_stream_fraction_;
  workloads::GraphBuilder builder_;
};

}  // namespace alchemist::sim
