#include "sim/alchemist_sim.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "metaop/lowering.h"
#include "metaop/mult_count.h"
#include "sim/fault_costs.h"
#include "sim/telemetry.h"

namespace alchemist::sim {

namespace {

using metaop::class_of;
using metaop::class_tag;
using metaop::HighOp;
using metaop::kNumOpClasses;
using metaop::MetaOpBatch;
using metaop::MetaOpStream;
using metaop::OpClass;
using metaop::OpGraph;
using metaop::OpKind;

// ASAP levels over the dependency DAG.
std::vector<std::vector<std::size_t>> asap_levels(const OpGraph& graph) {
  std::vector<std::size_t> level(graph.ops.size(), 0);
  std::size_t max_level = 0;
  for (std::size_t i = 0; i < graph.ops.size(); ++i) {
    for (std::size_t dep : graph.ops[i].deps) {
      if (dep >= i) throw std::invalid_argument("simulate: deps must point backwards");
      level[i] = std::max(level[i], level[dep] + 1);
    }
    max_level = std::max(max_level, level[i]);
  }
  std::vector<std::vector<std::size_t>> levels(max_level + 1);
  for (std::size_t i = 0; i < graph.ops.size(); ++i) levels[level[i]].push_back(i);
  return levels;
}

}  // namespace

SimResult simulate_alchemist(const OpGraph& graph, const arch::ArchConfig& config,
                             obs::Timeline* timeline, fault::FaultModel* fault_model,
                             SimControl* control, UnitProfiler* profiler,
                             MemProfiler* mem_profiler) {
  SimResult result;
  result.workload = graph.name;
  result.accelerator = "Alchemist";
  obs::Registry& reg = result.registry;

  // An inert fault model (zero rates, no mask, no redundancy) must leave the
  // run bit-identical to a fault-free one, so it is dropped entirely here.
  fault::FaultModel* fault = fault_model && fault_model->enabled() ? fault_model : nullptr;
  const arch::ArchConfig cfg = fault ? fault->degraded(config) : config;
  FaultTotals fault_totals;

  const bool trace = cfg.telemetry && timeline != nullptr && timeline->enabled();
  if (trace) {
    timeline->set_process_name("alchemist-sim(level)");
    name_fixed_tracks(*timeline);
  }
  std::vector<ClassTrackRows> rows;
  if (trace) {
    for (std::size_t c = 0; c < kNumOpClasses; ++c) {
      rows.emplace_back(*timeline, static_cast<OpClass>(c));
    }
  }

  // begin() before the resume block: a restored checkpoint overlays the
  // profiler's accumulators on top of the geometry begin() captures.
  if (mem_profiler) mem_profiler->begin(cfg, trace ? timeline : nullptr);

  const std::uint64_t cores = cfg.total_cores();
  const double hbm_bpc = cfg.hbm_bytes_per_cycle();
  const double transpose_words_per_cycle =
      static_cast<double>(cfg.num_units * cfg.lanes);

  std::uint64_t total_cycles = 0;
  std::uint64_t total_transpose = 0;
  double total_hbm_bytes = 0;
  std::uint64_t total_busy_lane_cycles = 0;
  std::array<std::uint64_t, kNumOpClasses> class_wall{};
  std::array<std::uint64_t, kNumOpClasses> class_busy_lanes{};

  const auto levels = asap_levels(graph);

  // --- execution control: resume, cooperative stop, checkpointing ---------
  const std::uint64_t fingerprint = sim_fingerprint(config, fault);
  std::uint64_t resume_level = 0;
  if (control && control->checkpoint && control->checkpoint->valid()) {
    const Checkpoint& cp = *control->checkpoint;
    if (cp.engine != kLevelEngine) {
      throw CheckpointError("level engine: checkpoint from engine '" + cp.engine + "'");
    }
    if (cp.workload != graph.name || cp.op_count != graph.ops.size()) {
      throw CheckpointError("level engine: checkpoint belongs to a different graph");
    }
    if (cp.fingerprint != fingerprint) {
      throw CheckpointError("level engine: machine/fault configuration changed");
    }
    BinaryReader r(cp.state);
    resume_level = r.read_u64();
    if (resume_level > levels.size()) {
      throw CheckpointError("level engine: checkpoint step past end of schedule");
    }
    total_cycles = r.read_u64();
    total_transpose = r.read_u64();
    total_busy_lane_cycles = r.read_u64();
    total_hbm_bytes = r.read_double();
    const std::vector<std::uint64_t> wall = r.read_u64_vector();
    const std::vector<std::uint64_t> busy = r.read_u64_vector();
    if (wall.size() != kNumOpClasses || busy.size() != kNumOpClasses) {
      throw CheckpointError("level engine: per-class array size mismatch");
    }
    std::copy(wall.begin(), wall.end(), class_wall.begin());
    std::copy(busy.begin(), busy.end(), class_busy_lanes.begin());
    fault_totals.compute = r.read_u64();
    fault_totals.sram = r.read_u64();
    fault_totals.hbm = r.read_u64();
    fault_totals.retries = r.read_u64();
    fault_totals.retry_cycles = r.read_u64();
    fault_totals.corrupted_ops = r.read_u64();
    fault_totals.dmr_corrections = r.read_u64();
    read_registry(r, reg);
    // Memory-profiler carry (checkpoint schema v2): restore the interrupted
    // run's attribution state so the resumed memory.v1 is bit-identical. A
    // checkpoint written without memory state cannot attribute the skipped
    // prefix — drop the profiler, like the UnitProfiler below.
    const bool cp_has_mem = r.read_u8() != 0;
    if (cp_has_mem) {
      MemProfiler discard;
      (mem_profiler != nullptr ? *mem_profiler : discard).deserialize(r);
    } else {
      mem_profiler = nullptr;
    }
    // Replaying the skipped levels' transient draws below assumes the fault
    // RNG starts at the seed, exactly as the interrupted run did.
    if (fault) fault->reset();
    // The skipped levels' cycles were accounted by the interrupted process
    // and survive only as aggregates — per-unit attribution is impossible.
    profiler = nullptr;
  }
  if (profiler) {
    profiler->begin(cfg.num_units, cfg.cores_per_unit,
                    trace ? timeline : nullptr);
  }

  // --- distributed tracing (cycle-domain spans; see obs/trace.h) ----------
  obs::TraceSink* tsink = control != nullptr ? control->trace : nullptr;
  const bool spans_on = tsink != nullptr && control->trace_ctx.valid();
  const obs::TraceDetail detail =
      spans_on ? control->effective_trace_detail() : obs::TraceDetail::Lifecycle;
  obs::TraceContext sim_ctx;
  if (spans_on) sim_ctx = obs::child_context(control->trace_ctx, "sim", 0);
  const std::uint64_t trace_start_cycles = total_cycles;
  const std::uint64_t trace_resume_level = resume_level;
  std::uint64_t trace_checkpoints = 0;
  // Spans are buffered locally and drained in batches: one sink lock per
  // kSpanFlush spans instead of per span, so concurrent jobs at Phases/Ops
  // detail do not serialize on the sink mutex.
  std::vector<obs::SpanRecord> span_buf;
  constexpr std::size_t kSpanFlush = 4096;
  auto buffer_span = [&](obs::SpanRecord&& s) {
    span_buf.push_back(std::move(s));
    if (span_buf.size() >= kSpanFlush) tsink->record_batch(span_buf);
  };
  // At Phases detail, runs of narrow levels (fewer than kChainWidth ops —
  // far below machine saturation) coalesce into one "chain" span, split
  // every kChainMaxLevels so long chains keep visible progress. Bootstrap
  // graphs are ~99% such levels; per-level spans for them cost more in
  // traced-run overhead (and Perfetto slice count) than they say — the
  // interesting structure is the handful of wide levels between chains. Ops
  // detail keeps the full per-level resolution.
  constexpr std::size_t kChainWidth = 8;
  constexpr std::uint64_t kChainMaxLevels = 32;
  double chain_start_ts = 0;
  std::uint64_t chain_start_level = 0;
  std::uint64_t chain_len = 0;
  auto flush_chain = [&]() {
    if (chain_len == 0) return;
    const obs::TraceContext cc =
        obs::child_context(sim_ctx, "chain", chain_start_level);
    obs::SpanRecord s;
    s.trace_id = cc.trace_id;
    s.span_id = cc.span_id;
    s.parent_span = cc.parent_span;
    s.name = "chain";
    s.kind = "sim";
    s.track = "sim/levels";
    s.clock = obs::SpanClock::Cycles;
    s.ts = chain_start_ts;
    s.dur = static_cast<double>(total_cycles) - chain_start_ts;
    s.num_attrs = {{"first_level", static_cast<double>(chain_start_level)},
                   {"levels", static_cast<double>(chain_len)}};
    buffer_span(std::move(s));
    chain_len = 0;
  };
  // Terminal span for the whole engine run; flushes the buffer, and is called
  // on every exit path (completion and just before a cancellation throw).
  auto record_sim_span = [&](const char* outcome,
                             std::uint64_t executed) {
    if (!spans_on) return;
    flush_chain();
    obs::SpanRecord s;
    s.trace_id = sim_ctx.trace_id;
    s.span_id = sim_ctx.span_id;
    s.parent_span = sim_ctx.parent_span;
    s.name = "sim";
    s.kind = "sim";
    s.track = "sim";
    s.clock = obs::SpanClock::Cycles;
    s.ts = static_cast<double>(trace_start_cycles);
    s.dur = static_cast<double>(total_cycles - trace_start_cycles);
    s.attrs = {{"engine", "level"},
               {"workload", graph.name},
               {"outcome", outcome}};
    s.num_attrs = {{"steps", static_cast<double>(executed)},
                   {"resume_level", static_cast<double>(trace_resume_level)}};
    span_buf.push_back(std::move(s));
    tsink->record_batch(span_buf);
  };

  auto save_checkpoint = [&](std::uint64_t levels_done) {
    Checkpoint cp;
    cp.engine = kLevelEngine;
    cp.workload = graph.name;
    cp.op_count = graph.ops.size();
    cp.fingerprint = fingerprint;
    cp.step = levels_done;
    BinaryWriter w;
    w.write_u64(levels_done);
    w.write_u64(total_cycles);
    w.write_u64(total_transpose);
    w.write_u64(total_busy_lane_cycles);
    w.write_double(total_hbm_bytes);
    w.write_u64_vector(class_wall);
    w.write_u64_vector(class_busy_lanes);
    w.write_u64(fault_totals.compute);
    w.write_u64(fault_totals.sram);
    w.write_u64(fault_totals.hbm);
    w.write_u64(fault_totals.retries);
    w.write_u64(fault_totals.retry_cycles);
    w.write_u64(fault_totals.corrupted_ops);
    w.write_u64(fault_totals.dmr_corrections);
    write_registry(w, reg);
    w.write_u8(mem_profiler != nullptr ? 1 : 0);
    if (mem_profiler != nullptr) mem_profiler->serialize(w);
    cp.state = w.buffer();
    const std::uint64_t state_bytes = cp.state.size();
    *control->checkpoint = std::move(cp);
    if (spans_on) {
      const obs::TraceContext cc =
          obs::child_context(sim_ctx, "checkpoint", trace_checkpoints++);
      obs::SpanRecord s;
      s.trace_id = cc.trace_id;
      s.span_id = cc.span_id;
      s.parent_span = cc.parent_span;
      s.name = "checkpoint";
      s.kind = "sim";
      s.track = "sim/checkpoint";
      s.clock = obs::SpanClock::Cycles;
      s.ts = static_cast<double>(total_cycles);
      s.dur = 0;
      s.num_attrs = {{"step", static_cast<double>(levels_done)},
                     {"bytes", static_cast<double>(state_bytes)}};
      buffer_span(std::move(s));
    }
  };
  std::uint64_t executed_steps = 0;

  for (std::size_t level_idx = 0; level_idx < levels.size(); ++level_idx) {
    const auto& level = levels[level_idx];
    if (level_idx < resume_level) {
      // Completed before the checkpoint: skip the accounting (it is already
      // in the restored accumulators) but replay the fault RNG draws so the
      // remaining ops sample the same transients as the uninterrupted run.
      if (fault) {
        for (std::size_t idx : level) {
          const HighOp& op = graph.ops[idx];
          const MetaOpStream stream = metaop::lower(op);
          std::uint64_t op_core_cycles = stream.core_cycles();
          std::uint64_t op_busy = 0;
          for (const MetaOpBatch& batch : stream.batches) {
            op_busy += batch.count * cfg.lanes * (batch.n + 2);
          }
          const double pad = fault->slot_padding_factor(op.n);
          if (pad > 1.0) {
            op_core_cycles = static_cast<std::uint64_t>(
                std::ceil(static_cast<double>(op_core_cycles) * pad));
          }
          (void)fault->sample_op(op_core_cycles, op_busy, op.hbm_bytes);
        }
      }
      continue;
    }
    if (control) {
      StopReason stop = control->cancel ? control->cancel->should_stop() : StopReason::None;
      if (stop == StopReason::None && control->max_steps != 0 &&
          executed_steps >= control->max_steps) {
        stop = StopReason::StepBudget;
      }
      if (stop != StopReason::None) {
        if (control->checkpoint) save_checkpoint(level_idx);
        record_sim_span(sim::to_string(stop), executed_steps);
        throw CancelledError(stop, level_idx);
      }
    }
    // Narrow levels at Phases detail fold into the running chain span, so
    // they never mint a per-level context.
    const bool chained = spans_on && detail == obs::TraceDetail::Phases &&
                         level.size() < kChainWidth;
    obs::TraceContext level_ctx;
    if (spans_on && detail >= obs::TraceDetail::Phases && !chained) {
      level_ctx = obs::child_context(sim_ctx, "level", level_idx);
    }
    double span_cursor = static_cast<double>(total_cycles);
    // Cores are fungible across the ops of a level: Meta-OP work pools and
    // fills waves jointly; only the pooled tail is padded.
    std::uint64_t level_core_cycles = 0;   // exact core-cycles of work
    std::uint64_t level_transpose = 0;     // serialized transpose traffic
    double level_hbm_bytes = 0;
    UnitProfiler::Level level_profile;
    // Telemetry cursor: the pooled model executes a level's work as if ops
    // ran back to back at full machine width, so slices tile the level span.
    double cursor = static_cast<double>(total_cycles);
    // Memory-profiler cursor: same tiling, kept separate so memory profiling
    // never depends on the timeline being on.
    double mem_cursor = static_cast<double>(total_cycles);
    for (std::size_t idx : level) {
      const HighOp& op = graph.ops[idx];
      const MetaOpStream stream = metaop::lower(op);
      const OpClass cls = class_of(op.kind);
      const char* tag = class_tag(cls);

      std::uint64_t op_core_cycles = stream.core_cycles();
      std::uint64_t op_busy = 0;
      for (const MetaOpBatch& batch : stream.batches) {
        op_busy += batch.count * cfg.lanes * (batch.n + 2);
      }
      std::uint64_t op_retry_cycles = 0;
      fault::OpFaults op_faults;
      if (fault) {
        // Degraded stripe: slot-partitioned work inflates by the padding of
        // ceil(N / healthy_units) striping (the masked units' share must be
        // re-homed, and the tail stripe is padded).
        const double pad = fault->slot_padding_factor(op.n);
        if (pad > 1.0) {
          op_core_cycles = static_cast<std::uint64_t>(
              std::ceil(static_cast<double>(op_core_cycles) * pad));
        }
        op_faults = fault->sample_op(op_core_cycles, op_busy, op.hbm_bytes);
        const std::uint64_t batch_cost =
            op_core_cycles / std::max<std::size_t>(stream.batches.size(), 1);
        op_retry_cycles =
            price_op_faults(*fault, op_faults, batch_cost, fault_totals);
      }
      std::uint64_t op_transpose = 0;
      // 4-step NTT: one global transpose between the phases. Chunks of later
      // channels transpose while earlier channels run phase 2, hiding half of
      // the traffic; the other half serializes.
      if (op.kind == OpKind::Ntt || op.kind == OpKind::Intt) {
        const std::uint64_t words =
            static_cast<std::uint64_t>(op.n) * std::max<std::size_t>(op.channels, 1);
        op_transpose = static_cast<std::uint64_t>(
            std::ceil(words / transpose_words_per_cycle / 2.0));
        total_transpose += op_transpose;
      }
      // Data movement for the op's working set through the local scratchpads
      // is covered by the per-lane operand fetch modeled inside the Meta-OP
      // window; only off-chip traffic is charged separately.
      level_core_cycles += op_core_cycles + op_retry_cycles;
      level_transpose += op_transpose;
      level_hbm_bytes += static_cast<double>(op.hbm_bytes);
      // The 2-cycle reduction tail of every Meta-OP window; retries re-run
      // whole windows, so the ratio carries over untouched.
      level_profile.reduction_core_cycles += 2 * stream.meta_op_count();
      level_profile.class_core_cycles[static_cast<std::size_t>(cls)] +=
          op_core_cycles + op_retry_cycles;
      const std::uint64_t op_wall =
          (op_core_cycles + op_retry_cycles + cores - 1) / cores + op_transpose;
      class_wall[static_cast<std::size_t>(cls)] += op_wall;
      class_busy_lanes[static_cast<std::size_t>(cls)] += op_busy;
      total_busy_lane_cycles += op_busy;
      const std::uint64_t op_mults = stream.mult_count();
      reg.add(metrics::kMults, op_mults, {{"lazy", "true"}});
      reg.add(metrics::kOps, 1);
      reg.add(metrics::kOps, 1, {{"class", tag}});
      reg.add(metrics::kMetaOps, stream.meta_op_count());
      reg.add(metrics::kHbmBytes, op.hbm_bytes);
      reg.add(metrics::kBusyLaneCycles, op_busy);

      if (mem_profiler) {
        const double mem_dur =
            static_cast<double>(op_core_cycles + op_retry_cycles) /
                static_cast<double>(cores) +
            static_cast<double>(op_transpose);
        mem_profiler->record_op(op, mem_cursor + mem_dur);
        mem_cursor += mem_dur;
      }

      if (trace) {
        const double dur =
            static_cast<double>(op_core_cycles + op_retry_cycles) /
                static_cast<double>(cores) +
            static_cast<double>(op_transpose);
        obs::TraceEvent ev;
        ev.name = std::string(to_string(op.kind)) + "#" + std::to_string(idx);
        ev.cat = tag;
        ev.ts = cursor;
        ev.dur = dur;
        ev.tid = rows[static_cast<std::size_t>(cls)].reserve(cursor, cursor + dur);
        ev.num_args = {
            {"level", static_cast<double>(level_idx)},
            {"core_cycles", static_cast<double>(op_core_cycles)},
            {"cores", static_cast<double>(cores)},
            {"metaop_batches", static_cast<double>(stream.batches.size())},
            {"meta_ops", static_cast<double>(stream.meta_op_count())},
            {"hbm_bytes", static_cast<double>(op.hbm_bytes)},
            {"transpose_cycles", static_cast<double>(op_transpose)},
            {"mults", static_cast<double>(op_mults)},
        };
        timeline->record(std::move(ev));
        if (op_transpose > 0) {
          obs::TraceEvent tr;
          tr.name = "transpose#" + std::to_string(idx);
          tr.cat = "transpose";
          tr.tid = kTransposeTid;
          tr.ts = cursor + static_cast<double>(op_core_cycles) /
                               static_cast<double>(cores);
          tr.dur = static_cast<double>(op_transpose);
          tr.num_args = {{"words_per_cycle", transpose_words_per_cycle}};
          timeline->record(std::move(tr));
        }
        if (op_faults.total() > 0) {
          obs::TraceEvent fe;
          fe.name = std::string("fault ") + to_string(op.kind) + "#" +
                    std::to_string(idx);
          fe.cat = "fault";
          fe.tid = kFaultTid;
          fe.ts = cursor;
          fe.dur = static_cast<double>(op_retry_cycles) / static_cast<double>(cores);
          fe.num_args = {
              {"faults_compute", static_cast<double>(op_faults.compute)},
              {"faults_sram", static_cast<double>(op_faults.sram)},
              {"faults_hbm", static_cast<double>(op_faults.hbm)},
              {"retry_core_cycles", static_cast<double>(op_retry_cycles)},
          };
          timeline->record(std::move(fe));
        }
        cursor += dur;
      }
      if (spans_on && detail == obs::TraceDetail::Ops) {
        // Same pooled-tiling model as the telemetry cursor above, but kept
        // separate so span emission never depends on the timeline being on.
        const double op_dur =
            static_cast<double>(op_core_cycles + op_retry_cycles) /
                static_cast<double>(cores) +
            static_cast<double>(op_transpose);
        const obs::TraceContext oc =
            obs::child_context(level_ctx, to_string(op.kind), idx);
        obs::SpanRecord s;
        s.trace_id = oc.trace_id;
        s.span_id = oc.span_id;
        s.parent_span = oc.parent_span;
        s.name = to_string(op.kind);
        s.kind = "sim";
        s.track = "sim/ops";
        s.clock = obs::SpanClock::Cycles;
        s.ts = span_cursor;
        s.dur = op_dur;
        s.attrs = {{"class", tag}};
        s.num_attrs = {{"op", static_cast<double>(idx)},
                       {"level", static_cast<double>(level_idx)},
                       {"core_cycles", static_cast<double>(op_core_cycles)},
                       {"hbm_bytes", static_cast<double>(op.hbm_bytes)}};
        buffer_span(std::move(s));
        span_cursor += op_dur;
      }
    }
    const std::uint64_t level_wall =
        (level_core_cycles + cores - 1) / cores + level_transpose;
    if (profiler && !level.empty()) {
      level_profile.core_cycles = level_core_cycles;
      level_profile.transpose_cycles = level_transpose;
      profiler->add_level(total_cycles, level_profile);
    }
    if (trace && !level.empty()) {
      obs::TraceEvent lv;
      lv.name = "level " + std::to_string(level_idx);
      lv.cat = "scheduler";
      lv.tid = kSchedulerTid;
      lv.ts = static_cast<double>(total_cycles);
      lv.dur = static_cast<double>(level_wall);
      lv.num_args = {{"ops", static_cast<double>(level.size())},
                     {"core_cycles", static_cast<double>(level_core_cycles)},
                     {"hbm_bytes", level_hbm_bytes}};
      timeline->record(std::move(lv));
    }
    if (chained && !level.empty()) {
      if (chain_len >= kChainMaxLevels) flush_chain();
      if (chain_len == 0) {
        chain_start_level = level_idx;
        chain_start_ts = static_cast<double>(total_cycles);
      }
      ++chain_len;
    } else if (spans_on && detail >= obs::TraceDetail::Phases &&
               !level.empty()) {
      flush_chain();  // a wide level ends any run of narrow levels
      obs::SpanRecord s;
      s.trace_id = level_ctx.trace_id;
      s.span_id = level_ctx.span_id;
      s.parent_span = level_ctx.parent_span;
      s.name = "level";
      s.kind = "sim";
      s.track = "sim/levels";
      s.clock = obs::SpanClock::Cycles;
      s.ts = static_cast<double>(total_cycles);
      s.dur = static_cast<double>(level_wall);
      s.num_attrs = {{"level", static_cast<double>(level_idx)},
                     {"ops", static_cast<double>(level.size())},
                     {"core_cycles", static_cast<double>(level_core_cycles)}};
      buffer_span(std::move(s));
    }
    total_cycles += level_wall;
    total_hbm_bytes += level_hbm_bytes;
    ++executed_steps;
    if (control && control->checkpoint &&
        control->effective_checkpoint_interval() != 0 &&
        executed_steps % control->effective_checkpoint_interval() == 0) {
      save_checkpoint(level_idx + 1);
    }
  }

  // Key material is prefetched with double buffering across the whole graph
  // (the on-chip scheduler knows the op stream in advance), so HBM streaming
  // overlaps *globally* with compute; only the excess stalls.
  const std::uint64_t hbm_cycles =
      static_cast<std::uint64_t>(std::ceil(total_hbm_bytes / hbm_bpc));
  std::uint64_t stall_cycles = 0;
  if (hbm_cycles > total_cycles) {
    stall_cycles = hbm_cycles - total_cycles;
    total_cycles = hbm_cycles;
  }
  if (trace) {
    if (total_hbm_bytes > 0) {
      obs::TraceEvent hb;
      hb.name = "evk stream";
      hb.cat = "hbm";
      hb.tid = kHbmTid;
      hb.ts = 0;
      hb.dur = static_cast<double>(hbm_cycles);
      hb.num_args = {{"bytes", total_hbm_bytes},
                     {"bytes_per_cycle", hbm_bpc}};
      timeline->record(std::move(hb));
    }
    if (stall_cycles > 0) {
      obs::TraceEvent st;
      st.name = "hbm stall";
      st.cat = "stall";
      st.tid = kSchedulerTid;
      st.ts = static_cast<double>(total_cycles - stall_cycles);
      st.dur = static_cast<double>(stall_cycles);
      st.num_args = {{"cycles", static_cast<double>(stall_cycles)}};
      timeline->record(std::move(st));
    }
  }

  if (spans_on && detail >= obs::TraceDetail::Phases && stall_cycles > 0) {
    const obs::TraceContext sc = obs::child_context(sim_ctx, "hbm-stall", 0);
    obs::SpanRecord s;
    s.trace_id = sc.trace_id;
    s.span_id = sc.span_id;
    s.parent_span = sc.parent_span;
    s.name = "hbm-stall";
    s.kind = "sim";
    s.track = "sim/levels";
    s.clock = obs::SpanClock::Cycles;
    s.ts = static_cast<double>(total_cycles - stall_cycles);
    s.dur = static_cast<double>(stall_cycles);
    s.num_attrs = {{"cycles", static_cast<double>(stall_cycles)}};
    buffer_span(std::move(s));
  }
  record_sim_span("completed", executed_steps);

  // Totals and derived rates into the registry; finalize() projects them onto
  // the legacy aggregate fields.
  reg.add(metrics::kCycles, total_cycles);
  reg.add(metrics::kStall, stall_cycles, {{"cause", "hbm"}});
  reg.add(metrics::kTransposeCycles, total_transpose);
  if (fault) add_fault_counters(reg, *fault, fault_totals);
  const double time_us = static_cast<double>(total_cycles) / (cfg.freq_ghz * 1e3);
  reg.set_gauge(metrics::kTimeUs, time_us);
  const double peak = static_cast<double>(cfg.peak_lanes());
  reg.set_gauge(metrics::kUtilization,
                total_cycles == 0
                    ? 0.0
                    : static_cast<double>(total_busy_lane_cycles) /
                          (peak * static_cast<double>(total_cycles)));
  for (std::size_t c = 0; c < kNumOpClasses; ++c) {
    const char* tag = class_tag(static_cast<OpClass>(c));
    reg.add(metrics::kCycles, class_wall[c], {{"class", tag}});
    reg.add(metrics::kBusyLaneCycles, class_busy_lanes[c], {{"class", tag}});
    reg.set_gauge(metrics::kUtilization,
                  class_wall[c] == 0
                      ? 0.0
                      : static_cast<double>(class_busy_lanes[c]) /
                            (peak * static_cast<double>(class_wall[c])),
                  {{"class", tag}});
  }
  result.finalize();
  // After finalize: the profile is a side-channel view, never part of the
  // registry the bit-identity checks compare.
  if (profiler) profiler->finish(total_cycles, result.profile);
  if (mem_profiler) mem_profiler->finish(total_cycles, result.mem_profile);
  return result;
}

}  // namespace alchemist::sim
