#include "sim/alchemist_sim.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "metaop/lowering.h"
#include "metaop/mult_count.h"

namespace alchemist::sim {

namespace {

using metaop::HighOp;
using metaop::MetaOpBatch;
using metaop::MetaOpStream;
using metaop::OpClass;
using metaop::OpGraph;
using metaop::OpKind;

OpClass class_of(OpKind kind) {
  switch (kind) {
    case OpKind::Ntt:
    case OpKind::Intt: return OpClass::Ntt;
    case OpKind::Bconv: return OpClass::Bconv;
    case OpKind::DecompPolyMult: return OpClass::DecompPolyMult;
    default: return OpClass::Elementwise;
  }
}

// ASAP levels over the dependency DAG.
std::vector<std::vector<std::size_t>> asap_levels(const OpGraph& graph) {
  std::vector<std::size_t> level(graph.ops.size(), 0);
  std::size_t max_level = 0;
  for (std::size_t i = 0; i < graph.ops.size(); ++i) {
    for (std::size_t dep : graph.ops[i].deps) {
      if (dep >= i) throw std::invalid_argument("simulate: deps must point backwards");
      level[i] = std::max(level[i], level[dep] + 1);
    }
    max_level = std::max(max_level, level[i]);
  }
  std::vector<std::vector<std::size_t>> levels(max_level + 1);
  for (std::size_t i = 0; i < graph.ops.size(); ++i) levels[level[i]].push_back(i);
  return levels;
}

}  // namespace

SimResult simulate_alchemist(const OpGraph& graph, const arch::ArchConfig& config) {
  SimResult result;
  result.workload = graph.name;
  result.accelerator = "Alchemist";

  const std::uint64_t cores = config.total_cores();
  const double hbm_bpc = config.hbm_bytes_per_cycle();
  const double transpose_words_per_cycle =
      static_cast<double>(config.num_units * config.lanes);
  const double word_bytes = config.word_bits / 8.0;

  std::uint64_t total_cycles = 0;
  double total_hbm_bytes = 0;
  std::uint64_t total_busy_lane_cycles = 0;
  std::array<std::uint64_t, 4> class_wall = {0, 0, 0, 0};
  std::array<std::uint64_t, 4> class_busy_lanes = {0, 0, 0, 0};

  for (const auto& level : asap_levels(graph)) {
    // Cores are fungible across the ops of a level: Meta-OP work pools and
    // fills waves jointly; only the pooled tail is padded.
    std::uint64_t level_core_cycles = 0;   // exact core-cycles of work
    std::uint64_t level_transpose = 0;     // serialized transpose traffic
    double level_hbm_bytes = 0;
    for (std::size_t idx : level) {
      const HighOp& op = graph.ops[idx];
      const MetaOpStream stream = metaop::lower(op);
      const OpClass cls = class_of(op.kind);

      std::uint64_t op_core_cycles = stream.core_cycles();
      std::uint64_t op_busy = 0;
      for (const MetaOpBatch& batch : stream.batches) {
        op_busy += batch.count * config.lanes * (batch.n + 2);
      }
      std::uint64_t op_transpose = 0;
      // 4-step NTT: one global transpose between the phases. Chunks of later
      // channels transpose while earlier channels run phase 2, hiding half of
      // the traffic; the other half serializes.
      if (op.kind == OpKind::Ntt || op.kind == OpKind::Intt) {
        const std::uint64_t words =
            static_cast<std::uint64_t>(op.n) * std::max<std::size_t>(op.channels, 1);
        op_transpose = static_cast<std::uint64_t>(
            std::ceil(words / transpose_words_per_cycle / 2.0));
        result.transpose_cycles += op_transpose;
      }
      // Data movement for the op's working set through the local scratchpads
      // is covered by the per-lane operand fetch modeled inside the Meta-OP
      // window; only off-chip traffic is charged separately.
      level_core_cycles += op_core_cycles;
      level_transpose += op_transpose;
      level_hbm_bytes += static_cast<double>(op.hbm_bytes);
      class_wall[static_cast<std::size_t>(cls)] +=
          (op_core_cycles + cores - 1) / cores + op_transpose;
      class_busy_lanes[static_cast<std::size_t>(cls)] += op_busy;
      total_busy_lane_cycles += op_busy;
      result.total_mults += stream.mult_count();
      (void)word_bytes;
    }
    total_cycles +=
        (level_core_cycles + cores - 1) / cores + level_transpose;
    total_hbm_bytes += level_hbm_bytes;
  }

  // Key material is prefetched with double buffering across the whole graph
  // (the on-chip scheduler knows the op stream in advance), so HBM streaming
  // overlaps *globally* with compute; only the excess stalls.
  const std::uint64_t hbm_cycles =
      static_cast<std::uint64_t>(std::ceil(total_hbm_bytes / hbm_bpc));
  if (hbm_cycles > total_cycles) {
    result.mem_stall_cycles = hbm_cycles - total_cycles;
    total_cycles = hbm_cycles;
  }

  result.cycles = total_cycles;
  result.time_us = static_cast<double>(total_cycles) / (config.freq_ghz * 1e3);
  const double peak = static_cast<double>(config.peak_lanes());
  result.utilization =
      total_cycles == 0
          ? 0.0
          : static_cast<double>(total_busy_lane_cycles) / (peak * total_cycles);
  for (std::size_t c = 0; c < 4; ++c) {
    result.cycles_by_class[c] = class_wall[c];
    result.util_by_class[c] =
        class_wall[c] == 0
            ? 0.0
            : static_cast<double>(class_busy_lanes[c]) / (peak * class_wall[c]);
  }
  return result;
}

}  // namespace alchemist::sim
