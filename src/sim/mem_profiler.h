// MemProfiler — memory-system attribution for both Alchemist engines.
//
// The profiler turns the engines' single hbm_bytes-per-op accounting into the
// memory.v1 profile (obs/memory.h): bytes attributed to (operand class x op
// class) from the IR's TransferDescs, a key-fetch ledger keyed by key_id with
// re-fetch bytes (the inter-op key-reuse headroom ARK exploits), an epoch-
// bucketed HBM bandwidth-utilization timeline, and a scratchpad-occupancy
// model (capacity from ArchConfig, one residency interval per fetched working
// set, exact high-water mark).
//
// Like UnitProfiler it is strictly an observer: engines feed it copies of
// quantities they already compute (the op stream, the prefetch byte prefix,
// each op's retirement cycle) and it never feeds anything back, so a profiled
// run returns a bit-identical SimResult (tests pin this).
//
// Feeding model, shared by both engines: HBM streams the op schedule's key
// material in order at full bandwidth, so op i's fetch occupies cycles
// [prefix_i/bpc, (prefix_i + bytes_i)/bpc) — the profiler maintains the
// prefix itself, engines only call record_op() in schedule order with the
// op's retirement cycle. A working set is resident from fetch start to
// retirement and is evicted once when it retires; a later fetch of the same
// key_id is a re-fetch in the ledger.
//
// Unlike UnitProfiler, checkpoint/resume KEEPS the profile: the level engine
// serializes the profiler's accumulators into its checkpoint blob (schema v2)
// and restores them on resume, so a resumed run's memory.v1 section is
// bit-identical to an uninterrupted one; the event engine reconstructs the
// identical feed deterministically from its restored per-op state and needs
// no extra checkpoint bytes.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "arch/config.h"
#include "common/serdes.h"
#include "metaop/metaop.h"
#include "metaop/op_graph.h"
#include "obs/memory.h"
#include "obs/timeline.h"

namespace alchemist::sim {

class MemProfiler {
 public:
  // Epoch count of the bandwidth/occupancy timelines in memory.v1.
  static constexpr std::size_t kEpochs = 64;

  // Geometry comes from the (possibly fault-degraded) ArchConfig the engine
  // actually simulates; a Timeline (when tracing) additionally gets the
  // mem/bw and mem/scratchpad counter tracks at finish().
  void begin(const arch::ArchConfig& cfg, obs::Timeline* timeline = nullptr);

  // One scheduled op, in HBM prefetch (schedule) order. `release_cycle` is
  // when the op retires and its working set leaves the scratchpad.
  void record_op(const metaop::HighOp& op, double release_cycle);

  // Fill `out` (attribution, ledger, epoch timelines over total_cycles) and
  // emit the Perfetto counter tracks when a timeline is attached.
  void finish(std::uint64_t total_cycles, obs::MemoryProfile& out);

  bool active() const { return active_; }

  // Checkpoint carry (level engine): accumulator state only — geometry and
  // the timeline come from begin(), and the checkpoint fingerprint guarantees
  // the resumed run uses the same ArchConfig.
  void serialize(BinaryWriter& w) const;
  void deserialize(BinaryReader& r);

 private:
  struct Ledger {
    std::uint8_t operand = 0;  // metaop::OperandClass
    std::uint64_t fetches = 0;
    std::uint64_t total_bytes = 0;
    std::uint64_t refetch_bytes = 0;
  };
  // One fetched working set: streamed over [fetch_start, fetch_end), resident
  // until `release`.
  struct Interval {
    double fetch_start = 0;
    double fetch_end = 0;
    double release = 0;
    std::uint64_t bytes = 0;
  };

  bool active_ = false;
  double hbm_bpc_ = 1.0;
  std::uint64_t capacity_bytes_ = 0;
  obs::Timeline* timeline_ = nullptr;

  double bytes_prefix_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::array<std::array<std::uint64_t, metaop::kNumOpClasses>,
             metaop::kNumOperandClasses>
      bytes_{};
  std::map<std::uint64_t, Ledger> keys_;
  std::vector<Interval> intervals_;
};

}  // namespace alchemist::sim
