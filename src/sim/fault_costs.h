// Shared fault accounting between the two Alchemist simulator engines.
//
// Both engines sample each op's transient faults from the FaultModel (in
// graph index order, so a seed fully reproduces a run) and charge the
// mitigation cost in core-cycles through price_op_faults(); the aggregate
// totals land in the obs::Registry as fault.* counters via
// add_fault_counters(). Keeping the policy pricing here guarantees the level
// and event engines degrade identically.
#pragma once

#include <algorithm>
#include <cstdint>

#include "fault/fault_model.h"
#include "obs/registry.h"

namespace alchemist::sim {

struct FaultTotals {
  std::uint64_t compute = 0;          // injected transients by domain
  std::uint64_t sram = 0;
  std::uint64_t hbm = 0;
  std::uint64_t retries = 0;          // detect-retry re-executions
  std::uint64_t retry_cycles = 0;     // core-cycles burned re-executing
  std::uint64_t corrupted_ops = 0;    // ops whose output stays corrupted
  std::uint64_t dmr_corrections = 0;  // mismatches fixed by the shadow core
};

// Price one op's transient faults under the model's policy. `batch_cost` is
// the core-cycle cost of the affected Meta-OP batch (the re-execution
// granule). Returns the extra core-cycles charged to the op and accumulates
// the registry totals.
inline std::uint64_t price_op_faults(const fault::FaultModel& model,
                                     const fault::OpFaults& faults,
                                     std::uint64_t batch_cost, FaultTotals& totals) {
  totals.compute += faults.compute;
  totals.sram += faults.sram;
  totals.hbm += faults.hbm;
  const std::uint64_t n_faults = faults.total();
  if (n_faults == 0) return 0;
  std::uint64_t extra = 0;
  switch (model.config().policy) {
    case fault::Policy::None:
      // Undetected: the op completes on time with a corrupted output.
      ++totals.corrupted_ops;
      break;
    case fault::Policy::DetectRetry: {
      // Each detected fault re-executes the affected batch; the re-issue
      // window doubles per successive retry within the op (flush, refetch,
      // re-dispatch compound). Beyond max_retries the op is unrecoverable.
      const std::uint64_t attempts =
          std::min<std::uint64_t>(n_faults, model.config().max_retries);
      for (std::uint64_t a = 0; a < attempts; ++a) extra += batch_cost << a;
      totals.retries += attempts;
      totals.retry_cycles += extra;
      if (n_faults > model.config().max_retries) ++totals.corrupted_ops;
      break;
    }
    case fault::Policy::Dmr:
      // The shadow core detects the mismatch immediately; one clean
      // re-execution of the batch corrects each fault.
      extra = n_faults * batch_cost;
      totals.dmr_corrections += n_faults;
      totals.retry_cycles += extra;
      break;
  }
  return extra;
}

inline void add_fault_counters(obs::Registry& reg, const fault::FaultModel& model,
                               const FaultTotals& totals) {
  namespace fm = fault::metrics;
  reg.add(fm::kInjected, totals.compute + totals.sram + totals.hbm);
  reg.add(fm::kInjected, totals.compute, {{"domain", "compute"}});
  reg.add(fm::kInjected, totals.sram, {{"domain", "sram"}});
  reg.add(fm::kInjected, totals.hbm, {{"domain", "hbm"}});
  reg.add(fm::kRetries, totals.retries);
  reg.add(fm::kRetryCycles, totals.retry_cycles);
  reg.add(fm::kCorruptedOps, totals.corrupted_ops);
  reg.add(fm::kDmrCorrections, totals.dmr_corrections);
  reg.add(fm::kMaskedUnits, model.masked_count());
}

}  // namespace alchemist::sim
