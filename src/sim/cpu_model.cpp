#include "sim/cpu_model.h"

#include <chrono>

#include "common/modarith.h"
#include "metaop/mult_count.h"

namespace alchemist::sim {

double cpu_ns_per_modmul() {
  static const double cached = [] {
    const Modulus mod((u64{1} << 61) - 1);
    volatile u64 sink = 0;
    u64 x = 0x1234'5678'9abc'def0ULL % mod.value();
    // Warm-up.
    for (int i = 0; i < 100000; ++i) x = mod.mul(x, x + 1);
    const int iters = 4000000;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) x = mod.mul(x, x + 1);
    const auto stop = std::chrono::steady_clock::now();
    sink = x;
    (void)sink;
    const double ns =
        std::chrono::duration<double, std::nano>(stop - start).count() / iters;
    // A software modmul with Barrett reduction is ~3 word multiplies; the
    // origin counting convention already charges 3 word-mults per modular
    // multiplication, so convert to per-word-mult cost.
    return ns / 3.0;
  }();
  return cached;
}

double cpu_time_us(const metaop::OpGraph& graph) {
  const std::uint64_t mults = metaop::count(graph).origin;
  return static_cast<double>(mults) * cpu_ns_per_modmul() * 1e-3;
}

}  // namespace alchemist::sim
