#include "sim/event_sim.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "metaop/lowering.h"
#include "sim/fault_costs.h"
#include "sim/telemetry.h"

namespace alchemist::sim {

namespace {

using metaop::class_of;
using metaop::class_tag;
using metaop::HighOp;
using metaop::kNumOpClasses;
using metaop::MetaOpBatch;
using metaop::MetaOpStream;
using metaop::OpClass;
using metaop::OpGraph;
using metaop::OpKind;

struct OpState {
  double work = 0;        // core-cycles of Meta-OP work (incl. transpose)
  double hbm_ready = 0;   // earliest time this op's prefetched keys land
  double busy_lanes = 0;  // lane-cycles for utilization accounting
  // Profiler-only shares of `work`: the transpose traffic folded into it and
  // the Meta-OP reduction tails within the non-transpose part.
  double frac_scratch = 0;
  double frac_reduction = 0;
  OpClass cls = OpClass::Elementwise;
  std::size_t unmet_deps = 0;
  std::vector<std::size_t> dependents;
  bool running = false;
  bool done = false;
  // Telemetry only (never read by the accounting below).
  double start_time = 0;
  double compute_done_time = 0;
  fault::OpFaults faults;
  double retry_cycles = 0;
};

}  // namespace

SimResult simulate_alchemist_events(const OpGraph& graph,
                                    const arch::ArchConfig& config,
                                    obs::Timeline* timeline,
                                    fault::FaultModel* fault_model,
                                    SimControl* control,
                                    UnitProfiler* profiler,
                                    MemProfiler* mem_profiler) {
  SimResult result;
  result.workload = graph.name;
  result.accelerator = "Alchemist(event)";
  obs::Registry& reg = result.registry;
  if (graph.ops.empty()) {
    if (mem_profiler) {
      mem_profiler->begin(config);
      mem_profiler->finish(0, result.mem_profile);
    }
    return result;
  }

  // Inert fault models are dropped so the run stays bit-identical (see
  // simulate_alchemist).
  fault::FaultModel* fault = fault_model && fault_model->enabled() ? fault_model : nullptr;
  const arch::ArchConfig cfg = fault ? fault->degraded(config) : config;
  FaultTotals fault_totals;

  // Resume validation happens before the (re)computed setup; the setup loop
  // below is deterministic, so only the event-loop cursor lives in the
  // checkpoint — everything per-op static (lowering, fault draws, prefetch
  // schedule) is rebuilt identically. The fault RNG must therefore restart
  // at its seed.
  const std::uint64_t fingerprint = sim_fingerprint(config, fault);
  const bool resuming =
      control && control->checkpoint && control->checkpoint->valid();
  if (resuming) {
    const Checkpoint& cp = *control->checkpoint;
    if (cp.engine != kEventEngine) {
      throw CheckpointError("event engine: checkpoint from engine '" + cp.engine + "'");
    }
    if (cp.workload != graph.name || cp.op_count != graph.ops.size()) {
      throw CheckpointError("event engine: checkpoint belongs to a different graph");
    }
    if (cp.fingerprint != fingerprint) {
      throw CheckpointError("event engine: machine/fault configuration changed");
    }
    if (fault) fault->reset();
    // Cycles before the resume point were accounted by the interrupted
    // process; per-unit attribution cannot be reconstructed.
    profiler = nullptr;
  }

  const bool trace = cfg.telemetry && timeline != nullptr && timeline->enabled();
  if (trace) {
    timeline->set_process_name("alchemist-sim(event)");
    name_fixed_tracks(*timeline);
  }

  const double cores = static_cast<double>(cfg.total_cores());
  const double hbm_bpc = cfg.hbm_bytes_per_cycle();
  const double transpose_words_per_cycle =
      static_cast<double>(cfg.num_units * cfg.lanes);

  std::uint64_t total_transpose = 0;
  std::array<double, kNumOpClasses> class_busy_total{};
  std::vector<OpState> state(graph.ops.size());
  for (std::size_t i = 0; i < graph.ops.size(); ++i) {
    const HighOp& op = graph.ops[i];
    const MetaOpStream stream = metaop::lower(op);
    OpState& s = state[i];
    s.cls = class_of(op.kind);
    std::uint64_t op_core_cycles = stream.core_cycles();
    std::uint64_t op_busy = 0;
    for (const MetaOpBatch& b : stream.batches) {
      op_busy += b.count * cfg.lanes * (b.n + 2);
    }
    s.busy_lanes = static_cast<double>(op_busy);
    if (fault) {
      // Same degraded-stripe inflation and fault pricing as the level engine
      // (sim/fault_costs.h), sampled in the same graph index order.
      const double pad = fault->slot_padding_factor(op.n);
      if (pad > 1.0) {
        op_core_cycles = static_cast<std::uint64_t>(
            std::ceil(static_cast<double>(op_core_cycles) * pad));
      }
      s.faults = fault->sample_op(op_core_cycles, op_busy, op.hbm_bytes);
      const std::uint64_t batch_cost =
          op_core_cycles / std::max<std::size_t>(stream.batches.size(), 1);
      s.retry_cycles = static_cast<double>(
          price_op_faults(*fault, s.faults, batch_cost, fault_totals));
    }
    s.work = static_cast<double>(op_core_cycles) + s.retry_cycles;
    // Reduction share of the compute work: 2 of every (n+2)-cycle Meta-OP
    // window. Padding and retries replay whole windows, so the raw stream's
    // ratio carries over.
    const double raw_core = static_cast<double>(stream.core_cycles());
    s.frac_reduction =
        raw_core > 0 ? 2.0 * static_cast<double>(stream.meta_op_count()) / raw_core
                     : 0.0;
    if (op.kind == OpKind::Ntt || op.kind == OpKind::Intt) {
      const double words = static_cast<double>(op.n) *
                           static_cast<double>(std::max<std::size_t>(op.channels, 1));
      // Serialized half of the transpose, expressed as extra machine work.
      const double transpose_work = words / transpose_words_per_cycle / 2.0 * cores;
      s.work += transpose_work;
      s.frac_scratch = s.work > 0 ? transpose_work / s.work : 0.0;
      total_transpose += static_cast<std::uint64_t>(
          words / transpose_words_per_cycle / 2.0);
    }
    s.unmet_deps = op.deps.size();
    for (std::size_t dep : op.deps) {
      if (dep >= i) throw std::invalid_argument("event sim: deps must point backwards");
      state[dep].dependents.push_back(i);
    }
    class_busy_total[static_cast<std::size_t>(s.cls)] += s.busy_lanes;
    reg.add(metrics::kMults, stream.mult_count(), {{"lazy", "true"}});
    reg.add(metrics::kOps, 1);
    reg.add(metrics::kOps, 1, {{"class", class_tag(s.cls)}});
    reg.add(metrics::kMetaOps, stream.meta_op_count());
    reg.add(metrics::kHbmBytes, op.hbm_bytes);
    reg.add(metrics::kBusyLaneCycles,
            static_cast<std::uint64_t>(s.busy_lanes));
  }

  // Key prefetching: the scheduler knows the op stream in advance, so HBM
  // streams each op's keys in order starting at t=0; an op can only retire
  // once its cumulative key traffic has landed.
  double bytes_prefix = 0;
  for (std::size_t i = 0; i < graph.ops.size(); ++i) {
    const double start_cycle = bytes_prefix / hbm_bpc;
    bytes_prefix += static_cast<double>(graph.ops[i].hbm_bytes);
    state[i].hbm_ready = bytes_prefix / hbm_bpc;
    if (trace && graph.ops[i].hbm_bytes > 0) {
      obs::TraceEvent hb;
      hb.name = std::string("keys ") + to_string(graph.ops[i].kind) + "#" +
                std::to_string(i);
      hb.cat = "hbm";
      hb.tid = kHbmTid;
      hb.ts = start_cycle;
      hb.dur = state[i].hbm_ready - start_cycle;
      hb.num_args = {{"bytes", static_cast<double>(graph.ops[i].hbm_bytes)},
                     {"bytes_per_cycle", hbm_bpc}};
      timeline->record(std::move(hb));
    }
  }

  std::vector<std::size_t> running;
  for (std::size_t i = 0; i < state.size(); ++i) {
    if (state[i].unmet_deps == 0) {
      state[i].running = true;
      running.push_back(i);
    }
  }

  std::vector<ClassTrackRows> rows;
  if (trace) {
    for (std::size_t c = 0; c < kNumOpClasses; ++c) {
      rows.emplace_back(*timeline, static_cast<OpClass>(c));
    }
  }
  if (profiler) profiler->begin(cfg.num_units, cfg.cores_per_unit, nullptr);
  if (mem_profiler) mem_profiler->begin(cfg, trace ? timeline : nullptr);

  double now = 0;
  double busy_integral = 0;  // lane-cycles actually delivered
  double stall_integral = 0; // time with live ops but zero runnable compute
  std::array<double, kNumOpClasses> class_active{};  // per-class busy wall
  std::size_t completed = 0;

  if (resuming) {
    BinaryReader r(control->checkpoint->state);
    now = r.read_double();
    busy_integral = r.read_double();
    stall_integral = r.read_double();
    for (double& c : class_active) c = r.read_double();
    completed = static_cast<std::size_t>(r.read_u64());
    const std::vector<std::uint64_t> run_ids = r.read_u64_vector();
    const std::uint64_t n_ops = r.read_u64();
    if (n_ops != state.size() || completed > state.size()) {
      throw CheckpointError("event engine: per-op state size mismatch");
    }
    for (OpState& s : state) {
      s.work = r.read_double();
      s.busy_lanes = r.read_double();
      s.start_time = r.read_double();
      s.compute_done_time = r.read_double();
      s.unmet_deps = static_cast<std::size_t>(r.read_u64());
      const std::uint8_t flags = r.read_u8();
      s.running = (flags & 1u) != 0;
      s.done = (flags & 2u) != 0;
    }
    running.clear();
    for (std::uint64_t id : run_ids) {
      if (id >= state.size()) {
        throw CheckpointError("event engine: ready-set index out of range");
      }
      running.push_back(static_cast<std::size_t>(id));
    }
  }
  // --- distributed tracing (cycle-domain spans; see obs/trace.h) ----------
  obs::TraceSink* tsink = control != nullptr ? control->trace : nullptr;
  const bool spans_on = tsink != nullptr && control->trace_ctx.valid();
  const obs::TraceDetail detail =
      spans_on ? control->effective_trace_detail() : obs::TraceDetail::Lifecycle;
  obs::TraceContext sim_ctx;
  if (spans_on) sim_ctx = obs::child_context(control->trace_ctx, "sim", 0);
  const double trace_start = now;
  std::uint64_t trace_checkpoints = 0;
  // Local span buffer, drained in batches (one sink lock per kSpanFlush
  // spans) so concurrent jobs do not serialize on the sink mutex.
  std::vector<obs::SpanRecord> span_buf;
  constexpr std::size_t kSpanFlush = 4096;
  auto buffer_span = [&](obs::SpanRecord&& s) {
    span_buf.push_back(std::move(s));
    if (span_buf.size() >= kSpanFlush) tsink->record_batch(span_buf);
  };
  // Terminal span for the whole engine run; flushes the buffer, and is called
  // on every exit path (completion and just before a cancellation throw).
  auto record_sim_span = [&](const char* outcome,
                             std::uint64_t executed) {
    if (!spans_on) return;
    obs::SpanRecord s;
    s.trace_id = sim_ctx.trace_id;
    s.span_id = sim_ctx.span_id;
    s.parent_span = sim_ctx.parent_span;
    s.name = "sim";
    s.kind = "sim";
    s.track = "sim";
    s.clock = obs::SpanClock::Cycles;
    s.ts = trace_start;
    s.dur = now - trace_start;
    s.attrs = {{"engine", "event"},
               {"workload", graph.name},
               {"outcome", outcome}};
    s.num_attrs = {{"steps", static_cast<double>(executed)},
                   {"resumed", resuming ? 1.0 : 0.0}};
    span_buf.push_back(std::move(s));
    tsink->record_batch(span_buf);
  };

  auto save_checkpoint = [&]() {
    Checkpoint cp;
    cp.engine = kEventEngine;
    cp.workload = graph.name;
    cp.op_count = graph.ops.size();
    cp.fingerprint = fingerprint;
    cp.step = completed;
    BinaryWriter w;
    w.write_double(now);
    w.write_double(busy_integral);
    w.write_double(stall_integral);
    for (double c : class_active) w.write_double(c);
    w.write_u64(completed);
    std::vector<std::uint64_t> run_ids(running.begin(), running.end());
    w.write_u64_vector(run_ids);
    w.write_u64(state.size());
    for (const OpState& s : state) {
      w.write_double(s.work);
      w.write_double(s.busy_lanes);
      w.write_double(s.start_time);
      w.write_double(s.compute_done_time);
      w.write_u64(s.unmet_deps);
      w.write_u8(static_cast<std::uint8_t>((s.running ? 1u : 0u) | (s.done ? 2u : 0u)));
    }
    cp.state = w.buffer();
    const std::uint64_t state_bytes = cp.state.size();
    *control->checkpoint = std::move(cp);
    if (spans_on) {
      const obs::TraceContext cc =
          obs::child_context(sim_ctx, "checkpoint", trace_checkpoints++);
      obs::SpanRecord s;
      s.trace_id = cc.trace_id;
      s.span_id = cc.span_id;
      s.parent_span = cc.parent_span;
      s.name = "checkpoint";
      s.kind = "sim";
      s.track = "sim/checkpoint";
      s.clock = obs::SpanClock::Cycles;
      s.ts = now;
      s.dur = 0;
      s.num_attrs = {{"step", static_cast<double>(completed)},
                     {"bytes", static_cast<double>(state_bytes)}};
      buffer_span(std::move(s));
    }
  };
  std::uint64_t executed_steps = 0;

  while (!running.empty()) {
    if (control) {
      StopReason stop = control->cancel ? control->cancel->should_stop() : StopReason::None;
      if (stop == StopReason::None && control->max_steps != 0 &&
          executed_steps >= control->max_steps) {
        stop = StopReason::StepBudget;
      }
      if (stop != StopReason::None) {
        if (control->checkpoint) save_checkpoint();
        record_sim_span(sim::to_string(stop), executed_steps);
        throw CancelledError(stop, completed);
      }
    }
    // Work-conserving equal share of the cores among live compute demands.
    std::size_t compute_live = 0;
    for (std::size_t idx : running) compute_live += state[idx].work > 0 ? 1 : 0;
    const double core_share = compute_live ? cores / compute_live : 0;

    // Next completion event.
    double dt = std::numeric_limits<double>::infinity();
    for (std::size_t idx : running) {
      const OpState& s = state[idx];
      double t_done = s.work > 0 ? s.work / core_share : 0;
      t_done = std::max(t_done, s.hbm_ready - now);
      dt = std::min(dt, t_done);
    }
    if (!(dt > 0) || !std::isfinite(dt)) dt = 1.0;  // zero-work ops finish now

    if (compute_live == 0) stall_integral += dt;
    // Per-class active wall time: classes with live work this interval.
    {
      std::array<bool, kNumOpClasses> live{};
      for (std::size_t idx : running) {
        if (state[idx].work > 0) live[static_cast<std::size_t>(state[idx].cls)] = true;
      }
      for (std::size_t c = 0; c < kNumOpClasses; ++c) {
        if (live[c]) class_active[c] += dt;
      }
    }

    // Advance time and drain work.
    now += dt;
    double iv_delivered = 0, iv_reduction = 0, iv_scratch = 0;
    std::array<double, kNumOpClasses> iv_class{};
    std::vector<std::size_t> still_running;
    for (std::size_t idx : running) {
      OpState& s = state[idx];
      if (s.work > 0) {
        const double delivered = std::min(s.work, core_share * dt);
        if (profiler) {
          const double d_scratch = delivered * s.frac_scratch;
          const double d_compute = delivered - d_scratch;
          iv_delivered += delivered;
          iv_scratch += d_scratch;
          iv_reduction += d_compute * s.frac_reduction;
          iv_class[static_cast<std::size_t>(s.cls)] += d_compute;
        }
        busy_integral += delivered / s.work * s.busy_lanes;  // proportional
        s.busy_lanes -= delivered / std::max(s.work, 1e-9) * s.busy_lanes;
        s.work -= delivered;
        if (s.work < 1e-9) s.work = 0;
        if (s.work == 0) s.compute_done_time = now;
      }
      if (s.work == 0 && now + 1e-9 >= s.hbm_ready) {
        s.done = true;
        ++completed;
        if (trace) {
          const HighOp& op = graph.ops[idx];
          obs::TraceEvent ev;
          ev.name = std::string(to_string(op.kind)) + "#" + std::to_string(idx);
          ev.cat = class_tag(s.cls);
          ev.ts = s.start_time;
          ev.dur = now - s.start_time;
          ev.tid = rows[static_cast<std::size_t>(s.cls)].reserve(s.start_time, now);
          ev.num_args = {
              {"ready_cycle", s.start_time},
              {"end_cycle", now},
              {"hbm_ready_cycle", s.hbm_ready},
              {"hbm_wait_cycles",
               std::max(0.0, now - std::max(s.compute_done_time, s.start_time))},
              {"hbm_bytes", static_cast<double>(op.hbm_bytes)},
          };
          timeline->record(std::move(ev));
          if (s.faults.total() > 0) {
            obs::TraceEvent fe;
            fe.name = std::string("fault ") + to_string(op.kind) + "#" +
                      std::to_string(idx);
            fe.cat = "fault";
            fe.tid = kFaultTid;
            fe.ts = s.start_time;
            fe.dur = now - s.start_time;
            fe.num_args = {
                {"faults_compute", static_cast<double>(s.faults.compute)},
                {"faults_sram", static_cast<double>(s.faults.sram)},
                {"faults_hbm", static_cast<double>(s.faults.hbm)},
                {"retry_core_cycles", s.retry_cycles},
            };
            timeline->record(std::move(fe));
          }
        }
        if (spans_on && detail == obs::TraceDetail::Ops) {
          const HighOp& op = graph.ops[idx];
          const obs::TraceContext oc =
              obs::child_context(sim_ctx, to_string(op.kind), idx);
          obs::SpanRecord sp;
          sp.trace_id = oc.trace_id;
          sp.span_id = oc.span_id;
          sp.parent_span = oc.parent_span;
          sp.name = to_string(op.kind);
          sp.kind = "sim";
          sp.track = "sim/ops";
          sp.clock = obs::SpanClock::Cycles;
          sp.ts = s.start_time;
          sp.dur = now - s.start_time;
          sp.attrs = {{"class", class_tag(s.cls)}};
          sp.num_attrs = {{"op", static_cast<double>(idx)},
                          {"hbm_bytes", static_cast<double>(op.hbm_bytes)}};
          buffer_span(std::move(sp));
        }
        for (std::size_t dep : s.dependents) {
          if (--state[dep].unmet_deps == 0) {
            state[dep].running = true;
            state[dep].start_time = now;
            still_running.push_back(dep);
          }
        }
      } else {
        still_running.push_back(idx);
      }
    }
    if (profiler) {
      profiler->accrue(dt, iv_delivered, iv_reduction, iv_scratch, iv_class,
                       compute_live > 0);
    }
    running = std::move(still_running);
    ++executed_steps;
    if (control && control->checkpoint &&
        control->effective_checkpoint_interval() != 0 &&
        executed_steps % control->effective_checkpoint_interval() == 0) {
      save_checkpoint();
    }
  }
  if (completed != graph.ops.size()) {
    throw std::logic_error("event sim: dependency cycle or unreachable ops");
  }
  record_sim_span("completed", executed_steps);

  const std::uint64_t total_cycles = static_cast<std::uint64_t>(std::ceil(now));
  reg.add(metrics::kCycles, total_cycles);
  reg.add(metrics::kStall, static_cast<std::uint64_t>(std::ceil(stall_integral)),
          {{"cause", "hbm"}});
  reg.add(metrics::kTransposeCycles, total_transpose);
  if (fault) add_fault_counters(reg, *fault, fault_totals);
  reg.set_gauge(metrics::kTimeUs, now / (cfg.freq_ghz * 1e3));
  const double peak = static_cast<double>(cfg.peak_lanes());
  reg.set_gauge(metrics::kUtilization, now > 0 ? busy_integral / (peak * now) : 0);
  for (std::size_t c = 0; c < kNumOpClasses; ++c) {
    const char* tag = class_tag(static_cast<OpClass>(c));
    reg.add(metrics::kCycles,
            static_cast<std::uint64_t>(std::ceil(class_active[c])),
            {{"class", tag}});
    reg.set_gauge(metrics::kUtilization,
                  class_active[c] > 0
                      ? class_busy_total[c] / (peak * class_active[c])
                      : 0.0,
                  {{"class", tag}});
  }
  result.finalize();
  if (profiler) profiler->finish(total_cycles, result.profile);
  if (mem_profiler) {
    // Feed in HBM prefetch order from per-op state the event loop (or a
    // checkpoint resume) left behind: an op's working set is released when
    // both its compute and its key streaming are done, which is exactly its
    // retirement condition above.
    for (std::size_t i = 0; i < graph.ops.size(); ++i) {
      mem_profiler->record_op(
          graph.ops[i],
          std::max(state[i].compute_done_time, state[i].hbm_ready));
    }
    mem_profiler->finish(total_cycles, result.mem_profile);
  }
  return result;
}

metaop::OpGraph merge_graphs(const std::vector<OpGraph>& graphs,
                             const std::string& name) {
  // Proportional interleave: ops of the streams alternate in schedule order
  // (preserving each stream's internal dependencies), so key prefetching for
  // one stream overlaps compute of the others — the time-sharing scheduling
  // of §5.4.
  OpGraph merged;
  merged.name = name;
  std::vector<std::size_t> next(graphs.size(), 0);
  // Remap: new index of op j of graph g.
  std::vector<std::vector<std::size_t>> remap(graphs.size());
  for (std::size_t g = 0; g < graphs.size(); ++g) {
    remap[g].resize(graphs[g].ops.size());
  }
  for (;;) {
    // Pick the stream with the smallest consumed fraction.
    std::size_t best = graphs.size();
    double best_frac = 2.0;
    for (std::size_t g = 0; g < graphs.size(); ++g) {
      if (next[g] >= graphs[g].ops.size()) continue;
      const double frac =
          static_cast<double>(next[g]) / static_cast<double>(graphs[g].ops.size());
      if (frac < best_frac) {
        best_frac = frac;
        best = g;
      }
    }
    if (best == graphs.size()) break;
    HighOp op = graphs[best].ops[next[best]];
    for (std::size_t& dep : op.deps) dep = remap[best][dep];
    remap[best][next[best]] = merged.ops.size();
    merged.add(std::move(op));
    ++next[best];
  }
  return merged;
}

}  // namespace alchemist::sim
