#include "sim/event_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "metaop/lowering.h"

namespace alchemist::sim {

namespace {

using metaop::HighOp;
using metaop::MetaOpBatch;
using metaop::MetaOpStream;
using metaop::OpClass;
using metaop::OpGraph;
using metaop::OpKind;

OpClass class_of(OpKind kind) {
  switch (kind) {
    case OpKind::Ntt:
    case OpKind::Intt: return OpClass::Ntt;
    case OpKind::Bconv: return OpClass::Bconv;
    case OpKind::DecompPolyMult: return OpClass::DecompPolyMult;
    default: return OpClass::Elementwise;
  }
}

struct OpState {
  double work = 0;        // core-cycles of Meta-OP work (incl. transpose)
  double hbm_ready = 0;   // earliest time this op's prefetched keys land
  double busy_lanes = 0;  // lane-cycles for utilization accounting
  OpClass cls = OpClass::Elementwise;
  std::size_t unmet_deps = 0;
  std::vector<std::size_t> dependents;
  bool running = false;
  bool done = false;
};

}  // namespace

SimResult simulate_alchemist_events(const OpGraph& graph,
                                    const arch::ArchConfig& config) {
  SimResult result;
  result.workload = graph.name;
  result.accelerator = "Alchemist(event)";
  if (graph.ops.empty()) return result;

  const double cores = static_cast<double>(config.total_cores());
  const double hbm_bpc = config.hbm_bytes_per_cycle();
  const double transpose_words_per_cycle =
      static_cast<double>(config.num_units * config.lanes);

  std::vector<OpState> state(graph.ops.size());
  for (std::size_t i = 0; i < graph.ops.size(); ++i) {
    const HighOp& op = graph.ops[i];
    const MetaOpStream stream = metaop::lower(op);
    OpState& s = state[i];
    s.cls = class_of(op.kind);
    s.work = static_cast<double>(stream.core_cycles());
    for (const MetaOpBatch& b : stream.batches) {
      s.busy_lanes += static_cast<double>(b.count * config.lanes * (b.n + 2));
    }
    if (op.kind == OpKind::Ntt || op.kind == OpKind::Intt) {
      const double words = static_cast<double>(op.n) *
                           static_cast<double>(std::max<std::size_t>(op.channels, 1));
      // Serialized half of the transpose, expressed as extra machine work.
      s.work += words / transpose_words_per_cycle / 2.0 * cores;
      result.transpose_cycles += static_cast<std::uint64_t>(
          words / transpose_words_per_cycle / 2.0);
    }
    s.unmet_deps = op.deps.size();
    for (std::size_t dep : op.deps) {
      if (dep >= i) throw std::invalid_argument("event sim: deps must point backwards");
      state[dep].dependents.push_back(i);
    }
    result.total_mults += stream.mult_count();
  }

  // Key prefetching: the scheduler knows the op stream in advance, so HBM
  // streams each op's keys in order starting at t=0; an op can only retire
  // once its cumulative key traffic has landed.
  double bytes_prefix = 0;
  for (std::size_t i = 0; i < graph.ops.size(); ++i) {
    bytes_prefix += static_cast<double>(graph.ops[i].hbm_bytes);
    state[i].hbm_ready = bytes_prefix / hbm_bpc;
  }

  std::vector<std::size_t> running;
  for (std::size_t i = 0; i < state.size(); ++i) {
    if (state[i].unmet_deps == 0) {
      state[i].running = true;
      running.push_back(i);
    }
  }

  double now = 0;
  double busy_integral = 0;  // lane-cycles actually delivered
  std::size_t completed = 0;
  while (!running.empty()) {
    // Work-conserving equal share of the cores among live compute demands.
    std::size_t compute_live = 0;
    for (std::size_t idx : running) compute_live += state[idx].work > 0 ? 1 : 0;
    const double core_share = compute_live ? cores / compute_live : 0;

    // Next completion event.
    double dt = std::numeric_limits<double>::infinity();
    for (std::size_t idx : running) {
      const OpState& s = state[idx];
      double t_done = s.work > 0 ? s.work / core_share : 0;
      t_done = std::max(t_done, s.hbm_ready - now);
      dt = std::min(dt, t_done);
    }
    if (!(dt > 0) || !std::isfinite(dt)) dt = 1.0;  // zero-work ops finish now

    // Advance time and drain work.
    now += dt;
    std::vector<std::size_t> still_running;
    for (std::size_t idx : running) {
      OpState& s = state[idx];
      if (s.work > 0) {
        const double delivered = std::min(s.work, core_share * dt);
        busy_integral += delivered / s.work * s.busy_lanes;  // proportional
        s.busy_lanes -= delivered / std::max(s.work, 1e-9) * s.busy_lanes;
        s.work -= delivered;
        if (s.work < 1e-9) s.work = 0;
      }
      if (s.work == 0 && now + 1e-9 >= s.hbm_ready) {
        s.done = true;
        ++completed;
        for (std::size_t dep : s.dependents) {
          if (--state[dep].unmet_deps == 0) {
            state[dep].running = true;
            still_running.push_back(dep);
          }
        }
      } else {
        still_running.push_back(idx);
      }
    }
    running = std::move(still_running);
  }
  if (completed != graph.ops.size()) {
    throw std::logic_error("event sim: dependency cycle or unreachable ops");
  }

  result.cycles = static_cast<std::uint64_t>(std::ceil(now));
  result.time_us = now / (config.freq_ghz * 1e3);
  result.utilization =
      now > 0 ? busy_integral / (static_cast<double>(config.peak_lanes()) * now) : 0;
  return result;
}

metaop::OpGraph merge_graphs(const std::vector<OpGraph>& graphs,
                             const std::string& name) {
  // Proportional interleave: ops of the streams alternate in schedule order
  // (preserving each stream's internal dependencies), so key prefetching for
  // one stream overlaps compute of the others — the time-sharing scheduling
  // of §5.4.
  OpGraph merged;
  merged.name = name;
  std::vector<std::size_t> next(graphs.size(), 0);
  // Remap: new index of op j of graph g.
  std::vector<std::vector<std::size_t>> remap(graphs.size());
  for (std::size_t g = 0; g < graphs.size(); ++g) {
    remap[g].resize(graphs[g].ops.size());
  }
  for (;;) {
    // Pick the stream with the smallest consumed fraction.
    std::size_t best = graphs.size();
    double best_frac = 2.0;
    for (std::size_t g = 0; g < graphs.size(); ++g) {
      if (next[g] >= graphs[g].ops.size()) continue;
      const double frac =
          static_cast<double>(next[g]) / static_cast<double>(graphs[g].ops.size());
      if (frac < best_frac) {
        best_frac = frac;
        best = g;
      }
    }
    if (best == graphs.size()) break;
    HighOp op = graphs[best].ops[next[best]];
    for (std::size_t& dep : op.deps) dep = remap[best][dep];
    remap[best][next[best]] = merged.ops.size();
    merged.add(std::move(op));
    ++next[best];
  }
  return merged;
}

}  // namespace alchemist::sim
