// Analytical model of modularized (operator-spatial-multiplexed) baseline
// accelerators: dedicated NTTU / BconvU / element-wise engines.
//
// The same op graph Alchemist runs is scheduled level by level; within a
// level each engine processes its own operator class concurrently, so the
// level's wall time is the *slowest* engine's time (plus off-chip stalls).
// Because real FHE levels are dominated by one class at a time, the other
// engines idle — this is exactly the utilization mismatch of Fig. 1 / Fig.
// 7(b) that motivates the unified design. Baselines execute the original
// (eagerly reduced) multiplication counts; the Meta-OP lazy-reduction saving
// is Alchemist-specific.
#pragma once

#include "arch/baselines.h"
#include "metaop/op_graph.h"
#include "sim/result.h"

namespace alchemist::sim {

SimResult simulate_modular(const metaop::OpGraph& graph,
                           const arch::AcceleratorSpec& spec);

}  // namespace alchemist::sim
