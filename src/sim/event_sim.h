// Discrete-event simulator — the fine-grained cross-check for the analytical
// (ASAP-level) Alchemist model.
//
// Ops become ready the moment their dependencies complete (no level
// barriers). Running ops share the 2048 cores work-conservingly (an op can
// absorb the whole machine: its Meta-OP batches are wide) and share the HBM
// channel the same way; an op completes when both its compute work and its
// key streaming are done. Events are op completions.
//
// Because the event model removes the level barriers, its cycle count is a
// lower bound on the analytical model's; tests pin the two within a small
// factor and above the absolute lower bound (work/cores, bytes/bandwidth).
//
// Telemetry: with `config.telemetry` set and a Timeline sink passed, each op
// is recorded with its *actual* ready/start/end times on its operator class's
// unit-group tracks, plus per-op HBM key-streaming slices — recording never
// perturbs the reported SimResult.
//
// Profiling mirrors simulate_alchemist: an optional UnitProfiler accrues the
// delivered/reduction/scratchpad core-cycles of every completion interval
// (core sharing is uniform across units, so one fractional profile covers
// the machine) and integerizes at the end so each unit's buckets sum exactly
// to the cycle count. Dropped on checkpoint resume; no counter tracks are
// emitted by this engine (the level engine's per-level sampling is the
// Perfetto view).
//
// Memory profiling mirrors simulate_alchemist: an optional MemProfiler fills
// SimResult.mem_profile (memory.v1) from the op stream in HBM prefetch order
// with each op's actual retirement time. The feed happens after the event
// loop from per-op state that checkpoint/resume restores exactly, so — unlike
// the UnitProfiler — a resumed run's memory.v1 is bit-identical to an
// uninterrupted one with no extra checkpoint bytes.
//
// Fault modeling mirrors simulate_alchemist (see alchemist_sim.h): the same
// FaultModel degrades the geometry, inflates slot-partitioned work for the
// re-homed stripe, and charges policy-priced retry work per op — sampled in
// graph index order so a fixed seed reproduces the run on either engine.
//
// Execution control: with a sim::SimControl attached the event loop becomes
// cooperative — a step is one completion interval. The engine polls the
// CancelToken / step budget each iteration and can snapshot its cursor (event
// clock, per-op remaining work, ready set) into a Checkpoint; the per-op
// setup (lowering, fault sampling, key prefetch schedule) is deterministic
// and is simply recomputed on resume, so a resumed run's SimResult is
// bit-identical to an uninterrupted one.
#pragma once

#include "arch/config.h"
#include "fault/fault_model.h"
#include "metaop/op_graph.h"
#include "obs/timeline.h"
#include "sim/result.h"
#include "sim/mem_profiler.h"
#include "sim/sim_control.h"
#include "sim/unit_profiler.h"

namespace alchemist::sim {

SimResult simulate_alchemist_events(const metaop::OpGraph& graph,
                                    const arch::ArchConfig& config,
                                    obs::Timeline* timeline = nullptr,
                                    fault::FaultModel* fault_model = nullptr,
                                    SimControl* control = nullptr,
                                    UnitProfiler* profiler = nullptr,
                                    MemProfiler* mem_profiler = nullptr);

// Time-sharing scheduler (§5.4): interleave independent operation streams
// into one graph so compute of one stream overlaps key streaming of another.
metaop::OpGraph merge_graphs(const std::vector<metaop::OpGraph>& graphs,
                             const std::string& name);

}  // namespace alchemist::sim
