#include "sim/unit_profiler.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "sim/telemetry.h"

namespace alchemist::sim {

namespace {

using metaop::class_tag;
using metaop::kNumOpClasses;
using metaop::OpClass;

std::string unit_track_name(std::size_t unit) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "util/unit%03zu", unit);
  return buf;
}

// Integerize `weights` so they sum to `target` (largest-remainder method;
// ties break on the lower index so the result is deterministic).
template <std::size_t N>
std::array<std::uint64_t, N> apportion(const std::array<double, N>& weights,
                                       std::uint64_t target) {
  std::array<std::uint64_t, N> out{};
  double total = 0;
  for (double w : weights) total += std::max(w, 0.0);
  if (target == 0 || total <= 0) return out;
  std::array<double, N> frac{};
  std::uint64_t assigned = 0;
  for (std::size_t i = 0; i < N; ++i) {
    const double ideal =
        std::max(weights[i], 0.0) / total * static_cast<double>(target);
    out[i] = static_cast<std::uint64_t>(ideal);
    frac[i] = ideal - static_cast<double>(out[i]);
    assigned += out[i];
  }
  std::array<std::size_t, N> order{};
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return frac[a] > frac[b];
  });
  for (std::size_t i = 0; assigned < target; ++i) {
    out[order[i % N]] += 1;
    ++assigned;
  }
  return out;
}

}  // namespace

void UnitProfiler::begin(std::size_t num_units, std::size_t cores_per_unit,
                         obs::Timeline* timeline) {
  num_units_ = num_units;
  cores_per_unit_ = std::max<std::size_t>(cores_per_unit, 1);
  timeline_ = timeline;
  diff_busy_.assign(num_units + 1, 0);
  diff_reduction_.assign(num_units + 1, 0);
  diff_dependency_.assign(num_units + 1, 0);
  scratch_cycles_ = 0;
  if (timeline_ != nullptr) {
    for (std::size_t u = 0; u < num_units_; ++u) {
      timeline_->set_track_name(kUtilTidBase + static_cast<std::uint32_t>(u),
                                unit_track_name(u));
    }
  }
}

void UnitProfiler::add_level(std::uint64_t start_cycle, const Level& level) {
  if (num_units_ == 0) return;
  const std::uint64_t U = num_units_;
  const std::uint64_t C = cores_per_unit_;
  const std::uint64_t W = level.core_cycles;
  const std::uint64_t R = level.reduction_core_cycles;
  const std::uint64_t compute_wall = (W + U * C - 1) / (U * C);
  const std::uint64_t level_wall = compute_wall + level.transpose_cycles;

  // Class attribution is deferred to finish(): accumulating the per-class
  // core-cycle totals here and splitting each unit's occupied cycles once at
  // the end keeps this per-level path free of string-keyed map updates.
  for (std::size_t c = 0; c < kNumOpClasses; ++c) {
    acc_class_[c] += static_cast<double>(level.class_core_cycles[c]);
  }
  scratch_cycles_ += level.transpose_cycles;

  // Unit u's buckets for this level, constant between the remainder cuts.
  const std::uint64_t qW = W / U, rW = W % U;
  const std::uint64_t qR = R / U, rR = R % U;
  auto unit_buckets = [&](std::uint64_t u) {
    const std::uint64_t work_u = qW + (u < rW ? 1 : 0);
    const std::uint64_t occ_u = (work_u + C - 1) / C;
    const std::uint64_t red_core_u = qR + (u < rR ? 1 : 0);
    const std::uint64_t red_u = std::min(occ_u, (red_core_u + C - 1) / C);
    // {busy, reduction, dependency}
    return std::array<std::uint64_t, 3>{occ_u - red_u, red_u,
                                        compute_wall - occ_u};
  };
  const std::array<std::uint64_t, 4> cut = {0, std::min(rW, rR),
                                            std::max(rW, rR), U};
  for (int s = 0; s < 3; ++s) {
    const std::uint64_t a = cut[s], b = cut[s + 1];
    if (a >= b) continue;
    const auto [busy, red, dep] = unit_buckets(a);
    diff_busy_[a] += static_cast<std::int64_t>(busy);
    diff_busy_[b] -= static_cast<std::int64_t>(busy);
    diff_reduction_[a] += static_cast<std::int64_t>(red);
    diff_reduction_[b] -= static_cast<std::int64_t>(red);
    diff_dependency_[a] += static_cast<std::int64_t>(dep);
    diff_dependency_[b] -= static_cast<std::int64_t>(dep);
  }

  // Trace mode pays the O(units) loop; profiling without a trace does not.
  if (timeline_ != nullptr && level_wall > 0) {
    const double wall = static_cast<double>(level_wall);
    for (std::uint64_t u = 0; u < U; ++u) {
      const auto [busy_u, red_u, dep_u] = unit_buckets(u);
      obs::CounterEvent ev;
      ev.name = unit_track_name(u);
      ev.tid = kUtilTidBase + static_cast<std::uint32_t>(u);
      ev.ts = static_cast<double>(start_cycle);
      ev.series = {
          {"busy", static_cast<double>(busy_u) / wall},
          {"reduction", static_cast<double>(red_u) / wall},
          {"stall",
           static_cast<double>(dep_u + level.transpose_cycles) / wall},
      };
      timeline_->record_counter(std::move(ev));
    }
  }
}

void UnitProfiler::accrue(
    double dt, double delivered, double reduction, double scratch,
    const std::array<double, metaop::kNumOpClasses>& class_delivered,
    bool compute_live) {
  if (num_units_ == 0) return;
  event_mode_ = true;
  const double denom =
      static_cast<double>(num_units_) * static_cast<double>(cores_per_unit_);
  const double occ = std::max(delivered - scratch, 0.0) / denom;
  acc_time_ += dt;
  acc_occupied_ += occ;
  acc_reduction_ += reduction / denom;
  acc_scratch_ += scratch / denom;
  if (!compute_live) acc_idle_ += dt;
  for (std::size_t c = 0; c < kNumOpClasses; ++c) {
    acc_class_[c] += class_delivered[c] / denom;
  }
}

void UnitProfiler::finish(std::uint64_t total_cycles,
                          obs::UtilizationProfile& out) {
  out.clear();
  if (num_units_ == 0) return;
  out.total_cycles = total_cycles;

  if (!event_mode_) {
    // Level mode is exact already; prefix-sum the per-level difference
    // arrays into per-unit buckets. The only unaccounted cycles are the
    // trailing HBM drain, identical for every unit — pad them into idle.
    // Each unit's occupied cycles are split across op classes proportionally
    // to the run's per-class core-cycle totals (largest-remainder, so the
    // class cycles sum exactly to the unit's occupied cycles).
    out.units.assign(num_units_, obs::UnitCycles{});
    std::int64_t busy = 0, red = 0, dep = 0;
    for (std::size_t u = 0; u < num_units_; ++u) {
      busy += diff_busy_[u];
      red += diff_reduction_[u];
      dep += diff_dependency_[u];
      obs::UnitCycles& unit = out.units[u];
      unit.busy = static_cast<std::uint64_t>(busy);
      unit.reduction = static_cast<std::uint64_t>(red);
      unit.stall_dependency = static_cast<std::uint64_t>(dep);
      unit.stall_scratchpad = scratch_cycles_;
      const std::uint64_t t = unit.total();
      if (t < total_cycles) unit.idle += total_cycles - t;
      const auto split = apportion(acc_class_, unit.occupied());
      for (std::size_t c = 0; c < kNumOpClasses; ++c) {
        if (split[c] > 0)
          unit.class_occupied[class_tag(static_cast<OpClass>(c))] += split[c];
      }
      if (timeline_ != nullptr) {
        obs::CounterEvent ev;
        ev.name = unit_track_name(u);
        ev.tid = kUtilTidBase + static_cast<std::uint32_t>(u);
        ev.ts = static_cast<double>(total_cycles);
        ev.series = {{"busy", 0.0}, {"reduction", 0.0}, {"stall", 0.0}};
        timeline_->record_counter(std::move(ev));
      }
    }
    return;
  }

  // Event mode: units share the cores uniformly, so one fractional profile
  // integerizes into one per-unit record replicated across the machine.
  const double total = static_cast<double>(total_cycles);
  double busy_d = std::max(acc_occupied_ - acc_reduction_, 0.0);
  double red_d = std::min(acc_reduction_, acc_occupied_);
  double scr_d = acc_scratch_;
  double idle_d = acc_idle_;
  double sum = busy_d + red_d + scr_d + idle_d;
  if (sum > total && sum > 0) {
    const double scale = total / sum;
    busy_d *= scale;
    red_d *= scale;
    scr_d *= scale;
    idle_d *= scale;
    sum = total;
  }
  // Whatever the interval accounting did not attribute — undersubscribed
  // cores while compute was live, plus the final ceil() slack — is the
  // dependency stall.
  const double dep_d = total - sum;
  const auto buckets = apportion<5>({busy_d, red_d, scr_d, dep_d, idle_d},
                                    total_cycles);
  obs::UnitCycles unit;
  unit.busy = buckets[0];
  unit.reduction = buckets[1];
  unit.stall_scratchpad = buckets[2];
  unit.stall_dependency = buckets[3];
  unit.idle = buckets[4];
  const auto split = apportion(acc_class_, unit.occupied());
  for (std::size_t c = 0; c < kNumOpClasses; ++c) {
    if (split[c] > 0)
      unit.class_occupied[class_tag(static_cast<OpClass>(c))] += split[c];
  }
  out.units.assign(num_units_, unit);
}

}  // namespace alchemist::sim
