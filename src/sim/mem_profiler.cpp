#include "sim/mem_profiler.h"

#include <algorithm>
#include <utility>

#include "metaop/metaop.h"
#include "sim/telemetry.h"

namespace alchemist::sim {

namespace {
constexpr std::size_t kOperands = metaop::kNumOperandClasses;
constexpr std::size_t kClasses = metaop::kNumOpClasses;
}  // namespace

void MemProfiler::begin(const arch::ArchConfig& cfg, obs::Timeline* timeline) {
  active_ = true;
  hbm_bpc_ = cfg.hbm_bytes_per_cycle();
  if (hbm_bpc_ <= 0) hbm_bpc_ = 1.0;
  capacity_bytes_ = static_cast<std::uint64_t>(cfg.total_sram_kb()) * 1024;
  timeline_ = timeline;
  if (timeline_ && timeline_->enabled()) {
    timeline_->set_track_name(kMemBwTid, "mem/bw");
    timeline_->set_track_name(kMemScratchTid, "mem/scratchpad");
  }
  bytes_prefix_ = 0;
  total_bytes_ = 0;
  for (auto& row : bytes_) row.fill(0);
  keys_.clear();
  intervals_.clear();
}

void MemProfiler::record_op(const metaop::HighOp& op, double release_cycle) {
  if (!active_ || op.hbm_bytes == 0) return;

  const auto cls = static_cast<std::size_t>(metaop::class_of(op.kind));
  // Attribute descriptor bytes; the sum is clamped to hbm_bytes so the
  // conservation invariant survives a buggy lowering, and any shortfall is
  // unattributed ciphertext-limb traffic.
  std::uint64_t attributed = 0;
  for (const metaop::TransferDesc& t : op.transfers) {
    std::uint64_t b = std::min(t.bytes, op.hbm_bytes - attributed);
    if (b == 0) continue;
    bytes_[static_cast<std::size_t>(t.operand_class)][cls] += b;
    attributed += b;
    if (t.key_id != 0) {
      Ledger& entry = keys_[t.key_id];
      entry.operand = static_cast<std::uint8_t>(t.operand_class);
      entry.fetches += 1;
      entry.total_bytes += b;
      if (entry.fetches > 1) entry.refetch_bytes += b;
    }
  }
  if (attributed < op.hbm_bytes) {
    bytes_[static_cast<std::size_t>(metaop::OperandClass::CtLimb)][cls] +=
        op.hbm_bytes - attributed;
  }

  // Stream model: the HBM channel services fetches back-to-back in schedule
  // order at full bandwidth; the fetched working set stays resident in the
  // scratchpad until the op retires.
  const double fetch_start = bytes_prefix_ / hbm_bpc_;
  bytes_prefix_ += static_cast<double>(op.hbm_bytes);
  const double fetch_end = bytes_prefix_ / hbm_bpc_;
  total_bytes_ += op.hbm_bytes;
  intervals_.push_back(Interval{fetch_start, fetch_end,
                                std::max(release_cycle, fetch_end),
                                op.hbm_bytes});
}

void MemProfiler::finish(std::uint64_t total_cycles, obs::MemoryProfile& out) {
  if (!active_) return;
  out.clear();
  out.active = true;
  out.total_cycles = total_cycles;
  out.total_bytes = total_bytes_;
  out.scratch_capacity_bytes = capacity_bytes_;
  out.evictions = intervals_.size();  // each working set is evicted once

  for (std::size_t o = 0; o < kOperands; ++o) {
    for (std::size_t c = 0; c < kClasses; ++c) {
      if (bytes_[o][c] == 0) continue;
      out.attributed[metaop::operand_tag(
          static_cast<metaop::OperandClass>(o))]
                    [metaop::class_tag(static_cast<metaop::OpClass>(c))] +=
          bytes_[o][c];
    }
  }
  for (const auto& [id, entry] : keys_) {
    obs::KeyFetches kf;
    kf.operand =
        metaop::operand_tag(static_cast<metaop::OperandClass>(entry.operand));
    kf.fetches = entry.fetches;
    kf.total_bytes = entry.total_bytes;
    kf.refetch_bytes = entry.refetch_bytes;
    out.keys.emplace(id, std::move(kf));
  }

  // Exact residency high-water mark: endpoint sweep, releases before fetches
  // at equal timestamps (a set leaving makes room for the next in the same
  // cycle).
  std::vector<std::pair<double, std::int64_t>> events;
  events.reserve(intervals_.size() * 2);
  for (const Interval& iv : intervals_) {
    events.emplace_back(iv.fetch_start, static_cast<std::int64_t>(iv.bytes));
    events.emplace_back(iv.release, -static_cast<std::int64_t>(iv.bytes));
  }
  std::sort(events.begin(), events.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second < b.second;  // negative (release) first at ties
  });
  std::int64_t resident = 0, peak = 0;
  for (const auto& [ts, delta] : events) {
    resident += delta;
    peak = std::max(peak, resident);
  }
  out.scratch_peak_bytes = static_cast<std::uint64_t>(std::max<std::int64_t>(peak, 0));

  // Epoch timelines over [0, total_cycles).
  if (total_cycles > 0) {
    const double epoch_len = static_cast<double>(total_cycles) / kEpochs;
    out.bw_util.assign(kEpochs, 0.0);
    out.occupancy_bytes.assign(kEpochs, 0);
    for (std::size_t e = 0; e < kEpochs; ++e) {
      const double lo = e * epoch_len;
      const double hi = lo + epoch_len;
      double busy = 0;
      std::uint64_t occ = 0;
      for (const Interval& iv : intervals_) {
        busy += std::max(0.0, std::min(iv.fetch_end, hi) -
                                  std::max(iv.fetch_start, lo));
        if (iv.fetch_start <= lo && lo < iv.release) occ += iv.bytes;
      }
      out.bw_util[e] = std::min(1.0, busy / epoch_len);
      out.occupancy_bytes[e] = occ;
    }
    if (timeline_ && timeline_->enabled()) {
      for (std::size_t e = 0; e < kEpochs; ++e) {
        obs::CounterEvent bw;
        bw.name = "mem/bw";
        bw.tid = kMemBwTid;
        bw.ts = e * epoch_len;
        bw.series.emplace_back("bw_pct", 100.0 * out.bw_util[e]);
        timeline_->record_counter(std::move(bw));
        obs::CounterEvent sp;
        sp.name = "mem/scratchpad";
        sp.tid = kMemScratchTid;
        sp.ts = e * epoch_len;
        sp.series.emplace_back("resident_bytes",
                               static_cast<double>(out.occupancy_bytes[e]));
        timeline_->record_counter(std::move(sp));
      }
    }
  }
}

void MemProfiler::serialize(BinaryWriter& w) const {
  w.write_double(bytes_prefix_);
  w.write_u64(total_bytes_);
  for (const auto& row : bytes_)
    for (std::uint64_t b : row) w.write_u64(b);
  w.write_u64(keys_.size());
  for (const auto& [id, entry] : keys_) {
    w.write_u64(id);
    w.write_u8(entry.operand);
    w.write_u64(entry.fetches);
    w.write_u64(entry.total_bytes);
    w.write_u64(entry.refetch_bytes);
  }
  w.write_u64(intervals_.size());
  for (const Interval& iv : intervals_) {
    w.write_double(iv.fetch_start);
    w.write_double(iv.fetch_end);
    w.write_double(iv.release);
    w.write_u64(iv.bytes);
  }
}

void MemProfiler::deserialize(BinaryReader& r) {
  bytes_prefix_ = r.read_double();
  total_bytes_ = r.read_u64();
  for (auto& row : bytes_)
    for (std::uint64_t& b : row) b = r.read_u64();
  keys_.clear();
  const std::uint64_t n_keys = r.read_u64();
  for (std::uint64_t i = 0; i < n_keys; ++i) {
    const std::uint64_t id = r.read_u64();
    Ledger entry;
    entry.operand = r.read_u8();
    entry.fetches = r.read_u64();
    entry.total_bytes = r.read_u64();
    entry.refetch_bytes = r.read_u64();
    keys_.emplace(id, entry);
  }
  intervals_.clear();
  const std::uint64_t n_iv = r.read_u64();
  // 33 bytes/interval minimum: cap the reserve against the bytes actually
  // remaining (the serdes discipline — never allocate on a declared length).
  intervals_.reserve(
      static_cast<std::size_t>(std::min<std::uint64_t>(n_iv, r.remaining() / 32)));
  for (std::uint64_t i = 0; i < n_iv; ++i) {
    Interval iv;
    iv.fetch_start = r.read_double();
    iv.fetch_end = r.read_double();
    iv.release = r.read_double();
    iv.bytes = r.read_u64();
    intervals_.push_back(iv);
  }
}

}  // namespace alchemist::sim
