// UnitProfiler — per-unit cycle attribution for both Alchemist engines.
//
// The profiler partitions every simulated cycle of every computing unit into
// the utilization.v1 buckets (obs/utilization.h): busy, reduction,
// stall:scratchpad (transpose), stall:dependency (waiting inside the
// schedule), idle (no compute mapped, incl. the trailing HBM drain). It is
// strictly an observer: engines feed it copies of quantities they already
// compute, it never feeds anything back, so a profiled run returns a
// bit-identical SimResult (tests pin this).
//
// Two feeding modes, one per engine:
//
//  * Level engine (integer): one add_level() per ASAP level. The pooled-core
//    model spreads a level's W core-cycles uniformly, so unit u receives
//    work_u = W/U + (u < W%U) core-cycles and occupies ceil(work_u/C) cycles
//    of the level's compute wall ceil(W/(U*C)) — never more, since
//    work_u <= ceil(W/U) <= C*ceil(W/(U*C)). The gap to the wall is
//    stall:dependency; the transpose tail stalls every unit (scratchpad).
//
//  * Event engine (fractional): one accrue() per simulation interval with
//    the interval's delivered core-cycles split into reduction/scratchpad
//    shares. Core sharing is uniform across units, so the profiler keeps one
//    set of double accumulators and integerizes per unit at finish() via
//    largest-remainder so each unit's buckets still sum exactly to
//    total_cycles.
//
// finish() pads the residual (trailing HBM stall in the level engine, the
// final ceil() slack in the event engine) into idle, enforcing the exact
// per-unit invariant sum(buckets) == total_cycles.
//
// Checkpoint-resumed runs cannot be profiled — the cycles before the resume
// point were accounted in a different process and only survive as aggregate
// counters. Engines drop the profiler on resume; the profile is then empty.
//
// When a Timeline is attached, add_level() additionally emits one counter
// sample per unit per level on the kUtilTidBase+unit tracks (busy/reduction/
// stall fractions of the level wall), rendering as stacked per-unit
// occupancy charts next to the op rows in Perfetto.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "metaop/metaop.h"
#include "obs/timeline.h"
#include "obs/utilization.h"

namespace alchemist::sim {

class UnitProfiler {
 public:
  // Geometry comes from the (possibly fault-degraded) ArchConfig the engine
  // actually simulates.
  void begin(std::size_t num_units, std::size_t cores_per_unit,
             obs::Timeline* timeline = nullptr);

  // --- level engine ---------------------------------------------------
  struct Level {
    std::uint64_t core_cycles = 0;            // W: total work incl. retries
    std::uint64_t reduction_core_cycles = 0;  // 2-cycle tails within W
    std::uint64_t transpose_cycles = 0;       // serialized transpose wall
    std::array<std::uint64_t, metaop::kNumOpClasses> class_core_cycles{};
  };
  void add_level(std::uint64_t start_cycle, const Level& level);

  // --- event engine ---------------------------------------------------
  // One simulation interval of length dt machine-cycles: `delivered` core-
  // cycles were drained in total, of which `reduction` were Meta-OP reduction
  // tails and `scratch` transpose traffic; `class_delivered` splits the
  // non-scratch part by op class. compute_live=false marks an HBM-only wait.
  void accrue(double dt, double delivered, double reduction, double scratch,
              const std::array<double, metaop::kNumOpClasses>& class_delivered,
              bool compute_live);

  // Fill `out` so that every unit's buckets sum exactly to total_cycles.
  void finish(std::uint64_t total_cycles, obs::UtilizationProfile& out);

  bool active() const { return num_units_ > 0; }

 private:
  std::size_t num_units_ = 0;
  std::size_t cores_per_unit_ = 0;
  obs::Timeline* timeline_ = nullptr;

  // Level mode: a level's per-unit share is piecewise constant in the unit
  // index (units below W%U / R%U carry one extra core-cycle), so each level
  // contributes three range-adds on difference arrays instead of an O(units)
  // loop; finish() prefix-sums them into per-unit buckets. Scratchpad stall
  // is identical for every unit and stays a scalar.
  std::vector<std::int64_t> diff_busy_, diff_reduction_, diff_dependency_;
  std::uint64_t scratch_cycles_ = 0;

  // Event mode: shared accumulators (units are interchangeable).
  double acc_time_ = 0;
  double acc_occupied_ = 0;   // per-unit occupied time (non-scratch)
  double acc_reduction_ = 0;  // per-unit reduction share of occupied
  double acc_scratch_ = 0;    // per-unit scratchpad-stall time
  double acc_idle_ = 0;       // whole-machine HBM waits
  // Per-class core-cycle totals; fed by BOTH modes and split across each
  // unit's occupied cycles at finish() (keeps add_level() integer-only).
  std::array<double, metaop::kNumOpClasses> acc_class_{};
  bool event_mode_ = false;
};

}  // namespace alchemist::sim
