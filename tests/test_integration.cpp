// Cross-module integration: pipelines that span several subsystems at once.
#include <gtest/gtest.h>

#include <memory>

#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keygen.h"
#include "ckks/packed_ops.h"
#include "common/rng.h"
#include "serdes/fhe_serdes.h"
#include "sim/alchemist_sim.h"
#include "sim/tracer.h"
#include "tfhe/lut.h"

namespace alchemist {
namespace {

TEST(Integration, SerializeEvaluateDeserializeEvaluate) {
  // Keys and a ciphertext cross a (simulated) wire mid-computation; the
  // pipeline must continue identically on the other side.
  using namespace ckks;
  auto ctx = std::make_shared<CkksContext>(CkksParams::toy(512, 4, 2));
  CkksEncoder encoder(ctx);
  KeyGenerator keygen(ctx, 77);
  Encryptor encryptor(ctx, keygen.make_public_key());
  Decryptor decryptor(ctx, keygen.secret_key());
  Evaluator evaluator(ctx);
  const RelinKeys rk = keygen.make_relin_keys();

  const std::vector<double> z = {0.5, -0.25};
  Ciphertext ct = encryptor.encrypt(
      encoder.encode(std::span<const double>(z), 4, ctx->params().scale()));
  ct = evaluator.rescale(evaluator.multiply(ct, ct, rk));  // z^2, level 3

  BinaryWriter w;
  serdes::write(w, ct);
  serdes::write(w, rk);
  BinaryReader r(w.buffer());
  Ciphertext ct2 = serdes::read_ckks_ciphertext(r);
  const RelinKeys rk2 = serdes::read_relin_keys(r);

  // Continue on the "other side": square again with the reloaded key.
  ct2 = evaluator.rescale(evaluator.multiply(ct2, ct2, rk2));
  const auto dec = decryptor.decrypt(ct2, encoder);
  EXPECT_NEAR(dec[0].real(), 0.0625, 1e-3);   // 0.5^4
  EXPECT_NEAR(dec[1].real(), 0.00390625, 1e-3);  // 0.25^4
}

TEST(Integration, TracedPackedPipelineSimulates) {
  // packed_ops + tracer + simulator: a real inner-product program costs
  // itself at paper scale.
  using namespace ckks;
  auto ctx = std::make_shared<CkksContext>(CkksParams::toy(512, 4, 2));
  CkksEncoder encoder(ctx);
  KeyGenerator keygen(ctx, 78);
  Encryptor encryptor(ctx, keygen.make_public_key());
  Decryptor decryptor(ctx, keygen.secret_key());
  Evaluator evaluator(ctx);
  const RelinKeys rk = keygen.make_relin_keys();
  const GaloisKeys gk = keygen.make_galois_keys(
      power_of_two_rotations(ctx->params().slots()));

  sim::TracedEvaluator traced(ctx, evaluator, /*arch_n=*/65536,
                              /*hbm_stream_fraction=*/0.05);
  Rng rng(5);
  std::vector<double> a(ctx->params().slots()), b(ctx->params().slots());
  for (auto& v : a) v = 2 * rng.uniform_real() - 1;
  for (auto& v : b) v = 2 * rng.uniform_real() - 1;
  auto ta = traced.wrap(encryptor.encrypt(
      encoder.encode(std::span<const double>(a), 4, ctx->params().scale())));
  auto tb = traced.wrap(encryptor.encrypt(
      encoder.encode(std::span<const double>(b), 4, ctx->params().scale())));

  auto prod = traced.multiply_rescale(ta, tb, rk);
  for (std::size_t s = 1; s < ctx->params().slots(); s <<= 1) {
    prod = traced.add(prod, traced.rotate(prod, static_cast<int>(s), gk));
  }

  // Crypto correct:
  double expected = 0;
  for (std::size_t i = 0; i < a.size(); ++i) expected += a[i] * b[i];
  EXPECT_NEAR(decryptor.decrypt(prod.ct, encoder)[0].real(), expected, 5e-2);

  // Trace simulates at paper scale with high utilization.
  const auto result = sim::simulate_alchemist(traced.graph(),
                                              arch::ArchConfig::alchemist());
  EXPECT_GT(result.cycles, 10000u);
  EXPECT_GT(result.utilization, 0.7);
}

TEST(Integration, EncIntLutFeedsComparator) {
  // TFHE: apply a nonlinear LUT, then compare the result — gate bootstrapping
  // composes indefinitely.
  using namespace tfhe;
  Rng rng(79);
  TfheParams params = TfheParams::toy();
  params.degree = 128;
  const LweKey lwe_key = lwe_keygen(params.n_lwe, rng);
  const TrlweKey trlwe_key = trlwe_keygen(params, rng);
  const BootstrapContext ctx = make_bootstrap_context(params, lwe_key, trlwe_key, rng);

  const EncInt x = encrypt_int(5, 4, lwe_key, params.lwe_sigma, rng);
  const EncInt y = apply_lut(x, [](u64 m) { return (m * 3) & 0xF; }, ctx);  // 15
  const EncInt limit = encrypt_int(12, 4, lwe_key, params.lwe_sigma, rng);
  EXPECT_EQ(decrypt_int(y, lwe_key), 15u);
  EXPECT_TRUE(decrypt_bit(less_than(limit, y, ctx), lwe_key));   // 12 < 15
  EXPECT_FALSE(decrypt_bit(less_than(y, limit, ctx), lwe_key));
}

}  // namespace
}  // namespace alchemist
