#include <gtest/gtest.h>

#include "common/primes.h"
#include "common/rng.h"
#include "poly/lazy_kernels.h"

namespace alchemist {
namespace {

TEST(LazyKernels, HeadroomPredicate) {
  EXPECT_TRUE(lazy_accumulation_fits(0, 62, 62));
  EXPECT_TRUE(lazy_accumulation_fits(8, 60, 60));       // 123 <= 127
  EXPECT_TRUE(lazy_accumulation_fits(1u << 20, 36, 36));  // 36-bit words: huge headroom
  EXPECT_FALSE(lazy_accumulation_fits(32, 62, 62));     // 129 > 127
}

TEST(LazyKernels, DotProductsAgree) {
  Rng rng(1);
  for (int qbits : {36, 50, 62}) {
    const u64 q = max_ntt_prime(qbits, 64);
    const Modulus mod(q);
    for (std::size_t len : {std::size_t{1}, std::size_t{7}, std::size_t{44},
                            std::size_t{500}}) {
      std::vector<u64> a = rng.uniform_vector(len, q);
      std::vector<u64> b = rng.uniform_vector(len, q);
      EXPECT_EQ(dot_mod_eager(a, b, mod), dot_mod_lazy(a, b, mod))
          << "qbits=" << qbits << " len=" << len;
    }
  }
}

TEST(LazyKernels, DotLazyBlockFallbackExact) {
  // 62-bit modulus with 500 terms exceeds the single-block headroom, forcing
  // the block-wise path — which must stay exact.
  Rng rng(2);
  const u64 q = max_ntt_prime(62, 64);
  const Modulus mod(q);
  std::vector<u64> a = rng.uniform_vector(500, q);
  std::vector<u64> b = rng.uniform_vector(500, q);
  EXPECT_EQ(dot_mod_eager(a, b, mod), dot_mod_lazy(a, b, mod));
}

TEST(LazyKernels, WeightedSumsAgree) {
  Rng rng(3);
  const u64 q = max_ntt_prime(36, 64);
  const Modulus mod(q);
  const std::size_t channels = 44, n = 256;
  std::vector<std::vector<u64>> x(channels);
  for (auto& ch : x) ch = rng.uniform_vector(n, q);
  std::vector<u64> w = rng.uniform_vector(channels, q);

  std::vector<u64> eager(n), lazy(n);
  weighted_sum_eager(std::span<const std::vector<u64>>(x), std::span<const u64>(w),
                     mod, eager);
  weighted_sum_lazy(std::span<const std::vector<u64>>(x), std::span<const u64>(w),
                    mod, lazy);
  EXPECT_EQ(eager, lazy);
}

TEST(LazyKernels, MaxValueOperandsNoOverflow) {
  // Adversarial: every operand at q-1, the largest possible accumulation.
  const u64 q = max_ntt_prime(50, 64);
  const Modulus mod(q);
  std::vector<u64> a(1000, q - 1), b(1000, q - 1);
  EXPECT_EQ(dot_mod_eager(a, b, mod), dot_mod_lazy(a, b, mod));
}

TEST(LazyKernels, SizeMismatchThrows) {
  const Modulus mod(97);
  std::vector<u64> a(4, 1), b(5, 1);
  EXPECT_THROW(dot_mod_eager(a, b, mod), std::invalid_argument);
  EXPECT_THROW(dot_mod_lazy(a, b, mod), std::invalid_argument);
}

}  // namespace
}  // namespace alchemist
