#include <gtest/gtest.h>

#include <memory>

#include "bfv/bfv.h"
#include "common/primes.h"
#include "common/rng.h"

namespace alchemist::bfv {
namespace {

struct BfvFixture {
  BfvContextPtr ctx;
  std::unique_ptr<BfvEncoder> encoder;
  std::unique_ptr<BfvKeyGenerator> keygen;
  std::unique_ptr<BfvEncryptor> encryptor;
  std::unique_ptr<BfvDecryptor> decryptor;
  std::unique_ptr<BfvEvaluator> evaluator;
  BfvRelinKey rk;

  explicit BfvFixture(std::size_t n = 1024) {
    ctx = std::make_shared<BfvContext>(BfvParams::toy(n));
    encoder = std::make_unique<BfvEncoder>(ctx);
    keygen = std::make_unique<BfvKeyGenerator>(ctx, 7);
    encryptor = std::make_unique<BfvEncryptor>(ctx, keygen->make_public_key());
    decryptor = std::make_unique<BfvDecryptor>(ctx, keygen->secret_key());
    evaluator = std::make_unique<BfvEvaluator>(ctx);
    rk = keygen->make_relin_key();
  }

  std::vector<u64> random_message(u64 seed) const {
    Rng rng(seed);
    return rng.uniform_vector(ctx->degree(), ctx->t());
  }
};

BfvFixture& fx() {
  static BfvFixture f;
  return f;
}

TEST(Bfv, ContextDerivation) {
  const BfvContext& ctx = *fx().ctx;
  EXPECT_TRUE(is_prime(ctx.q()));
  EXPECT_EQ((ctx.q() - 1) % (2 * ctx.degree()), 0u);
  EXPECT_EQ(ctx.t(), 65537u);
  EXPECT_GT(ctx.delta(), u64{1} << 37);
  EXPECT_EQ(ctx.relin_digits(), 4u);  // ceil(55 / 16)
  BfvParams bad;
  bad.t = 65536;  // not prime
  EXPECT_THROW(BfvContext{bad}, std::invalid_argument);
  bad = BfvParams::toy(1000);  // not a power of two
  EXPECT_THROW(BfvContext{bad}, std::invalid_argument);
}

TEST(Bfv, EncoderRoundTripAndSimdStructure) {
  BfvFixture& f = fx();
  const auto values = f.random_message(1);
  const auto plain = f.encoder->encode(values);
  EXPECT_EQ(f.encoder->decode(plain), values);
  // Adding plaintexts adds slots (mod t).
  const auto values2 = f.random_message(2);
  const auto plain2 = f.encoder->encode(values2);
  std::vector<u64> sum(plain.size());
  for (std::size_t i = 0; i < sum.size(); ++i) {
    sum[i] = add_mod(plain[i], plain2[i], f.ctx->t());
  }
  const auto decoded = f.encoder->decode(sum);
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    EXPECT_EQ(decoded[i], (values[i] + values2[i]) % f.ctx->t()) << i;
  }
}

TEST(Bfv, EncryptDecryptExact) {
  BfvFixture& f = fx();
  const auto values = f.random_message(3);
  const auto ct = f.encryptor->encrypt(f.encoder->encode(values));
  EXPECT_EQ(f.encoder->decode(f.decryptor->decrypt(ct)), values);
}

TEST(Bfv, FreshNoiseIsSmall) {
  BfvFixture& f = fx();
  const auto values = f.random_message(4);
  const auto plain = f.encoder->encode(values);
  const auto ct = f.encryptor->encrypt(plain);
  // Fresh noise ~ N * sigma * ||u|| — far below Delta/2 (~2^38).
  EXPECT_LT(f.decryptor->noise_bits(ct, plain), 20.0);
}

TEST(Bfv, HomomorphicAddSubExact) {
  BfvFixture& f = fx();
  const auto a = f.random_message(5);
  const auto b = f.random_message(6);
  const auto ca = f.encryptor->encrypt(f.encoder->encode(a));
  const auto cb = f.encryptor->encrypt(f.encoder->encode(b));
  const auto sum = f.encoder->decode(f.decryptor->decrypt(f.evaluator->add(ca, cb)));
  const auto diff = f.encoder->decode(f.decryptor->decrypt(f.evaluator->sub(ca, cb)));
  const u64 t = f.ctx->t();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(sum[i], (a[i] + b[i]) % t) << i;
    EXPECT_EQ(diff[i], (a[i] + t - b[i]) % t) << i;
  }
}

TEST(Bfv, AddAndMulPlainExact) {
  BfvFixture& f = fx();
  const auto a = f.random_message(7);
  const auto p = f.random_message(8);
  const auto ct = f.encryptor->encrypt(f.encoder->encode(a));
  const auto ep = f.encoder->encode(p);
  const auto sum = f.encoder->decode(f.decryptor->decrypt(f.evaluator->add_plain(ct, ep)));
  const auto prod = f.encoder->decode(f.decryptor->decrypt(f.evaluator->mul_plain(ct, ep)));
  const u64 t = f.ctx->t();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(sum[i], (a[i] + p[i]) % t) << i;
    EXPECT_EQ(prod[i], static_cast<u64>((u128{a[i]} * p[i]) % t)) << i;
  }
}

TEST(Bfv, CiphertextMultiplyExact) {
  // The headline BFV property: exact modular integer products, slotwise.
  BfvFixture& f = fx();
  const auto a = f.random_message(9);
  const auto b = f.random_message(10);
  const auto ca = f.encryptor->encrypt(f.encoder->encode(a));
  const auto cb = f.encryptor->encrypt(f.encoder->encode(b));
  const auto prod =
      f.encoder->decode(f.decryptor->decrypt(f.evaluator->multiply(ca, cb, f.rk)));
  const u64 t = f.ctx->t();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(prod[i], static_cast<u64>((u128{a[i]} * b[i]) % t)) << i;
  }
}

TEST(Bfv, MultiplyThenAddComposition) {
  BfvFixture& f = fx();
  const auto a = f.random_message(11);
  const auto b = f.random_message(12);
  const auto c = f.random_message(13);
  const auto ca = f.encryptor->encrypt(f.encoder->encode(a));
  const auto cb = f.encryptor->encrypt(f.encoder->encode(b));
  const auto cc = f.encryptor->encrypt(f.encoder->encode(c));
  // a*b + c
  const auto res = f.encoder->decode(f.decryptor->decrypt(
      f.evaluator->add(f.evaluator->multiply(ca, cb, f.rk), cc)));
  const u64 t = f.ctx->t();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(res[i], static_cast<u64>((u128{a[i]} * b[i] + c[i]) % t)) << i;
  }
}

TEST(Bfv, SmallRingWorksToo) {
  BfvFixture small(256);
  const auto a = small.random_message(14);
  const auto b = small.random_message(15);
  const auto ca = small.encryptor->encrypt(small.encoder->encode(a));
  const auto cb = small.encryptor->encrypt(small.encoder->encode(b));
  const auto prod = small.encoder->decode(
      small.decryptor->decrypt(small.evaluator->multiply(ca, cb, small.rk)));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(prod[i], static_cast<u64>((u128{a[i]} * b[i]) % small.ctx->t())) << i;
  }
}

TEST(Bfv, ArgumentChecks) {
  BfvFixture& f = fx();
  std::vector<u64> wrong(f.ctx->degree() / 2, 0);
  EXPECT_THROW(f.encryptor->encrypt(wrong), std::invalid_argument);
  EXPECT_THROW(f.encoder->decode(wrong), std::invalid_argument);
  std::vector<u64> too_many(f.ctx->degree() + 1, 0);
  EXPECT_THROW(f.encoder->encode(too_many), std::invalid_argument);
}

}  // namespace
}  // namespace alchemist::bfv
