#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

namespace alchemist {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const u64 x = a.next();
    EXPECT_EQ(x, b.next());
    if (x != c.next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(1);
  for (u64 bound : {u64{1}, u64{2}, u64{3}, u64{1000}, u64{1} << 40}) {
    for (int i = 0; i < 500; ++i) EXPECT_LT(rng.uniform(bound), bound);
  }
}

TEST(Rng, UniformCoversSmallRange) {
  Rng rng(2);
  std::map<u64, int> counts;
  for (int i = 0; i < 6000; ++i) ++counts[rng.uniform(6)];
  ASSERT_EQ(counts.size(), 6u);
  for (const auto& [value, count] : counts) {
    EXPECT_GT(count, 800) << value;  // expectation 1000
    EXPECT_LT(count, 1200) << value;
  }
}

TEST(Rng, TernaryValues) {
  Rng rng(3);
  const u64 q = 97;
  int zeros = 0, ones = 0, minus = 0;
  for (int i = 0; i < 3000; ++i) {
    const u64 t = rng.ternary(q);
    if (t == 0) ++zeros;
    else if (t == 1) ++ones;
    else if (t == q - 1) ++minus;
    else FAIL() << "unexpected ternary value " << t;
  }
  EXPECT_GT(zeros, 800);
  EXPECT_GT(ones, 800);
  EXPECT_GT(minus, 800);
}

TEST(Rng, CbdMeanAndSupport) {
  Rng rng(4);
  const u64 q = 12289;
  const int eta = 4;
  double sum = 0;
  for (int i = 0; i < 5000; ++i) {
    const u64 v = rng.cbd(eta, q);
    const i64 centered = v > q / 2 ? static_cast<i64>(v) - static_cast<i64>(q)
                                   : static_cast<i64>(v);
    EXPECT_LE(std::abs(centered), eta);
    sum += static_cast<double>(centered);
  }
  EXPECT_LT(std::abs(sum / 5000.0), 0.15);  // mean ~0, sd of mean ~0.02
}

TEST(Rng, GaussianMomentsRoughlyMatch) {
  Rng rng(5);
  const double sigma = 3.2;
  double sum = 0, sumsq = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const double g = static_cast<double>(rng.gaussian_signed(sigma));
    sum += g;
    sumsq += g * g;
  }
  const double mean = sum / trials;
  const double var = sumsq / trials - mean * mean;
  EXPECT_LT(std::abs(mean), 0.15);
  EXPECT_NEAR(var, sigma * sigma + 1.0 / 12.0, 0.8);  // rounding adds ~1/12
}

TEST(Rng, GaussianModQWrapsNegatives) {
  Rng rng(6);
  const u64 q = 1000003;
  for (int i = 0; i < 1000; ++i) {
    const u64 v = rng.gaussian(3.2, q);
    EXPECT_LT(v, q);
    // Small-noise regime: value is near 0 or near q.
    EXPECT_TRUE(v < 100 || v > q - 100) << v;
  }
}

TEST(Rng, UniformVectorShape) {
  Rng rng(7);
  const auto v = rng.uniform_vector(257, 12345);
  ASSERT_EQ(v.size(), 257u);
  for (u64 x : v) EXPECT_LT(x, 12345u);
}

}  // namespace
}  // namespace alchemist
