#include <gtest/gtest.h>

#include <algorithm>

#include "metaop/lowering.h"
#include "sim/alchemist_sim.h"
#include "sim/event_sim.h"
#include "workloads/ckks_workloads.h"
#include "workloads/tfhe_workloads.h"

namespace alchemist::sim {
namespace {

using metaop::HighOp;
using metaop::OpGraph;
using metaop::OpKind;

HighOp make_op(OpKind kind, std::size_t n, std::size_t channels,
               std::vector<std::size_t> deps = {}, std::size_t pa = 0,
               std::uint64_t hbm = 0) {
  HighOp op;
  op.kind = kind;
  op.n = n;
  op.channels = channels;
  op.deps = std::move(deps);
  op.param_a = pa;
  op.hbm_bytes = hbm;
  return op;
}

TEST(EventSim, SingleOpMatchesAnalytical) {
  OpGraph g;
  g.name = "single";
  g.add(make_op(OpKind::PointwiseMult, 65536, 8));
  const auto cfg = arch::ArchConfig::alchemist();
  const SimResult level = simulate_alchemist(g, cfg);
  const SimResult event = simulate_alchemist_events(g, cfg);
  EXPECT_NEAR(static_cast<double>(event.cycles), static_cast<double>(level.cycles),
              static_cast<double>(level.cycles) * 0.02);
  EXPECT_NEAR(event.utilization, level.utilization, 0.05);
}

TEST(EventSim, NeverSlowerThanLevelModelOnRealWorkloads) {
  const auto cfg = arch::ArchConfig::alchemist();
  workloads::CkksWl w = workloads::CkksWl::paper(24);
  w.hbm_stream_fraction = 0.05;
  for (const OpGraph& g : {workloads::build_keyswitch(w), workloads::build_cmult(w),
                           workloads::build_rotation(w)}) {
    const SimResult level = simulate_alchemist(g, cfg);
    const SimResult event = simulate_alchemist_events(g, cfg);
    // The two independent models must agree within 10% (they treat level
    // barriers and transpose sharing differently, so neither strictly
    // dominates).
    const double ratio = static_cast<double>(event.cycles) / level.cycles;
    EXPECT_GT(ratio, 0.90) << g.name;
    EXPECT_LT(ratio, 1.10) << g.name;
    // Both stay above the absolute work lower bound.
    double work = 0;
    for (const auto& op : g.ops) work += metaop::lower(op).core_cycles();
    EXPECT_GE(static_cast<double>(event.cycles),
              work / cfg.total_cores() * 0.95) << g.name;
  }
}

TEST(EventSim, AgreesOnTfhePbs) {
  const auto cfg = arch::ArchConfig::alchemist();
  const OpGraph g = workloads::build_pbs(workloads::TfheWl::set_i());
  const SimResult level = simulate_alchemist(g, cfg);
  const SimResult event = simulate_alchemist_events(g, cfg);
  // PBS is a long dependency chain: both models should land close together.
  const double ratio = static_cast<double>(event.cycles) / level.cycles;
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.1);
}

TEST(EventSim, HbmBoundOpIsBandwidthLimited) {
  OpGraph g;
  g.add(make_op(OpKind::DecompPolyMult, 4096, 2, {}, 4, /*hbm=*/200'000'000));
  const auto cfg = arch::ArchConfig::alchemist();
  const SimResult event = simulate_alchemist_events(g, cfg);
  EXPECT_GE(event.cycles, 200'000'000 / 1000);
}

TEST(EventSim, DependencyChainSerializes) {
  OpGraph chain, fork;
  const HighOp op = make_op(OpKind::PointwiseMult, 65536, 4);
  std::size_t prev = chain.add(op);
  for (int i = 0; i < 3; ++i) {
    HighOp dependent = op;
    dependent.deps = {prev};
    prev = chain.add(dependent);
  }
  for (int i = 0; i < 4; ++i) fork.add(op);
  const auto cfg = arch::ArchConfig::alchemist();
  // Same work; the chain cannot go faster than the fork.
  const SimResult rc = simulate_alchemist_events(chain, cfg);
  const SimResult rf = simulate_alchemist_events(fork, cfg);
  EXPECT_GE(rc.cycles, rf.cycles);
  OpGraph bad;
  HighOp cyc = op;
  cyc.deps = {3};
  bad.add(cyc);
  EXPECT_THROW(simulate_alchemist_events(bad, cfg), std::invalid_argument);
}

TEST(EventSim, MergeGraphsShiftsDependencies) {
  OpGraph a, b;
  const std::size_t a0 = a.add(make_op(OpKind::PointwiseMult, 1024, 1));
  HighOp a1 = make_op(OpKind::PointwiseAdd, 1024, 1);
  a1.deps = {a0};
  a.add(a1);
  b.add(make_op(OpKind::Ntt, 1024, 1));
  const OpGraph merged = merge_graphs({a, b}, "merged");
  // Proportional interleave: a0, b0, a1 - a1's dependency is remapped to a0.
  ASSERT_EQ(merged.ops.size(), 3u);
  EXPECT_EQ(merged.ops[0].kind, OpKind::PointwiseMult);
  EXPECT_EQ(merged.ops[1].kind, OpKind::Ntt);
  EXPECT_TRUE(merged.ops[1].deps.empty());
  EXPECT_EQ(merged.ops[2].kind, OpKind::PointwiseAdd);
  EXPECT_EQ(merged.ops[2].deps, (std::vector<std::size_t>{0}));
}

TEST(EventSim, MergeGraphsPreservesStructure) {
  // §5.4 time-sharing: direct structural checks on merge_graphs. Streams are
  // distinguished by polynomial length so dependency edges can be verified to
  // stay intra-stream after interleaving.
  OpGraph a, b;
  a.name = "A";
  std::size_t prev = a.add(make_op(OpKind::PointwiseMult, 1024, 1));
  for (int i = 0; i < 4; ++i) {
    prev = a.add(make_op(OpKind::PointwiseAdd, 1024, 1, {prev}));
  }
  b.name = "B";
  const std::size_t b0 = b.add(make_op(OpKind::Ntt, 2048, 1));
  const std::size_t b1 = b.add(make_op(OpKind::PointwiseMult, 2048, 1, {b0}));
  b.add(make_op(OpKind::Intt, 2048, 1, {b1}));

  const OpGraph merged = merge_graphs({a, b}, "merged");

  // Node counts are preserved, per stream and in total.
  ASSERT_EQ(merged.ops.size(), a.ops.size() + b.ops.size());
  std::size_t from_a = 0, from_b = 0;
  for (const HighOp& op : merged.ops) {
    (op.n == 1024 ? from_a : from_b)++;
  }
  EXPECT_EQ(from_a, a.ops.size());
  EXPECT_EQ(from_b, b.ops.size());

  // Dependencies point backwards and never cross streams.
  for (std::size_t i = 0; i < merged.ops.size(); ++i) {
    for (std::size_t dep : merged.ops[i].deps) {
      ASSERT_LT(dep, i);
      EXPECT_EQ(merged.ops[dep].n, merged.ops[i].n)
          << "dependency crossed streams at op " << i;
    }
  }
  // Each stream keeps its internal schedule order (chain lengths survive).
  std::vector<std::size_t> a_positions;
  for (std::size_t i = 0; i < merged.ops.size(); ++i) {
    if (merged.ops[i].n == 1024) a_positions.push_back(i);
  }
  EXPECT_TRUE(std::is_sorted(a_positions.begin(), a_positions.end()));

  // Interleaved execution is never slower than running the parts end to end.
  const auto cfg = arch::ArchConfig::alchemist();
  const std::uint64_t sum = simulate_alchemist_events(a, cfg).cycles +
                            simulate_alchemist_events(b, cfg).cycles;
  EXPECT_LE(simulate_alchemist_events(merged, cfg).cycles, sum);
}

TEST(EventSim, TimeSharingOverlapsComputeWithKeyStreaming) {
  // The paper's time-sharing scheduling (§5.4): co-scheduling an HBM-bound
  // CKKS keyswitch with a compute-bound TFHE PBS beats running them
  // back-to-back — only possible on a unified accelerator.
  const auto cfg = arch::ArchConfig::alchemist();
  workloads::CkksWl ckks_wl = workloads::CkksWl::paper(44);  // fresh keys: HBM-bound
  const OpGraph ks = workloads::build_keyswitch(ckks_wl);
  workloads::TfheWl tfhe_wl = workloads::TfheWl::set_i();
  tfhe_wl.hbm_stream_fraction = 0.0;  // BK cached: compute-bound
  const OpGraph pbs = workloads::build_pbs(tfhe_wl);

  const double t_seq = simulate_alchemist_events(ks, cfg).time_us +
                       simulate_alchemist_events(pbs, cfg).time_us;
  const double t_shared =
      simulate_alchemist_events(merge_graphs({ks, pbs}, "co-scheduled"), cfg).time_us;
  EXPECT_LT(t_shared, 0.85 * t_seq);
}

}  // namespace
}  // namespace alchemist::sim
