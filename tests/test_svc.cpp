// The resilient simulation service: deterministic backoff, circuit breaker
// state machine, and the JobRunner's admission / deadline / retry / resume
// semantics, including the terminal-state partition invariant.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <tuple>

#include "common/backoff.h"
#include "fault/injector.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "sim/alchemist_sim.h"
#include "svc/introspect.h"
#include "svc/job_runner.h"
#include "workloads/ckks_workloads.h"

namespace alchemist {
namespace {

using namespace std::chrono_literals;

std::shared_ptr<const metaop::OpGraph> shared_graph(metaop::OpGraph g) {
  return std::make_shared<const metaop::OpGraph>(std::move(g));
}

std::shared_ptr<const metaop::OpGraph> keyswitch_graph() {
  return shared_graph(workloads::build_keyswitch(workloads::CkksWl::paper(16)));
}

// ---------------------------------------------------------------- Backoff --

TEST(Backoff, DeterministicSequence) {
  BackoffConfig cfg;
  Backoff a(cfg), b(cfg);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.next_us(), b.next_us());
  EXPECT_EQ(a.attempts(), 20u);
  EXPECT_EQ(a.total_us(), b.total_us());

  a.reset();
  Backoff fresh(cfg);
  EXPECT_EQ(a.next_us(), fresh.next_us());
}

TEST(Backoff, GrowsExponentiallyUpToCap) {
  BackoffConfig cfg;
  cfg.base_us = 100;
  cfg.multiplier = 2.0;
  cfg.cap_us = 1000;
  cfg.jitter = 0.0;
  Backoff bo(cfg);
  EXPECT_EQ(bo.next_us(), 100u);
  EXPECT_EQ(bo.next_us(), 200u);
  EXPECT_EQ(bo.next_us(), 400u);
  EXPECT_EQ(bo.next_us(), 800u);
  EXPECT_EQ(bo.next_us(), 1000u);  // capped
  EXPECT_EQ(bo.next_us(), 1000u);
  EXPECT_EQ(bo.total_us(), 100u + 200u + 400u + 800u + 1000u + 1000u);
}

TEST(Backoff, JitterStaysBounded) {
  BackoffConfig cfg;
  cfg.base_us = 1000;
  cfg.multiplier = 1.0;  // isolate the jitter term
  cfg.cap_us = 1000;
  cfg.jitter = 0.25;
  Backoff bo(cfg);
  bool saw_low = false, saw_high = false;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t d = bo.next_us();
    EXPECT_GE(d, 750u);
    EXPECT_LE(d, 1250u);
    saw_low = saw_low || d < 1000u;
    saw_high = saw_high || d > 1000u;
  }
  EXPECT_TRUE(saw_low);
  EXPECT_TRUE(saw_high);
}

TEST(Backoff, RejectsInvalidConfig) {
  BackoffConfig cfg;
  cfg.base_us = 0;
  EXPECT_THROW(Backoff{cfg}, std::invalid_argument);
  cfg = {};
  cfg.multiplier = 0.5;
  EXPECT_THROW(Backoff{cfg}, std::invalid_argument);
  cfg = {};
  cfg.jitter = 1.5;
  EXPECT_THROW(Backoff{cfg}, std::invalid_argument);
  cfg = {};
  cfg.cap_us = 1;  // below base
  EXPECT_THROW(Backoff{cfg}, std::invalid_argument);
}

TEST(Backoff, RetrierChargesBackoffIntoRegistry) {
  obs::Registry reg;
  BackoffConfig cfg;
  cfg.jitter = 0.0;
  cfg.base_us = 100;
  fault::Retrier retrier(4, &reg, cfg);
  int calls = 0;
  const int result = retrier.run([&] { return ++calls; },
                                 [](int v) { return v >= 3; });
  EXPECT_EQ(result, 3);
  EXPECT_EQ(retrier.retries(), 2u);
  EXPECT_EQ(reg.counter(fault::metrics::kRetries), 2u);
  EXPECT_EQ(reg.counter(fault::metrics::kBackoffUs), 100u + 200u);
  EXPECT_EQ(retrier.backoff_us(), 300u);
}

TEST(AttemptSeed, FirstAttemptReproducesBaseSeed) {
  EXPECT_EQ(svc::attempt_seed(0xabcdULL, 0), 0xabcdULL);
  EXPECT_EQ(svc::attempt_seed(0xabcdULL, 1), 0xabcdULL);
  EXPECT_NE(svc::attempt_seed(0xabcdULL, 2), 0xabcdULL);
  EXPECT_NE(svc::attempt_seed(0xabcdULL, 2), svc::attempt_seed(0xabcdULL, 3));
  EXPECT_EQ(svc::attempt_seed(0xabcdULL, 2), svc::attempt_seed(0xabcdULL, 2));
}

// --------------------------------------------------------- CircuitBreaker --

TEST(CircuitBreaker, TripsAfterConsecutiveFailuresAndRecovers) {
  using State = svc::CircuitBreaker::State;
  auto now = std::chrono::steady_clock::time_point{} + 1h;  // manual clock
  svc::CircuitBreaker br(3, 10ms);

  EXPECT_TRUE(br.allow(now));
  br.on_failure(now);
  br.on_failure(now);
  EXPECT_EQ(br.state(), State::Closed);
  br.on_success();  // success resets the consecutive count
  br.on_failure(now);
  br.on_failure(now);
  EXPECT_EQ(br.state(), State::Closed);
  br.on_failure(now);
  EXPECT_EQ(br.state(), State::Open);

  EXPECT_FALSE(br.allow(now));
  EXPECT_FALSE(br.allow(now + 9ms));
  EXPECT_TRUE(br.allow(now + 10ms));  // half-open probe
  EXPECT_EQ(br.state(), State::HalfOpen);
  EXPECT_FALSE(br.allow(now + 10ms));  // only one probe in flight

  br.on_success();
  EXPECT_EQ(br.state(), State::Closed);
  EXPECT_TRUE(br.allow(now + 11ms));
}

TEST(CircuitBreaker, FailedProbeReopensNeutralProbeReprobes) {
  using State = svc::CircuitBreaker::State;
  auto now = std::chrono::steady_clock::time_point{} + 1h;
  svc::CircuitBreaker br(1, 10ms);

  br.on_failure(now);
  EXPECT_EQ(br.state(), State::Open);
  EXPECT_TRUE(br.allow(now + 10ms));
  br.on_failure(now + 10ms);  // probe failed: full cooldown again
  EXPECT_EQ(br.state(), State::Open);
  EXPECT_FALSE(br.allow(now + 19ms));
  EXPECT_TRUE(br.allow(now + 20ms));

  br.on_neutral(now + 20ms);  // probe cancelled: re-probe immediately
  EXPECT_EQ(br.state(), State::Open);
  EXPECT_TRUE(br.allow(now + 20ms));
}

TEST(CircuitBreaker, ZeroThresholdNeverTrips) {
  auto now = std::chrono::steady_clock::time_point{};
  svc::CircuitBreaker br(0, 10ms);
  for (int i = 0; i < 100; ++i) br.on_failure(now);
  EXPECT_TRUE(br.allow(now));
}

// -------------------------------------------------------------- JobRunner --

TEST(JobRunner, CompletesJobsWithPlainSimResults) {
  const auto graph = keyswitch_graph();
  const sim::SimResult ref = sim::simulate_alchemist(*graph, arch::ArchConfig::alchemist());

  svc::RunnerOptions opts;
  opts.workers = 4;
  svc::JobRunner runner(opts);
  std::vector<svc::JobPtr> jobs;
  for (int i = 0; i < 16; ++i) {
    svc::JobSpec spec;
    spec.graph = graph;
    jobs.push_back(runner.submit(std::move(spec)));
  }
  runner.drain();
  for (const svc::JobPtr& j : jobs) {
    ASSERT_EQ(j->state(), svc::JobState::Completed) << j->error();
    EXPECT_EQ(j->attempts(), 1u);
    EXPECT_EQ(j->result().cycles, ref.cycles);
    EXPECT_EQ(j->result().registry.counters(), ref.registry.counters());
  }
  const obs::Registry reg = runner.snapshot();
  EXPECT_EQ(reg.counter(svc::metrics::kSubmitted), 16u);
  EXPECT_EQ(reg.counter(svc::metrics::kAdmitted), 16u);
  EXPECT_EQ(reg.counter(svc::metrics::kCompleted), 16u);
  EXPECT_EQ(reg.gauge(svc::metrics::kWorkers), 4.0);
  EXPECT_GT(reg.gauge(svc::metrics::kLatencyUs, {{"p", "99"}}), 0.0);
}

TEST(JobRunner, RejectsNullGraph) {
  svc::JobRunner runner;
  EXPECT_THROW(runner.submit(svc::JobSpec{}), std::invalid_argument);
}

TEST(JobRunner, ShedsWhenQueueIsFull) {
  const auto graph = keyswitch_graph();
  svc::RunnerOptions opts;
  opts.workers = 2;
  opts.queue_capacity = 2;
  opts.start_paused = true;
  svc::JobRunner runner(opts);

  std::vector<svc::JobPtr> jobs;
  for (int i = 0; i < 5; ++i) {
    svc::JobSpec spec;
    spec.graph = graph;
    jobs.push_back(runner.submit(std::move(spec)));
  }
  // With parked workers the queue holds exactly 2; the rest are already
  // terminal before submit() returns.
  for (int i = 0; i < 2; ++i) EXPECT_EQ(jobs[i]->state(), svc::JobState::Queued);
  for (int i = 2; i < 5; ++i) {
    EXPECT_EQ(jobs[i]->state(), svc::JobState::Shed);
    EXPECT_NE(jobs[i]->error().find("queue_full"), std::string::npos);
  }
  runner.set_paused(false);
  runner.drain();
  EXPECT_EQ(jobs[0]->state(), svc::JobState::Completed);
  EXPECT_EQ(jobs[1]->state(), svc::JobState::Completed);

  const obs::Registry reg = runner.snapshot();
  EXPECT_EQ(reg.counter(svc::metrics::kRejected, {{"reason", "queue_full"}}), 3u);
  EXPECT_EQ(reg.gauge(svc::metrics::kQueueDepth, {{"stat", "peak"}}), 2.0);
}

TEST(JobRunner, CancelWhileQueued) {
  const auto graph = keyswitch_graph();
  svc::RunnerOptions opts;
  opts.start_paused = true;
  svc::JobRunner runner(opts);
  svc::JobSpec spec;
  spec.graph = graph;
  const svc::JobPtr job = runner.submit(std::move(spec));
  job->cancel();
  runner.set_paused(false);
  job->wait();
  EXPECT_EQ(job->state(), svc::JobState::Cancelled);
}

TEST(JobRunner, StepBudgetExpiresThenResumesBitIdentical) {
  const auto graph = keyswitch_graph();
  const sim::SimResult ref = sim::simulate_alchemist(*graph, arch::ArchConfig::alchemist());

  svc::JobRunner runner;
  svc::JobSpec spec;
  spec.graph = graph;
  spec.max_steps = 1;
  const svc::JobPtr job = runner.submit(std::move(spec));
  job->wait();
  ASSERT_EQ(job->state(), svc::JobState::DeadlineExpired);
  const sim::Checkpoint cp = job->checkpoint();
  ASSERT_TRUE(cp.valid());

  svc::JobSpec resume;
  resume.graph = graph;
  resume.resume_from = cp;
  const svc::JobPtr resumed = runner.submit(std::move(resume));
  resumed->wait();
  ASSERT_EQ(resumed->state(), svc::JobState::Completed) << resumed->error();
  EXPECT_EQ(resumed->result().cycles, ref.cycles);
  EXPECT_EQ(resumed->result().time_us, ref.time_us);
  EXPECT_EQ(resumed->result().registry.counters(), ref.registry.counters());
  EXPECT_EQ(runner.snapshot().counter(svc::metrics::kResumed), 1u);
}

TEST(JobRunner, WallClockDeadlineAlreadyExpiredWhenDequeued) {
  const auto graph = keyswitch_graph();
  svc::RunnerOptions opts;
  opts.start_paused = true;
  svc::JobRunner runner(opts);
  svc::JobSpec spec;
  spec.graph = graph;
  spec.deadline = 1us;  // expires while parked in the queue
  const svc::JobPtr job = runner.submit(std::move(spec));
  std::this_thread::sleep_for(1ms);
  runner.set_paused(false);
  job->wait();
  EXPECT_EQ(job->state(), svc::JobState::DeadlineExpired);
}

TEST(JobRunner, RetriesExhaustBudgetOnPermanentCorruption) {
  const auto graph = keyswitch_graph();
  svc::JobRunner runner;
  svc::JobSpec spec;
  spec.graph = graph;
  spec.fault_enabled = true;
  spec.fault.compute_fault_rate = 1.0;  // every attempt corrupts
  spec.max_attempts = 3;
  const svc::JobPtr job = runner.submit(std::move(spec));
  job->wait();
  EXPECT_EQ(job->state(), svc::JobState::Failed);
  EXPECT_EQ(job->attempts(), 3u);
  EXPECT_EQ(runner.snapshot().counter(svc::metrics::kRetries), 2u);
}

TEST(JobRunner, RetrySucceedsWithRerolledSeed) {
  const auto graph = keyswitch_graph();
  const arch::ArchConfig cfg = arch::ArchConfig::alchemist();
  // Deterministically find a seed whose first attempt corrupts the run but
  // whose re-rolled second attempt is clean.
  fault::FaultConfig probe;
  probe.compute_fault_rate = probe.sram_fault_rate = probe.hbm_fault_rate = 5e-9;
  u64 seed = 0;
  bool found = false;
  for (u64 s = 1; s < 400 && !found; ++s) {
    auto corrupted = [&](u64 attempt) {
      fault::FaultConfig fc = probe;
      fc.seed = svc::attempt_seed(s, attempt);
      fault::FaultModel fm(fc, cfg.num_units);
      return sim::simulate_alchemist(*graph, cfg, nullptr, &fm)
                 .registry.counter(fault::metrics::kCorruptedOps) > 0;
    };
    if (corrupted(1) && !corrupted(2)) {
      seed = s;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "no seed with corrupt-then-clean attempts in range";

  svc::JobRunner runner;
  svc::JobSpec spec;
  spec.graph = graph;
  spec.fault_enabled = true;
  spec.fault = probe;
  spec.fault.seed = seed;
  spec.max_attempts = 3;
  const svc::JobPtr job = runner.submit(std::move(spec));
  job->wait();
  ASSERT_EQ(job->state(), svc::JobState::Completed) << job->error();
  EXPECT_EQ(job->attempts(), 2u);
  const obs::Registry reg = runner.snapshot();
  EXPECT_EQ(reg.counter(svc::metrics::kCompleted, {{"retried", "true"}}), 1u);
}

TEST(JobRunner, BreakerFastFailsAfterConsecutiveFailures) {
  const auto graph = keyswitch_graph();
  svc::RunnerOptions opts;
  opts.breaker_threshold = 2;
  opts.breaker_cooldown = 10min;  // stays open for the rest of the test
  svc::JobRunner runner(opts);

  auto poison = [&] {
    svc::JobSpec spec;
    spec.workload_class = "poison";
    spec.graph = graph;
    spec.fault_enabled = true;
    spec.fault.compute_fault_rate = 1.0;
    const svc::JobPtr job = runner.submit(std::move(spec));
    runner.drain();
    return job;
  };
  EXPECT_EQ(poison()->state(), svc::JobState::Failed);
  EXPECT_EQ(poison()->state(), svc::JobState::Failed);
  const svc::JobPtr rejected = poison();
  EXPECT_EQ(rejected->state(), svc::JobState::CircuitOpen);

  // Other workload classes are unaffected.
  svc::JobSpec ok;
  ok.workload_class = "healthy";
  ok.graph = graph;
  const svc::JobPtr job = runner.submit(std::move(ok));
  job->wait();
  EXPECT_EQ(job->state(), svc::JobState::Completed);
}

TEST(JobRunner, DestructorCancelsQueuedJobs) {
  const auto graph = keyswitch_graph();
  std::vector<svc::JobPtr> jobs;
  {
    svc::RunnerOptions opts;
    opts.workers = 1;
    opts.start_paused = true;
    svc::JobRunner runner(opts);
    for (int i = 0; i < 4; ++i) {
      svc::JobSpec spec;
      spec.graph = graph;
      jobs.push_back(runner.submit(std::move(spec)));
    }
  }  // destructor: queued jobs must still reach a terminal state
  for (const svc::JobPtr& j : jobs) {
    EXPECT_EQ(j->state(), svc::JobState::Cancelled);
  }
}

TEST(JobRunner, LatencyHistogramsCoverEveryAdmittedJob) {
  const auto graph = keyswitch_graph();
  svc::RunnerOptions opts;
  opts.workers = 3;
  svc::JobRunner runner(opts);
  constexpr int kJobs = 9;
  for (int i = 0; i < kJobs; ++i) {
    svc::JobSpec spec;
    spec.graph = graph;
    spec.workload_class = (i % 2 == 0) ? "even" : "odd";
    runner.submit(std::move(spec));
  }
  runner.drain();

  const obs::Registry reg = runner.snapshot();
  ASSERT_EQ(reg.counter(svc::metrics::kAdmitted), kJobs);
  // Each of queue/run/total/sim is recorded untagged and per {class=}, and
  // the untagged count matches the admitted jobs exactly.
  for (const char* name :
       {svc::metrics::kLatencyQueueUs, svc::metrics::kLatencyRunUs,
        svc::metrics::kLatencyTotalUs, svc::metrics::kLatencySimUs}) {
    const obs::Histogram& all = reg.histogram(name);
    EXPECT_EQ(all.count(), kJobs) << name;
    const obs::Histogram& even = reg.histogram(name, {{"class", "even"}});
    const obs::Histogram& odd = reg.histogram(name, {{"class", "odd"}});
    EXPECT_EQ(even.count(), 5u) << name;
    EXPECT_EQ(odd.count(), 4u) << name;
    // Per-class shards merge back to the untagged family exactly.
    obs::Histogram merged = even;
    merged.merge(odd);
    EXPECT_EQ(merged, all) << name;
  }
  // Simulated latency is strictly positive and identical across the class
  // split (same graph, deterministic engine).
  const obs::Histogram& sim_all = reg.histogram(svc::metrics::kLatencySimUs);
  EXPECT_GT(sim_all.sum_ticks(), 0u);
  // Derived percentile gauges ride along in the same snapshot.
  for (const char* p : {"50", "95", "99"}) {
    EXPECT_GT(reg.gauge(std::string(svc::metrics::kLatencyTotalUs) + ".p" + p),
              0.0);
  }
}

TEST(JobRunner, SimLatencyHistogramIsBitIdenticalAcrossWorkerCounts) {
  const auto ks = keyswitch_graph();
  const auto boot = shared_graph(
      workloads::build_bootstrapping(workloads::CkksWl::paper(16), false));
  // svc.latency.sim_us records simulated time, which only depends on the
  // graph + config — not on scheduling, worker count, or wall-clock noise.
  // The snapshots must therefore be bit-identical for any worker count.
  std::vector<obs::Histogram> sims;
  std::vector<obs::Histogram> sims_tagged;
  for (std::size_t workers = 1; workers <= 8; ++workers) {
    svc::RunnerOptions opts;
    opts.workers = workers;
    svc::JobRunner runner(opts);
    for (int i = 0; i < 12; ++i) {
      svc::JobSpec spec;
      spec.graph = (i % 3 == 0) ? boot : ks;
      spec.workload_class = (i % 3 == 0) ? "boot" : "ks";
      spec.engine = (i % 2 == 0) ? svc::Engine::Level : svc::Engine::Event;
      runner.submit(std::move(spec));
    }
    runner.drain();
    const obs::Registry reg = runner.snapshot();
    sims.push_back(reg.histogram(svc::metrics::kLatencySimUs));
    sims_tagged.push_back(
        reg.histogram(svc::metrics::kLatencySimUs, {{"class", "boot"}}));
  }
  for (std::size_t i = 1; i < sims.size(); ++i) {
    EXPECT_EQ(sims[i], sims[0]) << "workers=" << i + 1;
    EXPECT_EQ(sims[i].sum_ticks(), sims[0].sum_ticks());
    EXPECT_EQ(sims_tagged[i], sims_tagged[0]) << "workers=" << i + 1;
  }
  EXPECT_EQ(sims[0].count(), 12u);
  EXPECT_EQ(sims_tagged[0].count(), 4u);
}

TEST(JobRunner, StatusJsonReportsRunnerAndBreakerState) {
  const auto graph = keyswitch_graph();
  svc::RunnerOptions opts;
  opts.workers = 2;
  opts.queue_capacity = 32;
  svc::JobRunner runner(opts);
  for (int i = 0; i < 4; ++i) {
    svc::JobSpec spec;
    spec.graph = graph;
    spec.workload_class = "statusz";
    runner.submit(std::move(spec));
  }
  runner.drain();

  const std::string json = runner.status_json();
  for (const char* needle :
       {"\"workers\": 2", "\"paused\": false", "\"stopping\": false",
        "\"queue_depth\": 0", "\"queue_capacity\": 32", "\"running\": 0",
        "\"breakers\"", "\"statusz\": \"closed\"", "\"counters\"",
        "\"svc.completed\": 4", "\"substrate\""}) {
    EXPECT_NE(json.find(needle), std::string::npos)
        << "missing " << needle << " in:\n" << json;
  }
  const auto breakers = runner.breaker_states();
  ASSERT_EQ(breakers.size(), 1u);
  EXPECT_EQ(breakers.at("statusz"), svc::CircuitBreaker::State::Closed);
}

TEST(JobRunner, ProfileFlagAttachesUtilizationWithoutPerturbingResults) {
  const auto graph = keyswitch_graph();
  svc::JobRunner runner;

  auto submit = [&](bool profile, svc::Engine engine) {
    svc::JobSpec spec;
    spec.graph = graph;
    spec.profile = profile;
    spec.engine = engine;
    const svc::JobPtr job = runner.submit(std::move(spec));
    job->wait();
    EXPECT_EQ(job->state(), svc::JobState::Completed) << job->error();
    return job;
  };
  for (svc::Engine engine : {svc::Engine::Level, svc::Engine::Event}) {
    const svc::JobPtr plain = submit(false, engine);
    const svc::JobPtr profiled = submit(true, engine);
    // The profiler is an observer: identical simulated outcome either way.
    EXPECT_EQ(profiled->result().cycles, plain->result().cycles);
    EXPECT_EQ(profiled->result().time_us, plain->result().time_us);
    EXPECT_EQ(profiled->result().registry.counters(),
              plain->result().registry.counters());
    EXPECT_FALSE(plain->result().profile.enabled());
    const obs::UtilizationProfile& prof = profiled->result().profile;
    ASSERT_TRUE(prof.enabled());
    ASSERT_EQ(prof.units.size(), arch::ArchConfig::alchemist().num_units);
    for (const obs::UnitCycles& u : prof.units) {
      EXPECT_EQ(u.total(), prof.total_cycles);
    }
  }
}

TEST(JobRunner, TerminalCountersPartitionSubmitted) {
  const auto graph = keyswitch_graph();
  svc::RunnerOptions opts;
  opts.workers = 3;
  opts.queue_capacity = 8;
  opts.start_paused = true;
  svc::JobRunner runner(opts);
  std::vector<svc::JobPtr> jobs;
  for (int i = 0; i < 12; ++i) {
    svc::JobSpec spec;
    spec.graph = graph;
    if (i % 4 == 1) spec.max_steps = 1;  // expires
    if (i % 4 == 2) {
      spec.fault_enabled = true;
      spec.fault.compute_fault_rate = 1.0;
      spec.max_attempts = 2;  // fails after one retry
    }
    jobs.push_back(runner.submit(std::move(spec)));
  }
  jobs[0]->cancel();
  runner.set_paused(false);
  runner.drain();

  const obs::Registry reg = runner.snapshot();
  const std::uint64_t terminal =
      reg.counter(svc::metrics::kCompleted) + reg.counter(svc::metrics::kFailed) +
      reg.counter(svc::metrics::kCancelled) +
      reg.counter(svc::metrics::kDeadlineExpired) +
      reg.total_over_tags("svc.rejected{");
  EXPECT_EQ(terminal, reg.counter(svc::metrics::kSubmitted));
  EXPECT_EQ(reg.counter(svc::metrics::kSubmitted), 12u);
  for (const svc::JobPtr& j : jobs) EXPECT_TRUE(j->terminal());
}

// --- Distributed tracing / flight recorder --------------------------------

// (trace, span, parent, name, kind) identity of a span tree: everything that
// must be invariant across worker counts and repeat runs. Timestamps and
// track assignment (which worker ran an attempt) legitimately vary.
using SpanKey =
    std::tuple<std::uint64_t, std::uint64_t, std::uint64_t, std::string, std::string>;

std::multiset<SpanKey> span_tree(const obs::TraceSink& sink) {
  std::multiset<SpanKey> keys;
  for (const obs::SpanRecord& s : sink.snapshot()) {
    keys.insert({s.trace_id, s.span_id, s.parent_span, s.name, s.kind});
  }
  return keys;
}

TEST(JobRunner, TracedRunIsBitIdenticalWithSummary) {
  const auto graph = keyswitch_graph();
  const sim::SimResult ref =
      sim::simulate_alchemist(*graph, arch::ArchConfig::alchemist());

  obs::TraceSink sink;
  obs::EventLog log;
  svc::RunnerOptions opts;
  opts.trace = &sink;
  opts.log = &log;
  svc::JobRunner runner(opts);
  svc::JobSpec spec;
  spec.graph = graph;
  spec.name = "traced";
  const svc::JobPtr job = runner.submit(std::move(spec));
  job->wait();
  ASSERT_EQ(job->state(), svc::JobState::Completed) << job->error();
  EXPECT_EQ(job->result().cycles, ref.cycles);
  EXPECT_EQ(job->result().time_us, ref.time_us);
  EXPECT_EQ(job->result().registry.counters(), ref.registry.counters());

  const svc::TraceSummary sum = job->trace_summary();
  EXPECT_NE(sum.trace_id, 0u);
  EXPECT_EQ(sum.trace_id, job->trace_context().trace_id);
  EXPECT_NE(sum.root_span, 0u);
  EXPECT_EQ(sum.attempts, 1u);
  EXPECT_EQ(sum.retries, 0u);
  EXPECT_GT(sum.total_us, 0.0);
  EXPECT_GE(sum.total_us, sum.run_us);
  EXPECT_EQ(sum.sim_us, ref.time_us);

  // The span tree holds the job root, its queue wait, one attempt and the
  // engine's run span, all on the same trace.
  std::map<std::string, std::size_t> by_name;
  for (const obs::SpanRecord& s : sink.snapshot()) {
    EXPECT_EQ(s.trace_id, sum.trace_id);
    ++by_name[s.name];
  }
  EXPECT_EQ(by_name["job"], 1u);
  EXPECT_EQ(by_name["queue"], 1u);
  EXPECT_EQ(by_name["attempt"], 1u);
  EXPECT_EQ(by_name["sim"], 1u);

  // Flight recorder saw admission and completion for the job.
  const std::vector<obs::LogEvent> events = log.tail(10);
  ASSERT_GE(events.size(), 2u);
  for (const obs::LogEvent& ev : events) EXPECT_EQ(ev.trace_id, sum.trace_id);
}

TEST(JobRunner, RetryKeepsTraceIdAndRecordsBackoffSpans) {
  const auto graph = keyswitch_graph();
  obs::TraceSink sink;
  obs::EventLog log;
  svc::RunnerOptions opts;
  opts.trace = &sink;
  opts.log = &log;
  opts.backoff.base_us = 1000;
  svc::JobRunner runner(opts);
  svc::JobSpec spec;
  spec.graph = graph;
  spec.fault_enabled = true;
  spec.fault.compute_fault_rate = 1.0;  // every attempt corrupts
  spec.max_attempts = 3;
  const svc::JobPtr job = runner.submit(std::move(spec));
  job->wait();
  ASSERT_EQ(job->state(), svc::JobState::Failed);

  const svc::TraceSummary sum = job->trace_summary();
  EXPECT_EQ(sum.attempts, 3u);
  EXPECT_EQ(sum.retries, 2u);
  EXPECT_GT(sum.backoff_us, 0.0);

  std::size_t attempts = 0, backoffs = 0;
  for (const obs::SpanRecord& s : sink.snapshot()) {
    EXPECT_EQ(s.trace_id, sum.trace_id) << s.name;
    if (s.name == "attempt") ++attempts;
    if (s.name == "backoff") ++backoffs;
  }
  EXPECT_EQ(attempts, 3u);
  EXPECT_EQ(backoffs, 2u);  // no backoff after the final attempt

  bool saw_retry_event = false;
  for (const obs::LogEvent& ev : log.tail(32)) {
    if (ev.message.find("retry") != std::string::npos) saw_retry_event = true;
  }
  EXPECT_TRUE(saw_retry_event);
}

TEST(JobRunner, ResumeJoinsTheOriginalTrace) {
  const auto graph = keyswitch_graph();
  const sim::SimResult ref =
      sim::simulate_alchemist(*graph, arch::ArchConfig::alchemist());

  obs::TraceSink sink;
  svc::RunnerOptions opts;
  opts.trace = &sink;
  svc::JobRunner runner(opts);
  svc::JobSpec spec;
  spec.graph = graph;
  spec.max_steps = 1;
  const svc::JobPtr job = runner.submit(std::move(spec));
  job->wait();
  ASSERT_EQ(job->state(), svc::JobState::DeadlineExpired);
  ASSERT_TRUE(job->checkpoint().valid());
  EXPECT_GT(job->trace_summary().checkpoint_bytes, 0u);

  svc::JobSpec resume;
  resume.graph = graph;
  resume.resume_from = job->checkpoint();
  resume.trace = job->trace_context();  // both halves share one trace
  const svc::JobPtr resumed = runner.submit(std::move(resume));
  resumed->wait();
  ASSERT_EQ(resumed->state(), svc::JobState::Completed) << resumed->error();
  EXPECT_EQ(resumed->result().cycles, ref.cycles);

  EXPECT_EQ(resumed->trace_context().trace_id, job->trace_context().trace_id);
  // The resumed root is linked under the interrupted job's root span, and
  // the interrupted half recorded its checkpoint capture.
  std::size_t roots = 0, checkpoints = 0;
  for (const obs::SpanRecord& s : sink.snapshot()) {
    EXPECT_EQ(s.trace_id, job->trace_context().trace_id);
    if (s.name == "job") {
      ++roots;
      if (s.span_id == resumed->trace_context().span_id) {
        EXPECT_EQ(s.parent_span, job->trace_context().span_id);
      }
    }
    if (s.name == "checkpoint") ++checkpoints;
  }
  EXPECT_EQ(roots, 2u);
  EXPECT_GE(checkpoints, 1u);
}

TEST(JobRunner, SpanTreeIsWorkerCountInvariant) {
  const auto graph = keyswitch_graph();
  std::multiset<SpanKey> reference;
  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    obs::TraceSink sink;
    svc::RunnerOptions opts;
    opts.workers = workers;
    opts.trace = &sink;
    svc::JobRunner runner(opts);
    std::vector<svc::JobPtr> jobs;
    for (int i = 0; i < 8; ++i) {
      svc::JobSpec spec;
      spec.graph = graph;
      spec.engine = (i % 2 == 0) ? svc::Engine::Level : svc::Engine::Event;
      jobs.push_back(runner.submit(std::move(spec)));
    }
    runner.drain();
    for (const svc::JobPtr& j : jobs) {
      ASSERT_EQ(j->state(), svc::JobState::Completed) << j->error();
    }
    const std::multiset<SpanKey> tree = span_tree(sink);
    EXPECT_FALSE(tree.empty());
    if (reference.empty()) {
      reference = tree;
    } else {
      EXPECT_EQ(tree, reference) << "span tree varies at " << workers << " workers";
    }
  }
}

// --- Introspection endpoints ----------------------------------------------

// Minimal blocking HTTP/1.1 GET against loopback; returns the raw response.
std::string http_get(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req =
      "GET " + target + " HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  (void)!::write(fd, req.data(), req.size());
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) out.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  return out;
}

TEST(Introspection, BuildInfoJsonReportsProvenance) {
  const std::string info = svc::build_info_json();
  EXPECT_NE(info.find("\"version\""), std::string::npos);
  EXPECT_NE(info.find("\"build_type\""), std::string::npos);
  EXPECT_NE(info.find("\"compiler\""), std::string::npos);
  EXPECT_NE(info.find("\"standard\""), std::string::npos);
  EXPECT_NE(info.find("\"sanitizers\""), std::string::npos);
}

TEST(Introspection, EphemeralPortServesTraceLogAndBuildEndpoints) {
  const auto graph = keyswitch_graph();
  obs::TraceSink sink;
  obs::EventLog log;
  svc::RunnerOptions opts;
  opts.trace = &sink;
  opts.log = &log;
  svc::JobRunner runner(opts);
  for (int i = 0; i < 4; ++i) {
    svc::JobSpec spec;
    spec.graph = graph;
    runner.submit(std::move(spec));
  }
  runner.drain();

  svc::IntrospectionServer server(
      /*port=*/0, [&] { return runner.snapshot(); },
      [&] { return runner.status_json(); },
      svc::IntrospectionOptions{&sink, &log});
  ASSERT_TRUE(server.ok()) << server.error();
  // Port 0 must resolve to the actually-bound ephemeral port.
  ASSERT_GT(server.port(), 0);

  const std::string buildz = http_get(server.port(), "/buildz");
  EXPECT_NE(buildz.find("200 OK"), std::string::npos);
  EXPECT_NE(buildz.find("\"version\""), std::string::npos);

  const std::string tracez = http_get(server.port(), "/tracez?n=5&slowest=2");
  EXPECT_NE(tracez.find("200 OK"), std::string::npos);
  EXPECT_NE(tracez.find("\"recent\""), std::string::npos);
  EXPECT_NE(tracez.find("\"slowest\""), std::string::npos);

  const std::string logz = http_get(server.port(), "/logz?n=10&min=info");
  EXPECT_NE(logz.find("200 OK"), std::string::npos);
  EXPECT_NE(logz.find("\"sev\":\"info\""), std::string::npos);
  EXPECT_EQ(logz.find("\"sev\":\"debug\""), std::string::npos);
}

TEST(Introspection, TraceAndLogEndpointsAre404WithoutSources) {
  svc::IntrospectionServer server(
      /*port=*/0, [] { return obs::Registry(); }, [] { return std::string("{}"); });
  ASSERT_TRUE(server.ok()) << server.error();
  EXPECT_NE(http_get(server.port(), "/tracez").find("404"), std::string::npos);
  EXPECT_NE(http_get(server.port(), "/logz").find("404"), std::string::npos);
  EXPECT_NE(http_get(server.port(), "/buildz").find("200 OK"), std::string::npos);
}

}  // namespace
}  // namespace alchemist
