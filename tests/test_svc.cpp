// The resilient simulation service: deterministic backoff, circuit breaker
// state machine, and the JobRunner's admission / deadline / retry / resume
// semantics, including the terminal-state partition invariant.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>

#include "common/backoff.h"
#include "fault/injector.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "sim/alchemist_sim.h"
#include "svc/introspect.h"
#include "svc/job_runner.h"
#include "workloads/ckks_workloads.h"

namespace alchemist {
namespace {

using namespace std::chrono_literals;

std::shared_ptr<const metaop::OpGraph> shared_graph(metaop::OpGraph g) {
  return std::make_shared<const metaop::OpGraph>(std::move(g));
}

std::shared_ptr<const metaop::OpGraph> keyswitch_graph() {
  return shared_graph(workloads::build_keyswitch(workloads::CkksWl::paper(16)));
}

// ---------------------------------------------------------------- Backoff --

TEST(Backoff, DeterministicSequence) {
  BackoffConfig cfg;
  Backoff a(cfg), b(cfg);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.next_us(), b.next_us());
  EXPECT_EQ(a.attempts(), 20u);
  EXPECT_EQ(a.total_us(), b.total_us());

  a.reset();
  Backoff fresh(cfg);
  EXPECT_EQ(a.next_us(), fresh.next_us());
}

TEST(Backoff, GrowsExponentiallyUpToCap) {
  BackoffConfig cfg;
  cfg.base_us = 100;
  cfg.multiplier = 2.0;
  cfg.cap_us = 1000;
  cfg.jitter = 0.0;
  Backoff bo(cfg);
  EXPECT_EQ(bo.next_us(), 100u);
  EXPECT_EQ(bo.next_us(), 200u);
  EXPECT_EQ(bo.next_us(), 400u);
  EXPECT_EQ(bo.next_us(), 800u);
  EXPECT_EQ(bo.next_us(), 1000u);  // capped
  EXPECT_EQ(bo.next_us(), 1000u);
  EXPECT_EQ(bo.total_us(), 100u + 200u + 400u + 800u + 1000u + 1000u);
}

TEST(Backoff, SaturatesAtCapForHugeAttemptCounts) {
  // Regression: base * multiplier^k overflows the double to inf within ~300
  // attempts, and llround of a jittered near-UINT64_MAX cap is UB. Both must
  // saturate instead.
  BackoffConfig cfg;
  cfg.base_us = 100;
  cfg.multiplier = 10.0;
  cfg.cap_us = std::numeric_limits<std::uint64_t>::max();
  cfg.jitter = 0.5;  // jittered cap would land well past 2^63 without the clamp
  Backoff bo(cfg);
  constexpr std::uint64_t kMaxRoundable = 9'000'000'000'000'000'000ull;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t d = bo.next_us();
    ASSERT_GE(d, 1u);
    ASSERT_LE(d, kMaxRoundable);
  }
  EXPECT_EQ(bo.attempts(), 5000u);

  // With jitter off, the saturated schedule is pinned exactly at the clamp.
  cfg.jitter = 0.0;
  Backoff pinned(cfg);
  std::uint64_t last = 0;
  for (int i = 0; i < 100; ++i) last = pinned.next_us();
  EXPECT_EQ(last, kMaxRoundable);

  // The capped_ latch must not freeze growth-free schedules early, and
  // reset() must re-arm it.
  BackoffConfig flat;
  flat.base_us = 500;
  flat.multiplier = 1.0;
  flat.cap_us = 1000;
  flat.jitter = 0.0;
  Backoff fb(flat);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(fb.next_us(), 500u);
  bo.reset();
  cfg.jitter = 0.5;  // back to bo's original config
  Backoff fresh(cfg);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(bo.next_us(), fresh.next_us());
}

TEST(Backoff, JitterStaysBounded) {
  BackoffConfig cfg;
  cfg.base_us = 1000;
  cfg.multiplier = 1.0;  // isolate the jitter term
  cfg.cap_us = 1000;
  cfg.jitter = 0.25;
  Backoff bo(cfg);
  bool saw_low = false, saw_high = false;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t d = bo.next_us();
    EXPECT_GE(d, 750u);
    EXPECT_LE(d, 1250u);
    saw_low = saw_low || d < 1000u;
    saw_high = saw_high || d > 1000u;
  }
  EXPECT_TRUE(saw_low);
  EXPECT_TRUE(saw_high);
}

TEST(Backoff, RejectsInvalidConfig) {
  BackoffConfig cfg;
  cfg.base_us = 0;
  EXPECT_THROW(Backoff{cfg}, std::invalid_argument);
  cfg = {};
  cfg.multiplier = 0.5;
  EXPECT_THROW(Backoff{cfg}, std::invalid_argument);
  cfg = {};
  cfg.jitter = 1.5;
  EXPECT_THROW(Backoff{cfg}, std::invalid_argument);
  cfg = {};
  cfg.cap_us = 1;  // below base
  EXPECT_THROW(Backoff{cfg}, std::invalid_argument);
}

TEST(Backoff, RetrierChargesBackoffIntoRegistry) {
  obs::Registry reg;
  BackoffConfig cfg;
  cfg.jitter = 0.0;
  cfg.base_us = 100;
  fault::Retrier retrier(4, &reg, cfg);
  int calls = 0;
  const int result = retrier.run([&] { return ++calls; },
                                 [](int v) { return v >= 3; });
  EXPECT_EQ(result, 3);
  EXPECT_EQ(retrier.retries(), 2u);
  EXPECT_EQ(reg.counter(fault::metrics::kRetries), 2u);
  EXPECT_EQ(reg.counter(fault::metrics::kBackoffUs), 100u + 200u);
  EXPECT_EQ(retrier.backoff_us(), 300u);
}

TEST(AttemptSeed, FirstAttemptReproducesBaseSeed) {
  EXPECT_EQ(svc::attempt_seed(0xabcdULL, 0), 0xabcdULL);
  EXPECT_EQ(svc::attempt_seed(0xabcdULL, 1), 0xabcdULL);
  EXPECT_NE(svc::attempt_seed(0xabcdULL, 2), 0xabcdULL);
  EXPECT_NE(svc::attempt_seed(0xabcdULL, 2), svc::attempt_seed(0xabcdULL, 3));
  EXPECT_EQ(svc::attempt_seed(0xabcdULL, 2), svc::attempt_seed(0xabcdULL, 2));
}

// --------------------------------------------------------- CircuitBreaker --

TEST(CircuitBreaker, TripsAfterConsecutiveFailuresAndRecovers) {
  using State = svc::CircuitBreaker::State;
  auto now = std::chrono::steady_clock::time_point{} + 1h;  // manual clock
  svc::CircuitBreaker br(3, 10ms);

  EXPECT_TRUE(br.allow(now));
  br.on_failure(now);
  br.on_failure(now);
  EXPECT_EQ(br.state(), State::Closed);
  br.on_success();  // success resets the consecutive count
  br.on_failure(now);
  br.on_failure(now);
  EXPECT_EQ(br.state(), State::Closed);
  br.on_failure(now);
  EXPECT_EQ(br.state(), State::Open);

  EXPECT_FALSE(br.allow(now));
  EXPECT_FALSE(br.allow(now + 9ms));
  EXPECT_TRUE(br.allow(now + 10ms));  // half-open probe
  EXPECT_EQ(br.state(), State::HalfOpen);
  EXPECT_FALSE(br.allow(now + 10ms));  // only one probe in flight

  br.on_success();
  EXPECT_EQ(br.state(), State::Closed);
  EXPECT_TRUE(br.allow(now + 11ms));
}

TEST(CircuitBreaker, FailedProbeReopensNeutralProbeReprobes) {
  using State = svc::CircuitBreaker::State;
  auto now = std::chrono::steady_clock::time_point{} + 1h;
  svc::CircuitBreaker br(1, 10ms);

  br.on_failure(now);
  EXPECT_EQ(br.state(), State::Open);
  EXPECT_TRUE(br.allow(now + 10ms));
  br.on_failure(now + 10ms);  // probe failed: full cooldown again
  EXPECT_EQ(br.state(), State::Open);
  EXPECT_FALSE(br.allow(now + 19ms));
  EXPECT_TRUE(br.allow(now + 20ms));

  br.on_neutral(now + 20ms);  // probe cancelled: re-probe immediately
  EXPECT_EQ(br.state(), State::Open);
  EXPECT_TRUE(br.allow(now + 20ms));
}

TEST(CircuitBreaker, ZeroThresholdNeverTrips) {
  auto now = std::chrono::steady_clock::time_point{};
  svc::CircuitBreaker br(0, 10ms);
  for (int i = 0; i < 100; ++i) br.on_failure(now);
  EXPECT_TRUE(br.allow(now));
}

// -------------------------------------------------------------- JobRunner --

TEST(JobRunner, CompletesJobsWithPlainSimResults) {
  const auto graph = keyswitch_graph();
  const sim::SimResult ref = sim::simulate_alchemist(*graph, arch::ArchConfig::alchemist());

  svc::RunnerOptions opts;
  opts.workers = 4;
  svc::JobRunner runner(opts);
  std::vector<svc::JobPtr> jobs;
  for (int i = 0; i < 16; ++i) {
    svc::JobSpec spec;
    spec.graph = graph;
    jobs.push_back(runner.submit(std::move(spec)));
  }
  runner.drain();
  for (const svc::JobPtr& j : jobs) {
    ASSERT_EQ(j->state(), svc::JobState::Completed) << j->error();
    EXPECT_EQ(j->attempts(), 1u);
    EXPECT_EQ(j->result().cycles, ref.cycles);
    EXPECT_EQ(j->result().registry.counters(), ref.registry.counters());
  }
  const obs::Registry reg = runner.snapshot();
  EXPECT_EQ(reg.counter(svc::metrics::kSubmitted), 16u);
  EXPECT_EQ(reg.counter(svc::metrics::kAdmitted), 16u);
  EXPECT_EQ(reg.counter(svc::metrics::kCompleted), 16u);
  EXPECT_EQ(reg.gauge(svc::metrics::kWorkers), 4.0);
  EXPECT_GT(reg.gauge(svc::metrics::kLatencyUs, {{"p", "99"}}), 0.0);
}

TEST(JobRunner, RejectsNullGraph) {
  svc::JobRunner runner;
  EXPECT_THROW(runner.submit(svc::JobSpec{}), std::invalid_argument);
}

TEST(JobRunner, ShedsWhenQueueIsFull) {
  const auto graph = keyswitch_graph();
  svc::RunnerOptions opts;
  opts.workers = 2;
  opts.queue_capacity = 2;
  opts.start_paused = true;
  svc::JobRunner runner(opts);

  std::vector<svc::JobPtr> jobs;
  for (int i = 0; i < 5; ++i) {
    svc::JobSpec spec;
    spec.graph = graph;
    jobs.push_back(runner.submit(std::move(spec)));
  }
  // With parked workers the queue holds exactly 2; the rest are already
  // terminal before submit() returns.
  for (int i = 0; i < 2; ++i) EXPECT_EQ(jobs[i]->state(), svc::JobState::Queued);
  for (int i = 2; i < 5; ++i) {
    EXPECT_EQ(jobs[i]->state(), svc::JobState::Shed);
    EXPECT_NE(jobs[i]->error().find("queue_full"), std::string::npos);
  }
  runner.set_paused(false);
  runner.drain();
  EXPECT_EQ(jobs[0]->state(), svc::JobState::Completed);
  EXPECT_EQ(jobs[1]->state(), svc::JobState::Completed);

  const obs::Registry reg = runner.snapshot();
  EXPECT_EQ(reg.counter(svc::metrics::kRejected, {{"reason", "queue_full"}}), 3u);
  EXPECT_EQ(reg.gauge(svc::metrics::kQueueDepth, {{"stat", "peak"}}), 2.0);
}

TEST(JobRunner, CancelWhileQueued) {
  const auto graph = keyswitch_graph();
  svc::RunnerOptions opts;
  opts.start_paused = true;
  svc::JobRunner runner(opts);
  svc::JobSpec spec;
  spec.graph = graph;
  const svc::JobPtr job = runner.submit(std::move(spec));
  job->cancel();
  runner.set_paused(false);
  job->wait();
  EXPECT_EQ(job->state(), svc::JobState::Cancelled);
}

TEST(JobRunner, StepBudgetExpiresThenResumesBitIdentical) {
  const auto graph = keyswitch_graph();
  const sim::SimResult ref = sim::simulate_alchemist(*graph, arch::ArchConfig::alchemist());

  svc::JobRunner runner;
  svc::JobSpec spec;
  spec.graph = graph;
  spec.max_steps = 1;
  const svc::JobPtr job = runner.submit(std::move(spec));
  job->wait();
  ASSERT_EQ(job->state(), svc::JobState::DeadlineExpired);
  const sim::Checkpoint cp = job->checkpoint();
  ASSERT_TRUE(cp.valid());

  svc::JobSpec resume;
  resume.graph = graph;
  resume.resume_from = cp;
  const svc::JobPtr resumed = runner.submit(std::move(resume));
  resumed->wait();
  ASSERT_EQ(resumed->state(), svc::JobState::Completed) << resumed->error();
  EXPECT_EQ(resumed->result().cycles, ref.cycles);
  EXPECT_EQ(resumed->result().time_us, ref.time_us);
  EXPECT_EQ(resumed->result().registry.counters(), ref.registry.counters());
  EXPECT_EQ(runner.snapshot().counter(svc::metrics::kResumed), 1u);
}

TEST(JobRunner, WallClockDeadlineAlreadyExpiredWhenDequeued) {
  const auto graph = keyswitch_graph();
  svc::RunnerOptions opts;
  opts.start_paused = true;
  svc::JobRunner runner(opts);
  svc::JobSpec spec;
  spec.graph = graph;
  spec.deadline = 1us;  // expires while parked in the queue
  const svc::JobPtr job = runner.submit(std::move(spec));
  std::this_thread::sleep_for(1ms);
  runner.set_paused(false);
  job->wait();
  EXPECT_EQ(job->state(), svc::JobState::DeadlineExpired);
}

TEST(JobRunner, RetriesExhaustBudgetOnPermanentCorruption) {
  const auto graph = keyswitch_graph();
  svc::JobRunner runner;
  svc::JobSpec spec;
  spec.graph = graph;
  spec.fault_enabled = true;
  spec.fault.compute_fault_rate = 1.0;  // every attempt corrupts
  spec.max_attempts = 3;
  const svc::JobPtr job = runner.submit(std::move(spec));
  job->wait();
  EXPECT_EQ(job->state(), svc::JobState::Failed);
  EXPECT_EQ(job->attempts(), 3u);
  EXPECT_EQ(runner.snapshot().counter(svc::metrics::kRetries), 2u);
}

TEST(JobRunner, RetrySucceedsWithRerolledSeed) {
  const auto graph = keyswitch_graph();
  const arch::ArchConfig cfg = arch::ArchConfig::alchemist();
  // Deterministically find a seed whose first attempt corrupts the run but
  // whose re-rolled second attempt is clean.
  fault::FaultConfig probe;
  probe.compute_fault_rate = probe.sram_fault_rate = probe.hbm_fault_rate = 5e-9;
  u64 seed = 0;
  bool found = false;
  for (u64 s = 1; s < 400 && !found; ++s) {
    auto corrupted = [&](u64 attempt) {
      fault::FaultConfig fc = probe;
      fc.seed = svc::attempt_seed(s, attempt);
      fault::FaultModel fm(fc, cfg.num_units);
      return sim::simulate_alchemist(*graph, cfg, nullptr, &fm)
                 .registry.counter(fault::metrics::kCorruptedOps) > 0;
    };
    if (corrupted(1) && !corrupted(2)) {
      seed = s;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "no seed with corrupt-then-clean attempts in range";

  svc::JobRunner runner;
  svc::JobSpec spec;
  spec.graph = graph;
  spec.fault_enabled = true;
  spec.fault = probe;
  spec.fault.seed = seed;
  spec.max_attempts = 3;
  const svc::JobPtr job = runner.submit(std::move(spec));
  job->wait();
  ASSERT_EQ(job->state(), svc::JobState::Completed) << job->error();
  EXPECT_EQ(job->attempts(), 2u);
  const obs::Registry reg = runner.snapshot();
  EXPECT_EQ(reg.counter(svc::metrics::kCompleted, {{"retried", "true"}}), 1u);
}

TEST(JobRunner, BreakerFastFailsAfterConsecutiveFailures) {
  const auto graph = keyswitch_graph();
  svc::RunnerOptions opts;
  opts.breaker_threshold = 2;
  opts.breaker_cooldown = 10min;  // stays open for the rest of the test
  svc::JobRunner runner(opts);

  auto poison = [&] {
    svc::JobSpec spec;
    spec.workload_class = "poison";
    spec.graph = graph;
    spec.fault_enabled = true;
    spec.fault.compute_fault_rate = 1.0;
    const svc::JobPtr job = runner.submit(std::move(spec));
    runner.drain();
    return job;
  };
  EXPECT_EQ(poison()->state(), svc::JobState::Failed);
  EXPECT_EQ(poison()->state(), svc::JobState::Failed);
  const svc::JobPtr rejected = poison();
  EXPECT_EQ(rejected->state(), svc::JobState::CircuitOpen);

  // Other workload classes are unaffected.
  svc::JobSpec ok;
  ok.workload_class = "healthy";
  ok.graph = graph;
  const svc::JobPtr job = runner.submit(std::move(ok));
  job->wait();
  EXPECT_EQ(job->state(), svc::JobState::Completed);
}

TEST(JobRunner, DestructorCancelsQueuedJobs) {
  const auto graph = keyswitch_graph();
  std::vector<svc::JobPtr> jobs;
  {
    svc::RunnerOptions opts;
    opts.workers = 1;
    opts.start_paused = true;
    svc::JobRunner runner(opts);
    for (int i = 0; i < 4; ++i) {
      svc::JobSpec spec;
      spec.graph = graph;
      jobs.push_back(runner.submit(std::move(spec)));
    }
  }  // destructor: queued jobs must still reach a terminal state
  for (const svc::JobPtr& j : jobs) {
    EXPECT_EQ(j->state(), svc::JobState::Cancelled);
  }
}

TEST(JobRunner, LatencyHistogramsCoverEveryAdmittedJob) {
  const auto graph = keyswitch_graph();
  svc::RunnerOptions opts;
  opts.workers = 3;
  svc::JobRunner runner(opts);
  constexpr int kJobs = 9;
  for (int i = 0; i < kJobs; ++i) {
    svc::JobSpec spec;
    spec.graph = graph;
    spec.workload_class = (i % 2 == 0) ? "even" : "odd";
    runner.submit(std::move(spec));
  }
  runner.drain();

  const obs::Registry reg = runner.snapshot();
  ASSERT_EQ(reg.counter(svc::metrics::kAdmitted), kJobs);
  // Each of queue/run/total/sim is recorded untagged and per {class=}, and
  // the untagged count matches the admitted jobs exactly.
  for (const char* name :
       {svc::metrics::kLatencyQueueUs, svc::metrics::kLatencyRunUs,
        svc::metrics::kLatencyTotalUs, svc::metrics::kLatencySimUs}) {
    const obs::Histogram& all = reg.histogram(name);
    EXPECT_EQ(all.count(), kJobs) << name;
    const obs::Histogram& even = reg.histogram(name, {{"class", "even"}});
    const obs::Histogram& odd = reg.histogram(name, {{"class", "odd"}});
    EXPECT_EQ(even.count(), 5u) << name;
    EXPECT_EQ(odd.count(), 4u) << name;
    // Per-class shards merge back to the untagged family exactly.
    obs::Histogram merged = even;
    merged.merge(odd);
    EXPECT_EQ(merged, all) << name;
  }
  // Simulated latency is strictly positive and identical across the class
  // split (same graph, deterministic engine).
  const obs::Histogram& sim_all = reg.histogram(svc::metrics::kLatencySimUs);
  EXPECT_GT(sim_all.sum_ticks(), 0u);
  // Derived percentile gauges ride along in the same snapshot.
  for (const char* p : {"50", "95", "99"}) {
    EXPECT_GT(reg.gauge(std::string(svc::metrics::kLatencyTotalUs) + ".p" + p),
              0.0);
  }
}

TEST(JobRunner, SimLatencyHistogramIsBitIdenticalAcrossWorkerCounts) {
  const auto ks = keyswitch_graph();
  const auto boot = shared_graph(
      workloads::build_bootstrapping(workloads::CkksWl::paper(16), false));
  // svc.latency.sim_us records simulated time, which only depends on the
  // graph + config — not on scheduling, worker count, or wall-clock noise.
  // The snapshots must therefore be bit-identical for any worker count.
  std::vector<obs::Histogram> sims;
  std::vector<obs::Histogram> sims_tagged;
  for (std::size_t workers = 1; workers <= 8; ++workers) {
    svc::RunnerOptions opts;
    opts.workers = workers;
    svc::JobRunner runner(opts);
    for (int i = 0; i < 12; ++i) {
      svc::JobSpec spec;
      spec.graph = (i % 3 == 0) ? boot : ks;
      spec.workload_class = (i % 3 == 0) ? "boot" : "ks";
      spec.engine = (i % 2 == 0) ? svc::Engine::Level : svc::Engine::Event;
      runner.submit(std::move(spec));
    }
    runner.drain();
    const obs::Registry reg = runner.snapshot();
    sims.push_back(reg.histogram(svc::metrics::kLatencySimUs));
    sims_tagged.push_back(
        reg.histogram(svc::metrics::kLatencySimUs, {{"class", "boot"}}));
  }
  for (std::size_t i = 1; i < sims.size(); ++i) {
    EXPECT_EQ(sims[i], sims[0]) << "workers=" << i + 1;
    EXPECT_EQ(sims[i].sum_ticks(), sims[0].sum_ticks());
    EXPECT_EQ(sims_tagged[i], sims_tagged[0]) << "workers=" << i + 1;
  }
  EXPECT_EQ(sims[0].count(), 12u);
  EXPECT_EQ(sims_tagged[0].count(), 4u);
}

TEST(JobRunner, StatusJsonReportsRunnerAndBreakerState) {
  const auto graph = keyswitch_graph();
  svc::RunnerOptions opts;
  opts.workers = 2;
  opts.queue_capacity = 32;
  svc::JobRunner runner(opts);
  for (int i = 0; i < 4; ++i) {
    svc::JobSpec spec;
    spec.graph = graph;
    spec.workload_class = "statusz";
    runner.submit(std::move(spec));
  }
  runner.drain();

  const std::string json = runner.status_json();
  for (const char* needle :
       {"\"workers\": 2", "\"paused\": false", "\"stopping\": false",
        "\"queue_depth\": 0", "\"queue_capacity\": 32", "\"running\": 0",
        "\"breakers\"", "\"statusz\": \"closed\"", "\"counters\"",
        "\"svc.completed\": 4", "\"substrate\""}) {
    EXPECT_NE(json.find(needle), std::string::npos)
        << "missing " << needle << " in:\n" << json;
  }
  const auto breakers = runner.breaker_states();
  ASSERT_EQ(breakers.size(), 1u);
  EXPECT_EQ(breakers.at("statusz"), svc::CircuitBreaker::State::Closed);
}

TEST(JobRunner, ProfileFlagAttachesUtilizationWithoutPerturbingResults) {
  const auto graph = keyswitch_graph();
  svc::JobRunner runner;

  auto submit = [&](bool profile, svc::Engine engine) {
    svc::JobSpec spec;
    spec.graph = graph;
    spec.profile = profile;
    spec.engine = engine;
    const svc::JobPtr job = runner.submit(std::move(spec));
    job->wait();
    EXPECT_EQ(job->state(), svc::JobState::Completed) << job->error();
    return job;
  };
  for (svc::Engine engine : {svc::Engine::Level, svc::Engine::Event}) {
    const svc::JobPtr plain = submit(false, engine);
    const svc::JobPtr profiled = submit(true, engine);
    // The profiler is an observer: identical simulated outcome either way.
    EXPECT_EQ(profiled->result().cycles, plain->result().cycles);
    EXPECT_EQ(profiled->result().time_us, plain->result().time_us);
    EXPECT_EQ(profiled->result().registry.counters(),
              plain->result().registry.counters());
    EXPECT_FALSE(plain->result().profile.enabled());
    const obs::UtilizationProfile& prof = profiled->result().profile;
    ASSERT_TRUE(prof.enabled());
    ASSERT_EQ(prof.units.size(), arch::ArchConfig::alchemist().num_units);
    for (const obs::UnitCycles& u : prof.units) {
      EXPECT_EQ(u.total(), prof.total_cycles);
    }
  }
}

TEST(JobRunner, TerminalCountersPartitionSubmitted) {
  const auto graph = keyswitch_graph();
  svc::RunnerOptions opts;
  opts.workers = 3;
  opts.queue_capacity = 8;
  opts.start_paused = true;
  svc::JobRunner runner(opts);
  std::vector<svc::JobPtr> jobs;
  for (int i = 0; i < 12; ++i) {
    svc::JobSpec spec;
    spec.graph = graph;
    if (i % 4 == 1) spec.max_steps = 1;  // expires
    if (i % 4 == 2) {
      spec.fault_enabled = true;
      spec.fault.compute_fault_rate = 1.0;
      spec.max_attempts = 2;  // fails after one retry
    }
    jobs.push_back(runner.submit(std::move(spec)));
  }
  jobs[0]->cancel();
  runner.set_paused(false);
  runner.drain();

  const obs::Registry reg = runner.snapshot();
  const std::uint64_t terminal =
      reg.counter(svc::metrics::kCompleted) + reg.counter(svc::metrics::kFailed) +
      reg.counter(svc::metrics::kCancelled) +
      reg.counter(svc::metrics::kDeadlineExpired) +
      reg.total_over_tags("svc.rejected{");
  EXPECT_EQ(terminal, reg.counter(svc::metrics::kSubmitted));
  EXPECT_EQ(reg.counter(svc::metrics::kSubmitted), 12u);
  for (const svc::JobPtr& j : jobs) EXPECT_TRUE(j->terminal());
}

// --- Distributed tracing / flight recorder --------------------------------

// (trace, span, parent, name, kind) identity of a span tree: everything that
// must be invariant across worker counts and repeat runs. Timestamps and
// track assignment (which worker ran an attempt) legitimately vary.
using SpanKey =
    std::tuple<std::uint64_t, std::uint64_t, std::uint64_t, std::string, std::string>;

std::multiset<SpanKey> span_tree(const obs::TraceSink& sink) {
  std::multiset<SpanKey> keys;
  for (const obs::SpanRecord& s : sink.snapshot()) {
    keys.insert({s.trace_id, s.span_id, s.parent_span, s.name, s.kind});
  }
  return keys;
}

TEST(JobRunner, TracedRunIsBitIdenticalWithSummary) {
  const auto graph = keyswitch_graph();
  const sim::SimResult ref =
      sim::simulate_alchemist(*graph, arch::ArchConfig::alchemist());

  obs::TraceSink sink;
  obs::EventLog log;
  svc::RunnerOptions opts;
  opts.trace = &sink;
  opts.log = &log;
  svc::JobRunner runner(opts);
  svc::JobSpec spec;
  spec.graph = graph;
  spec.name = "traced";
  const svc::JobPtr job = runner.submit(std::move(spec));
  job->wait();
  ASSERT_EQ(job->state(), svc::JobState::Completed) << job->error();
  EXPECT_EQ(job->result().cycles, ref.cycles);
  EXPECT_EQ(job->result().time_us, ref.time_us);
  EXPECT_EQ(job->result().registry.counters(), ref.registry.counters());

  const svc::TraceSummary sum = job->trace_summary();
  EXPECT_NE(sum.trace_id, 0u);
  EXPECT_EQ(sum.trace_id, job->trace_context().trace_id);
  EXPECT_NE(sum.root_span, 0u);
  EXPECT_EQ(sum.attempts, 1u);
  EXPECT_EQ(sum.retries, 0u);
  EXPECT_GT(sum.total_us, 0.0);
  EXPECT_GE(sum.total_us, sum.run_us);
  EXPECT_EQ(sum.sim_us, ref.time_us);

  // The span tree holds the job root, its queue wait, one attempt and the
  // engine's run span, all on the same trace.
  std::map<std::string, std::size_t> by_name;
  for (const obs::SpanRecord& s : sink.snapshot()) {
    EXPECT_EQ(s.trace_id, sum.trace_id);
    ++by_name[s.name];
  }
  EXPECT_EQ(by_name["job"], 1u);
  EXPECT_EQ(by_name["queue"], 1u);
  EXPECT_EQ(by_name["attempt"], 1u);
  EXPECT_EQ(by_name["sim"], 1u);

  // Flight recorder saw admission and completion for the job.
  const std::vector<obs::LogEvent> events = log.tail(10);
  ASSERT_GE(events.size(), 2u);
  for (const obs::LogEvent& ev : events) EXPECT_EQ(ev.trace_id, sum.trace_id);
}

TEST(JobRunner, RetryKeepsTraceIdAndRecordsBackoffSpans) {
  const auto graph = keyswitch_graph();
  obs::TraceSink sink;
  obs::EventLog log;
  svc::RunnerOptions opts;
  opts.trace = &sink;
  opts.log = &log;
  opts.backoff.base_us = 1000;
  svc::JobRunner runner(opts);
  svc::JobSpec spec;
  spec.graph = graph;
  spec.fault_enabled = true;
  spec.fault.compute_fault_rate = 1.0;  // every attempt corrupts
  spec.max_attempts = 3;
  const svc::JobPtr job = runner.submit(std::move(spec));
  job->wait();
  ASSERT_EQ(job->state(), svc::JobState::Failed);

  const svc::TraceSummary sum = job->trace_summary();
  EXPECT_EQ(sum.attempts, 3u);
  EXPECT_EQ(sum.retries, 2u);
  EXPECT_GT(sum.backoff_us, 0.0);

  std::size_t attempts = 0, backoffs = 0;
  for (const obs::SpanRecord& s : sink.snapshot()) {
    EXPECT_EQ(s.trace_id, sum.trace_id) << s.name;
    if (s.name == "attempt") ++attempts;
    if (s.name == "backoff") ++backoffs;
  }
  EXPECT_EQ(attempts, 3u);
  EXPECT_EQ(backoffs, 2u);  // no backoff after the final attempt

  bool saw_retry_event = false;
  for (const obs::LogEvent& ev : log.tail(32)) {
    if (ev.message.find("retry") != std::string::npos) saw_retry_event = true;
  }
  EXPECT_TRUE(saw_retry_event);
}

TEST(JobRunner, ResumeJoinsTheOriginalTrace) {
  const auto graph = keyswitch_graph();
  const sim::SimResult ref =
      sim::simulate_alchemist(*graph, arch::ArchConfig::alchemist());

  obs::TraceSink sink;
  svc::RunnerOptions opts;
  opts.trace = &sink;
  svc::JobRunner runner(opts);
  svc::JobSpec spec;
  spec.graph = graph;
  spec.max_steps = 1;
  const svc::JobPtr job = runner.submit(std::move(spec));
  job->wait();
  ASSERT_EQ(job->state(), svc::JobState::DeadlineExpired);
  ASSERT_TRUE(job->checkpoint().valid());
  EXPECT_GT(job->trace_summary().checkpoint_bytes, 0u);

  svc::JobSpec resume;
  resume.graph = graph;
  resume.resume_from = job->checkpoint();
  resume.trace = job->trace_context();  // both halves share one trace
  const svc::JobPtr resumed = runner.submit(std::move(resume));
  resumed->wait();
  ASSERT_EQ(resumed->state(), svc::JobState::Completed) << resumed->error();
  EXPECT_EQ(resumed->result().cycles, ref.cycles);

  EXPECT_EQ(resumed->trace_context().trace_id, job->trace_context().trace_id);
  // The resumed root is linked under the interrupted job's root span, and
  // the interrupted half recorded its checkpoint capture.
  std::size_t roots = 0, checkpoints = 0;
  for (const obs::SpanRecord& s : sink.snapshot()) {
    EXPECT_EQ(s.trace_id, job->trace_context().trace_id);
    if (s.name == "job") {
      ++roots;
      if (s.span_id == resumed->trace_context().span_id) {
        EXPECT_EQ(s.parent_span, job->trace_context().span_id);
      }
    }
    if (s.name == "checkpoint") ++checkpoints;
  }
  EXPECT_EQ(roots, 2u);
  EXPECT_GE(checkpoints, 1u);
}

TEST(JobRunner, SpanTreeIsWorkerCountInvariant) {
  const auto graph = keyswitch_graph();
  std::multiset<SpanKey> reference;
  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    obs::TraceSink sink;
    svc::RunnerOptions opts;
    opts.workers = workers;
    opts.trace = &sink;
    svc::JobRunner runner(opts);
    std::vector<svc::JobPtr> jobs;
    for (int i = 0; i < 8; ++i) {
      svc::JobSpec spec;
      spec.graph = graph;
      spec.engine = (i % 2 == 0) ? svc::Engine::Level : svc::Engine::Event;
      jobs.push_back(runner.submit(std::move(spec)));
    }
    runner.drain();
    for (const svc::JobPtr& j : jobs) {
      ASSERT_EQ(j->state(), svc::JobState::Completed) << j->error();
    }
    const std::multiset<SpanKey> tree = span_tree(sink);
    EXPECT_FALSE(tree.empty());
    if (reference.empty()) {
      reference = tree;
    } else {
      EXPECT_EQ(tree, reference) << "span tree varies at " << workers << " workers";
    }
  }
}

// --- Introspection endpoints ----------------------------------------------

// Minimal blocking HTTP/1.1 GET against loopback; returns the raw response.
std::string http_get(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req =
      "GET " + target + " HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  (void)!::write(fd, req.data(), req.size());
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) out.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  return out;
}

TEST(Introspection, BuildInfoJsonReportsProvenance) {
  const std::string info = svc::build_info_json();
  EXPECT_NE(info.find("\"version\""), std::string::npos);
  EXPECT_NE(info.find("\"build_type\""), std::string::npos);
  EXPECT_NE(info.find("\"compiler\""), std::string::npos);
  EXPECT_NE(info.find("\"standard\""), std::string::npos);
  EXPECT_NE(info.find("\"sanitizers\""), std::string::npos);
}

TEST(Introspection, EphemeralPortServesTraceLogAndBuildEndpoints) {
  const auto graph = keyswitch_graph();
  obs::TraceSink sink;
  obs::EventLog log;
  svc::RunnerOptions opts;
  opts.trace = &sink;
  opts.log = &log;
  svc::JobRunner runner(opts);
  for (int i = 0; i < 4; ++i) {
    svc::JobSpec spec;
    spec.graph = graph;
    runner.submit(std::move(spec));
  }
  runner.drain();

  svc::IntrospectionServer server(
      /*port=*/0, [&] { return runner.snapshot(); },
      [&] { return runner.status_json(); },
      svc::IntrospectionOptions{&sink, &log});
  ASSERT_TRUE(server.ok()) << server.error();
  // Port 0 must resolve to the actually-bound ephemeral port.
  ASSERT_GT(server.port(), 0);

  const std::string buildz = http_get(server.port(), "/buildz");
  EXPECT_NE(buildz.find("200 OK"), std::string::npos);
  EXPECT_NE(buildz.find("\"version\""), std::string::npos);

  const std::string tracez = http_get(server.port(), "/tracez?n=5&slowest=2");
  EXPECT_NE(tracez.find("200 OK"), std::string::npos);
  EXPECT_NE(tracez.find("\"recent\""), std::string::npos);
  EXPECT_NE(tracez.find("\"slowest\""), std::string::npos);

  const std::string logz = http_get(server.port(), "/logz?n=10&min=info");
  EXPECT_NE(logz.find("200 OK"), std::string::npos);
  EXPECT_NE(logz.find("\"sev\":\"info\""), std::string::npos);
  EXPECT_EQ(logz.find("\"sev\":\"debug\""), std::string::npos);
}

TEST(Introspection, TraceAndLogEndpointsAre404WithoutSources) {
  svc::IntrospectionServer server(
      /*port=*/0, [] { return obs::Registry(); }, [] { return std::string("{}"); });
  ASSERT_TRUE(server.ok()) << server.error();
  EXPECT_NE(http_get(server.port(), "/tracez").find("404"), std::string::npos);
  EXPECT_NE(http_get(server.port(), "/logz").find("404"), std::string::npos);
  EXPECT_NE(http_get(server.port(), "/buildz").find("200 OK"), std::string::npos);
}

// Connects and sends `payload` without completing the request, then reads
// whatever the server answers (the hardening paths: 408 / 431).
std::string http_send_raw(int port, const std::string& payload) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  if (!payload.empty()) (void)!::write(fd, payload.data(), payload.size());
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(Introspection, SlowClientGets408WithoutWedgingTheServer) {
  svc::IntrospectionOptions opts;
  opts.read_deadline = std::chrono::milliseconds(100);
  svc::IntrospectionServer server(
      /*port=*/0, [] { return obs::Registry(); },
      [] { return std::string("{}"); }, opts);
  ASSERT_TRUE(server.ok()) << server.error();
  // A client that opens the connection and never finishes its headers must
  // be cut off with 408 once the read deadline passes...
  const std::string stalled = http_send_raw(server.port(), "GET /hea");
  EXPECT_NE(stalled.find("408"), std::string::npos) << stalled;
  // ...and one that sends nothing at all times out the same way.
  const std::string silent = http_send_raw(server.port(), "");
  EXPECT_NE(silent.find("408"), std::string::npos) << silent;
  // The single-threaded accept loop must still serve the next client.
  EXPECT_NE(http_get(server.port(), "/healthz").find("200 OK"),
            std::string::npos);
}

TEST(Introspection, OversizedRequestsGet431) {
  svc::IntrospectionOptions opts;
  opts.max_request_line = 256;
  opts.max_request_bytes = 2048;
  svc::IntrospectionServer server(
      /*port=*/0, [] { return obs::Registry(); },
      [] { return std::string("{}"); }, opts);
  ASSERT_TRUE(server.ok()) << server.error();
  // Request line alone past the cap (no terminator yet).
  const std::string long_line =
      "GET /" + std::string(1024, 'a') + " HTTP/1.1\r\n\r\n";
  EXPECT_NE(http_send_raw(server.port(), long_line).find("431"),
            std::string::npos);
  // Short request line, but headers ballooning past max_request_bytes.
  std::string fat_headers = "GET /healthz HTTP/1.1\r\n";
  for (int i = 0; i < 64; ++i) {
    fat_headers += "X-Pad-" + std::to_string(i) + ": " + std::string(100, 'b') + "\r\n";
  }
  fat_headers += "\r\n";
  EXPECT_NE(http_send_raw(server.port(), fat_headers).find("431"),
            std::string::npos);
  // Within both caps still works.
  EXPECT_NE(http_get(server.port(), "/healthz").find("200 OK"),
            std::string::npos);
}

// --- Admission: token buckets and quotas ----------------------------------

TEST(TokenBucket, RefillsAtConfiguredRateUnderManualClock) {
  auto now = std::chrono::steady_clock::time_point{} + 1h;
  svc::TokenBucket bucket(/*burst=*/2.0, /*rate_per_sec=*/1.0);
  EXPECT_TRUE(bucket.try_take(now));
  EXPECT_TRUE(bucket.try_take(now));
  EXPECT_FALSE(bucket.try_take(now));  // burst exhausted
  now += 500ms;
  EXPECT_FALSE(bucket.try_take(now));  // only half a token back
  now += 500ms;
  EXPECT_TRUE(bucket.try_take(now));  // one full token refilled
  EXPECT_FALSE(bucket.try_take(now));
  // Refunds cannot mint tokens past the burst capacity.
  now += 1h;
  for (int i = 0; i < 10; ++i) bucket.refund();
  EXPECT_DOUBLE_EQ(bucket.tokens(now), 2.0);
}

TEST(TokenBucket, ZeroBurstDisablesAndZeroRateNeverRefills) {
  const auto now = std::chrono::steady_clock::time_point{} + 1h;
  svc::TokenBucket unlimited;  // burst 0 = disabled
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(unlimited.try_take(now));

  svc::TokenBucket budget(/*burst=*/3.0, /*rate_per_sec=*/0.0);
  auto t = now;
  EXPECT_TRUE(budget.try_take(t));
  EXPECT_TRUE(budget.try_take(t));
  EXPECT_TRUE(budget.try_take(t));
  t += 24h;  // a non-replenishing budget stays empty forever
  EXPECT_FALSE(budget.try_take(t));
}

TEST(Admission, EnforcesRateAndConcurrencyIndependently) {
  auto now = std::chrono::steady_clock::time_point{} + 1h;
  svc::TenantPolicyTable table;
  svc::TenantPolicy p;
  p.burst = 3;
  p.rate_per_sec = 0;
  p.max_in_flight = 1;
  table.policies["a"] = p;
  svc::Admission adm(table);

  EXPECT_EQ(adm.admit("a", now), svc::Admission::Verdict::Admit);
  EXPECT_EQ(adm.in_flight("a"), 1u);
  // Concurrency rejection refunds the token it took.
  EXPECT_EQ(adm.admit("a", now), svc::Admission::Verdict::ConcurrencyLimited);
  EXPECT_EQ(adm.in_flight("a"), 1u);
  adm.release("a", now);
  EXPECT_EQ(adm.admit("a", now), svc::Admission::Verdict::Admit);
  adm.release("a", now);
  EXPECT_EQ(adm.admit("a", now), svc::Admission::Verdict::Admit);
  adm.release("a", now);
  // Three tokens spent; the non-replenishing bucket now rate-limits.
  EXPECT_EQ(adm.admit("a", now), svc::Admission::Verdict::RateLimited);
  // rollback() refunds token + slot: admission becomes possible again.
  EXPECT_EQ(adm.admit("a", now + 1s), svc::Admission::Verdict::RateLimited);
  adm.rollback("a", now + 1s);
  EXPECT_EQ(adm.admit("a", now + 1s), svc::Admission::Verdict::Admit);

  // Unconfigured tenants fall back to the unlimited policy.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(adm.admit("other", now), svc::Admission::Verdict::Admit);
  }
}

TEST(Admission, RestrictiveFallbackNeverGovernsUntenantedSubmissions) {
  const auto now = std::chrono::steady_clock::time_point{} + 1h;
  svc::TenantPolicyTable table;
  // A deployment capping unknown tenants hard: one-shot budget, one slot.
  table.fallback.burst = 1;
  table.fallback.rate_per_sec = 0;
  table.fallback.max_in_flight = 1;
  svc::Admission adm(table);

  // The empty tenant resolves the unlimited policy, not the fallback: the
  // documented contract is that untenanted means no quotas at all.
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(adm.admit("", now), svc::Admission::Verdict::Admit);
  }
  // An unknown *named* tenant is governed by the fallback.
  EXPECT_EQ(adm.admit("mystery", now), svc::Admission::Verdict::Admit);
  EXPECT_EQ(adm.admit("mystery", now), svc::Admission::Verdict::RateLimited);
}

TEST(Admission, EvictsIdleFallbackStatesButKeepsConfiguredTenants) {
  auto now = std::chrono::steady_clock::time_point{} + 1h;
  svc::TenantPolicyTable table;
  svc::TenantPolicy p;
  p.burst = 2;
  p.rate_per_sec = 0;
  table.policies["keep"] = p;
  svc::Admission adm(table);

  EXPECT_EQ(adm.admit("keep", now), svc::Admission::Verdict::Admit);
  EXPECT_EQ(adm.admit("transient", now), svc::Admission::Verdict::Admit);
  auto tenants = [&] {
    std::vector<std::string> names;
    adm.for_each([&](const std::string& t, std::size_t) { names.push_back(t); });
    return names;
  };
  ASSERT_EQ(tenants().size(), 2u);

  // Releasing the fallback-resolved tenant leaves its state indistinguishable
  // from fresh (nothing in flight, unlimited bucket): it is evicted. The
  // configured tenant stays resident even once idle.
  adm.release("transient", now);
  adm.release("keep", now);
  EXPECT_EQ(tenants(), std::vector<std::string>{"keep"});

  // A fallback state whose bucket has not refilled is NOT evicted on
  // release (its remaining budget is real state)...
  svc::TenantPolicyTable limited;
  limited.fallback.burst = 2;
  limited.fallback.rate_per_sec = 1;
  svc::Admission radm(limited);
  EXPECT_EQ(radm.admit("cycler", now), svc::Admission::Verdict::Admit);
  radm.release("cycler", now);
  std::size_t live = 0;
  radm.for_each([&](const std::string&, std::size_t) { ++live; });
  EXPECT_EQ(live, 1u);
  // ...but once it refills, the amortized sweep piggybacked on a later
  // admission (of anyone) reclaims it.
  now += 5s;
  EXPECT_EQ(radm.admit("someone-else", now), svc::Admission::Verdict::Admit);
  std::vector<std::string> names;
  radm.for_each([&](const std::string& t, std::size_t) { names.push_back(t); });
  EXPECT_EQ(names, std::vector<std::string>{"someone-else"});
}

// --- FairQueue: deficit round robin ---------------------------------------

svc::JobPtr queue_job(const std::string& name) {
  static auto graph = keyswitch_graph();
  svc::JobSpec spec;
  spec.name = name;
  spec.graph = graph;
  return std::make_shared<svc::Job>(std::move(spec));
}

TEST(FairQueue, SingleLaneDegeneratesToFifo) {
  svc::FairQueue q(8);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(q.push("", 1, 0, queue_job("j" + std::to_string(i))),
              svc::FairQueue::PushResult::Ok);
  }
  EXPECT_EQ(q.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    const svc::JobPtr j = q.pop();
    ASSERT_NE(j, nullptr);
    EXPECT_EQ(j->spec().name, "j" + std::to_string(i));
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pop(), nullptr);
}

TEST(FairQueue, DeficitRoundRobinHonorsWeights) {
  svc::FairQueue q(32);
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(q.push("a", 2, 0, queue_job("a" + std::to_string(i))),
              svc::FairQueue::PushResult::Ok);
  }
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(q.push("b", 1, 0, queue_job("b" + std::to_string(i))),
              svc::FairQueue::PushResult::Ok);
  }
  // Weight 2:1 -> two of a, one of b, repeating.
  std::string order;
  while (const svc::JobPtr j = q.pop()) order += j->spec().name[0];
  EXPECT_EQ(order, "aabaabaab");
}

TEST(FairQueue, PerTenantAndGlobalCapsAreDistinct) {
  svc::FairQueue q(4);
  EXPECT_EQ(q.push("a", 1, 2, queue_job("a0")), svc::FairQueue::PushResult::Ok);
  EXPECT_EQ(q.push("a", 1, 2, queue_job("a1")), svc::FairQueue::PushResult::Ok);
  EXPECT_EQ(q.push("a", 1, 2, queue_job("a2")),
            svc::FairQueue::PushResult::TenantFull);
  EXPECT_EQ(q.push("b", 1, 0, queue_job("b0")), svc::FairQueue::PushResult::Ok);
  EXPECT_EQ(q.push("b", 1, 0, queue_job("b1")), svc::FairQueue::PushResult::Ok);
  EXPECT_EQ(q.push("b", 1, 0, queue_job("b2")), svc::FairQueue::PushResult::Full);
  EXPECT_EQ(q.backlog("a"), 2u);
  EXPECT_EQ(q.backlog("b"), 2u);
  const std::vector<svc::JobPtr> drained = q.drain();
  EXPECT_EQ(drained.size(), 4u);
  EXPECT_TRUE(q.empty());
}

TEST(FairQueue, EvictsDrainedSubQueues) {
  svc::FairQueue q(8);
  ASSERT_EQ(q.push("a", 1, 0, queue_job("a0")), svc::FairQueue::PushResult::Ok);
  ASSERT_EQ(q.push("b", 1, 0, queue_job("b0")), svc::FairQueue::PushResult::Ok);
  auto lanes = [&] {
    std::size_t n = 0;
    q.for_each([&](const std::string&, std::size_t) { ++n; });
    return n;
  };
  EXPECT_EQ(lanes(), 2u);
  EXPECT_NE(q.pop(), nullptr);
  EXPECT_NE(q.pop(), nullptr);
  EXPECT_TRUE(q.empty());
  // Drained lanes are erased, not kept at zero: cycling through fresh tenant
  // names leaves no state behind.
  EXPECT_EQ(lanes(), 0u);
  // A returning tenant starts a fresh lane with its current weight.
  EXPECT_EQ(q.push("a", 3, 0, queue_job("a1")), svc::FairQueue::PushResult::Ok);
  EXPECT_EQ(q.backlog("a"), 1u);
  EXPECT_EQ(lanes(), 1u);
}

// --- OverloadController: CoDel-style ladder -------------------------------

TEST(OverloadController, EscalatesAfterIntervalAndResetsOnDrain) {
  using Level = svc::OverloadController::Level;
  auto now = std::chrono::steady_clock::time_point{} + 1h;
  svc::OverloadConfig cfg;
  cfg.enabled = true;
  cfg.target = std::chrono::microseconds(100);
  cfg.interval = std::chrono::microseconds(10'000);
  cfg.shed_factor = 8.0;
  svc::OverloadController ctl(cfg);

  EXPECT_EQ(ctl.observe(std::chrono::microseconds(50), now), Level::Normal);
  // First above-target sample opens the window but does not escalate.
  EXPECT_EQ(ctl.observe(std::chrono::microseconds(500), now), Level::Normal);
  now += 5ms;
  EXPECT_EQ(ctl.observe(std::chrono::microseconds(500), now), Level::Normal);
  now += 6ms;  // window complete, min sojourn 500us <= 8x target
  EXPECT_EQ(ctl.observe(std::chrono::microseconds(500), now), Level::Degrade);
  // A single at-target sojourn means the standing queue drained: full reset.
  EXPECT_EQ(ctl.observe(std::chrono::microseconds(100), now), Level::Normal);
  // Far above shed_factor * target for a full window escalates to Shed.
  EXPECT_EQ(ctl.observe(std::chrono::microseconds(5'000), now), Level::Normal);
  now += 11ms;
  EXPECT_EQ(ctl.observe(std::chrono::microseconds(5'000), now), Level::Shed);
  EXPECT_EQ(ctl.level(), Level::Shed);
  EXPECT_EQ(ctl.observe(std::chrono::microseconds(10), now), Level::Normal);
}

TEST(OverloadController, WindowReArmsSoDegradeCanStillEscalate) {
  using Level = svc::OverloadController::Level;
  auto now = std::chrono::steady_clock::time_point{} + 1h;
  svc::OverloadConfig cfg;
  cfg.enabled = true;
  cfg.target = std::chrono::microseconds(100);
  cfg.interval = std::chrono::microseconds(10'000);
  cfg.shed_factor = 8.0;  // shed_at = 800us
  svc::OverloadController ctl(cfg);

  // One early mildly-above-target sample (200us) dominates the first window:
  // the decision is Degrade.
  EXPECT_EQ(ctl.observe(std::chrono::microseconds(200), now), Level::Normal);
  now += 11ms;
  EXPECT_EQ(ctl.observe(std::chrono::microseconds(20'000), now), Level::Degrade);
  // The window re-armed with that decision. Were the 200us sample still the
  // running minimum, the sustained 20ms standing delay could never cross the
  // 800us shed threshold; a fresh window sees only the 20ms samples.
  EXPECT_EQ(ctl.observe(std::chrono::microseconds(20'000), now), Level::Degrade);
  now += 11ms;
  EXPECT_EQ(ctl.observe(std::chrono::microseconds(20'000), now), Level::Shed);
  // Re-arm works downward too: delay receding below shed_at (but still above
  // target) de-escalates Shed to Degrade at the next window...
  now += 1ms;
  EXPECT_EQ(ctl.observe(std::chrono::microseconds(200), now), Level::Shed);
  now += 11ms;
  EXPECT_EQ(ctl.observe(std::chrono::microseconds(200), now), Level::Degrade);
  // ...and one at-target sojourn still resets the ladder outright.
  EXPECT_EQ(ctl.observe(std::chrono::microseconds(50), now), Level::Normal);
}

TEST(OverloadController, DisabledNeverLeavesNormal) {
  using Level = svc::OverloadController::Level;
  svc::OverloadController ctl;  // default config: disabled
  auto now = std::chrono::steady_clock::time_point{} + 1h;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(ctl.observe(std::chrono::hours(1), now), Level::Normal);
    now += 1h;
  }
}

// --- JobRunner: tenancy ----------------------------------------------------

TEST(JobRunner, QuotaRateLimitRejectsTyped) {
  const auto graph = keyswitch_graph();
  svc::RunnerOptions opts;
  opts.workers = 2;
  opts.start_paused = true;
  svc::TenantPolicy p;
  p.burst = 1;
  p.rate_per_sec = 0;
  opts.tenants.policies["t0"] = p;
  svc::JobRunner runner(opts);

  std::vector<svc::JobPtr> jobs;
  for (int i = 0; i < 3; ++i) {
    svc::JobSpec spec;
    spec.graph = graph;
    spec.tenant = "t0";
    jobs.push_back(runner.submit(std::move(spec)));
  }
  EXPECT_EQ(jobs[0]->state(), svc::JobState::Queued);
  for (int i = 1; i < 3; ++i) {
    EXPECT_EQ(jobs[i]->state(), svc::JobState::QuotaExceeded);
    EXPECT_NE(jobs[i]->error().find("quota_rate"), std::string::npos);
  }
  runner.set_paused(false);
  runner.drain();
  EXPECT_EQ(jobs[0]->state(), svc::JobState::Completed);

  const obs::Registry reg = runner.snapshot();
  EXPECT_EQ(reg.counter(svc::metrics::kRejected, {{"reason", "quota_rate"}}), 2u);
  EXPECT_EQ(reg.counter(svc::metrics::kTenantSubmitted, {{"tenant", "t0"}}), 3u);
  EXPECT_EQ(reg.counter(svc::metrics::kTenantAdmitted, {{"tenant", "t0"}}), 1u);
  EXPECT_EQ(reg.counter(svc::metrics::kTenantRejected,
                        {{"reason", "quota_rate"}, {"tenant", "t0"}}),
            2u);
  EXPECT_EQ(reg.counter(svc::metrics::kTenantTerminal,
                        {{"state", "completed"}, {"tenant", "t0"}}),
            1u);
  // Terminal counters + typed rejections still partition svc.submitted.
  EXPECT_EQ(reg.counter(svc::metrics::kCompleted) +
                reg.total_over_tags("svc.rejected{"),
            reg.counter(svc::metrics::kSubmitted));
}

TEST(JobRunner, ConcurrencyQuotaFreesSlotOnTerminal) {
  const auto graph = keyswitch_graph();
  svc::RunnerOptions opts;
  opts.workers = 2;
  opts.start_paused = true;
  svc::TenantPolicy p;
  p.max_in_flight = 1;
  opts.tenants.policies["t0"] = p;
  svc::JobRunner runner(opts);

  auto submit = [&] {
    svc::JobSpec spec;
    spec.graph = graph;
    spec.tenant = "t0";
    return runner.submit(std::move(spec));
  };
  const svc::JobPtr first = submit();
  const svc::JobPtr second = submit();
  EXPECT_EQ(first->state(), svc::JobState::Queued);
  EXPECT_EQ(second->state(), svc::JobState::QuotaExceeded);
  EXPECT_NE(second->error().find("quota_concurrency"), std::string::npos);
  runner.set_paused(false);
  runner.drain();
  EXPECT_EQ(first->state(), svc::JobState::Completed);
  // The terminal transition released the slot: the next submission sails in.
  const svc::JobPtr third = submit();
  third->wait();
  EXPECT_EQ(third->state(), svc::JobState::Completed);
}

TEST(JobRunner, DrrIsolatesLateTenantFromEarlyBacklog) {
  const auto graph = keyswitch_graph();
  svc::RunnerOptions opts;
  opts.workers = 1;  // strictly serial: dequeue order == DRR order
  opts.start_paused = true;
  opts.tenants.policies["hog"] = svc::TenantPolicy{};
  opts.tenants.policies["late"] = svc::TenantPolicy{};
  svc::JobRunner runner(opts);

  std::vector<svc::JobPtr> hog, late;
  for (int i = 0; i < 8; ++i) {
    svc::JobSpec spec;
    spec.graph = graph;
    spec.tenant = "hog";
    hog.push_back(runner.submit(std::move(spec)));
  }
  for (int i = 0; i < 2; ++i) {
    svc::JobSpec spec;
    spec.graph = graph;
    spec.tenant = "late";
    late.push_back(runner.submit(std::move(spec)));
  }
  runner.set_paused(false);
  runner.drain();
  for (const svc::JobPtr& j : hog) ASSERT_EQ(j->state(), svc::JobState::Completed);
  for (const svc::JobPtr& j : late) ASSERT_EQ(j->state(), svc::JobState::Completed);
  // Round robin interleaves the lanes: the late tenant's last job (served by
  // round 4) dequeues before the hog's last (round 10) despite 8 jobs of
  // head-of-line backlog — under FIFO it would have waited behind all of them.
  EXPECT_LT(late.back()->trace_summary().queue_us,
            hog.back()->trace_summary().queue_us);
}

TEST(JobRunner, BreakerIsolatedPerTenantAndClass) {
  const auto graph = keyswitch_graph();
  svc::RunnerOptions opts;
  opts.workers = 1;
  opts.breaker_threshold = 2;
  opts.breaker_cooldown = std::chrono::seconds(600);
  svc::JobRunner runner(opts);

  auto poison = [&](const char* tenant) {
    svc::JobSpec spec;
    spec.graph = graph;
    spec.tenant = tenant;
    spec.workload_class = "poison";
    spec.fault_enabled = true;
    spec.fault.compute_fault_rate = 1.0;
    spec.max_attempts = 1;
    const svc::JobPtr j = runner.submit(std::move(spec));
    runner.drain();
    return j;
  };
  EXPECT_EQ(poison("a")->state(), svc::JobState::Failed);
  EXPECT_EQ(poison("a")->state(), svc::JobState::Failed);
  // Tenant a's poison breaker is open now...
  EXPECT_EQ(poison("a")->state(), svc::JobState::CircuitOpen);
  // ...but tenant b's same-class jobs and untenanted jobs are untouched.
  EXPECT_EQ(poison("b")->state(), svc::JobState::Failed);
  EXPECT_EQ(poison("")->state(), svc::JobState::Failed);

  const auto states = runner.breaker_states();
  ASSERT_TRUE(states.count("a/poison"));
  ASSERT_TRUE(states.count("b/poison"));
  ASSERT_TRUE(states.count("poison"));  // untenanted key: class alone
  EXPECT_EQ(states.at("a/poison"), svc::CircuitBreaker::State::Open);
  EXPECT_EQ(states.at("b/poison"), svc::CircuitBreaker::State::Closed);
  EXPECT_EQ(states.at("poison"), svc::CircuitBreaker::State::Closed);
}

TEST(JobRunner, OverloadDegradesDegradableJobsBitIdentically) {
  const auto graph = keyswitch_graph();
  const sim::SimResult ref =
      sim::simulate_alchemist(*graph, arch::ArchConfig::alchemist());
  svc::RunnerOptions opts;
  opts.workers = 1;
  opts.start_paused = true;
  opts.overload.enabled = true;
  // Paused-queue sojourns are milliseconds, so a 1us target is always
  // exceeded; shed_at = 1us * 1e18 never is — the ladder stops at Degrade.
  opts.overload.target = std::chrono::microseconds(1);
  opts.overload.interval = std::chrono::microseconds(0);
  opts.overload.shed_factor = 1e18;
  svc::JobRunner runner(opts);

  std::vector<svc::JobPtr> jobs;
  for (int i = 0; i < 4; ++i) {
    svc::JobSpec spec;
    spec.graph = graph;
    spec.degradable = true;
    spec.checkpoint_interval = 2;
    spec.max_attempts = 3;
    jobs.push_back(runner.submit(std::move(spec)));
  }
  runner.set_paused(false);
  runner.drain();
  // With one worker the first dequeue only opens the CoDel window; every
  // later one sees Degrade.
  ASSERT_EQ(jobs[0]->state(), svc::JobState::Completed);
  EXPECT_FALSE(jobs[0]->degraded());
  for (int i = 1; i < 4; ++i) {
    ASSERT_EQ(jobs[i]->state(), svc::JobState::Completed) << jobs[i]->error();
    EXPECT_TRUE(jobs[i]->degraded());
    EXPECT_TRUE(jobs[i]->trace_summary().degraded);
    EXPECT_EQ(jobs[i]->attempts(), 1u);
    // Reduced detail changes observability, never the simulated outcome.
    EXPECT_EQ(jobs[i]->result().cycles, ref.cycles);
    EXPECT_EQ(jobs[i]->result().registry.counters(), ref.registry.counters());
  }
  const obs::Registry reg = runner.snapshot();
  EXPECT_EQ(reg.counter(svc::metrics::kDegraded), 3u);
  EXPECT_EQ(reg.gauge(svc::metrics::kOverloadLevel), 1.0);  // Degrade
}

TEST(JobRunner, NonDegradableJobsKeepFullServiceUnderOverload) {
  const auto graph = keyswitch_graph();
  svc::RunnerOptions opts;
  opts.workers = 1;
  opts.start_paused = true;
  opts.overload.enabled = true;
  opts.overload.target = std::chrono::microseconds(0);
  opts.overload.interval = std::chrono::microseconds(0);
  opts.overload.shed_factor = 1e18;
  svc::JobRunner runner(opts);
  std::vector<svc::JobPtr> jobs;
  for (int i = 0; i < 4; ++i) {
    svc::JobSpec spec;
    spec.graph = graph;  // degradable defaults to false
    jobs.push_back(runner.submit(std::move(spec)));
  }
  runner.set_paused(false);
  runner.drain();
  for (const svc::JobPtr& j : jobs) {
    ASSERT_EQ(j->state(), svc::JobState::Completed);
    EXPECT_FALSE(j->degraded());
  }
  EXPECT_EQ(runner.snapshot().counter(svc::metrics::kDegraded), 0u);
}

TEST(JobRunner, ShedRecoversOnceBacklogDrains) {
  using Level = svc::OverloadController::Level;
  const auto graph = keyswitch_graph();
  svc::RunnerOptions opts;
  opts.workers = 1;
  opts.start_paused = true;
  opts.overload.enabled = true;
  // shed_factor 0: any standing delay sheds as soon as the window closes
  // (interval 0 closes it on the second above-target sojourn).
  opts.overload.target = std::chrono::microseconds(0);
  opts.overload.interval = std::chrono::microseconds(0);
  opts.overload.shed_factor = 0.0;
  svc::JobRunner runner(opts);

  std::vector<svc::JobPtr> jobs;
  for (int i = 0; i < 4; ++i) {
    svc::JobSpec spec;
    spec.graph = graph;
    jobs.push_back(runner.submit(std::move(spec)));
  }
  runner.set_paused(false);
  runner.drain();
  // Queued work drained at Shed (never dropped)...
  for (const svc::JobPtr& j : jobs) {
    ASSERT_EQ(j->state(), svc::JobState::Completed) << j->error();
  }
  ASSERT_EQ(runner.overload_level(), Level::Shed);
  // ...and the first post-drain arrival is ADMITTED, not shed: it finds the
  // queue empty, which counts as a zero-delay observation and resets the
  // ladder. Without that feed, Shed would reject every arrival before it
  // could generate the dequeue observation needed to recover — forever.
  svc::JobSpec spec;
  spec.graph = graph;
  const svc::JobPtr recovered = runner.submit(std::move(spec));
  EXPECT_NE(recovered->state(), svc::JobState::Shed) << recovered->error();
  recovered->wait();
  EXPECT_EQ(recovered->state(), svc::JobState::Completed) << recovered->error();
  EXPECT_EQ(runner.overload_level(), Level::Normal);
  EXPECT_EQ(runner.snapshot().counter(svc::metrics::kRejected,
                                      {{"reason", "overload"}}),
            0u);
}

TEST(JobRunner, StatusJsonReportsTenantsAndOverload) {
  const auto graph = keyswitch_graph();
  svc::RunnerOptions opts;
  opts.workers = 1;
  opts.start_paused = true;
  svc::TenantPolicy p;
  p.max_in_flight = 4;
  opts.tenants.policies["acme"] = p;
  svc::JobRunner runner(opts);
  svc::JobSpec spec;
  spec.graph = graph;
  spec.tenant = "acme";
  const svc::JobPtr job = runner.submit(std::move(spec));
  const std::string parked = runner.status_json();
  EXPECT_NE(parked.find("\"overload\": \"normal\""), std::string::npos) << parked;
  EXPECT_NE(parked.find("\"acme\": {\"in_flight\": 1, \"backlog\": 1}"),
            std::string::npos)
      << parked;
  runner.set_paused(false);
  runner.drain();
  const std::string drained = runner.status_json();
  EXPECT_NE(drained.find("\"acme\": {\"in_flight\": 0, \"backlog\": 0}"),
            std::string::npos)
      << drained;
  const obs::Registry reg = runner.snapshot();
  EXPECT_EQ(reg.gauge(svc::metrics::kTenantInFlight, {{"tenant", "acme"}}), 0.0);
  EXPECT_EQ(reg.gauge(svc::metrics::kTenantBacklog, {{"tenant", "acme"}}), 0.0);
}

// Tenant names are caller-controlled: a client cycling through fresh names
// must not grow resident state (admission entries, breakers, queue lanes) or
// metric cardinality without bound. Unconfigured names coalesce under the
// reserved "_other" label and their per-tenant state is evicted at idle.
TEST(JobRunner, CyclingUnconfiguredTenantsLeavesNoResidentState) {
  const auto graph = keyswitch_graph();
  svc::RunnerOptions opts;
  opts.workers = 1;
  opts.tenants.policies["acme"] = svc::TenantPolicy{};
  svc::JobRunner runner(opts);

  constexpr int kBurners = 8;
  for (int i = 0; i < kBurners; ++i) {
    svc::JobSpec spec;
    spec.graph = graph;
    spec.tenant = "burner-" + std::to_string(i);
    const svc::JobPtr j = runner.submit(std::move(spec));
    j->wait();
    ASSERT_EQ(j->state(), svc::JobState::Completed) << j->error();
  }
  runner.drain();

  // No breaker, admission entry, or queue lane survives per burner name.
  EXPECT_TRUE(runner.breaker_states().empty());
  const std::string status = runner.status_json();
  EXPECT_EQ(status.find("burner-"), std::string::npos) << status;

  // Per-tenant counters aggregate under "_other"; no series per burner name.
  const obs::Registry reg = runner.snapshot();
  EXPECT_EQ(reg.counter(svc::metrics::kTenantSubmitted, {{"tenant", "_other"}}),
            static_cast<std::uint64_t>(kBurners));
  EXPECT_EQ(reg.counter(svc::metrics::kTenantAdmitted, {{"tenant", "_other"}}),
            static_cast<std::uint64_t>(kBurners));
  EXPECT_EQ(reg.counter(svc::metrics::kTenantTerminal,
                        {{"state", "completed"}, {"tenant", "_other"}}),
            static_cast<std::uint64_t>(kBurners));
  EXPECT_EQ(reg.counter(svc::metrics::kTenantSubmitted, {{"tenant", "burner-0"}}),
            0u);

  // A configured tenant keeps its own label and stays resident once used.
  svc::JobSpec spec;
  spec.graph = graph;
  spec.tenant = "acme";
  const svc::JobPtr j = runner.submit(std::move(spec));
  j->wait();
  ASSERT_EQ(j->state(), svc::JobState::Completed);
  runner.drain();
  const obs::Registry after = runner.snapshot();
  EXPECT_EQ(after.counter(svc::metrics::kTenantSubmitted, {{"tenant", "acme"}}),
            1u);
  EXPECT_NE(runner.status_json().find("\"acme\""), std::string::npos);
}

// Satellite invariant: whatever interleaving of concurrent submit() against
// shutdown() plays out, every handle is terminal and the terminal-state
// counters (typed rejections included) partition svc.submitted exactly.
TEST(JobRunner, ConcurrentSubmitVersusShutdownKeepsAccountingExact) {
  const auto graph = keyswitch_graph();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;

  svc::RunnerOptions opts;
  opts.workers = 2;
  opts.queue_capacity = 16;  // small: exercises queue_full alongside shutdown
  svc::TenantPolicy limited;
  limited.burst = 10;
  limited.rate_per_sec = 0;
  limited.max_in_flight = 4;
  opts.tenants.policies["limited"] = limited;
  svc::JobRunner runner(opts);

  std::vector<std::vector<svc::JobPtr>> handles(kThreads);
  std::atomic<int> submitted_total{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        svc::JobSpec spec;
        spec.graph = graph;
        // Half the threads run as the quota-limited tenant so QuotaExceeded
        // races the shutdown shed path too.
        if (t % 2 == 0) spec.tenant = "limited";
        try {
          handles[t].push_back(runner.submit(std::move(spec)));
          submitted_total.fetch_add(1);
        } catch (const std::invalid_argument&) {
          ADD_FAILURE() << "submit threw on a valid spec";
          return;
        }
      }
    });
  }
  // Let some submissions land, then tear down while the rest race in.
  std::this_thread::sleep_for(2ms);
  runner.shutdown();
  for (std::thread& th : threads) th.join();
  runner.shutdown();  // idempotent

  std::map<svc::JobState, std::uint64_t> tally;
  for (const auto& per_thread : handles) {
    for (const svc::JobPtr& h : per_thread) {
      ASSERT_TRUE(h->terminal()) << "non-terminal handle after shutdown";
      ++tally[h->state()];
    }
  }
  const obs::Registry reg = runner.snapshot();
  const std::uint64_t submitted = reg.counter(svc::metrics::kSubmitted);
  EXPECT_EQ(submitted, static_cast<std::uint64_t>(submitted_total.load()));
  const std::uint64_t terminal =
      reg.counter(svc::metrics::kCompleted) +
      reg.counter(svc::metrics::kFailed) +
      reg.counter(svc::metrics::kCancelled) +
      reg.counter(svc::metrics::kDeadlineExpired) +
      reg.total_over_tags("svc.rejected{");
  EXPECT_EQ(terminal, submitted) << "terminal counters do not partition submitted";
  // Handle tally and counters agree state by state.
  EXPECT_EQ(tally[svc::JobState::Completed], reg.counter(svc::metrics::kCompleted));
  EXPECT_EQ(tally[svc::JobState::Cancelled], reg.counter(svc::metrics::kCancelled));
  EXPECT_EQ(tally[svc::JobState::QuotaExceeded],
            reg.counter(svc::metrics::kRejected, {{"reason", "quota_rate"}}) +
                reg.counter(svc::metrics::kRejected,
                            {{"reason", "quota_concurrency"}}));
  EXPECT_EQ(tally[svc::JobState::Shed],
            reg.counter(svc::metrics::kRejected, {{"reason", "queue_full"}}) +
                reg.counter(svc::metrics::kRejected, {{"reason", "shutdown"}}) +
                reg.counter(svc::metrics::kRejected,
                            {{"reason", "tenant_queue_full"}}) +
                reg.counter(svc::metrics::kRejected, {{"reason", "overload"}}));
  // Post-shutdown submissions shed deterministically.
  svc::JobSpec spec;
  spec.graph = graph;
  const svc::JobPtr after = runner.submit(std::move(spec));
  EXPECT_EQ(after->state(), svc::JobState::Shed);
  EXPECT_NE(after->error().find("shutdown"), std::string::npos);
}

}  // namespace
}  // namespace alchemist
