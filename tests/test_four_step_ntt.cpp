#include "poly/four_step_ntt.h"

#include <gtest/gtest.h>

#include "common/primes.h"
#include "common/rng.h"
#include "poly/ntt.h"

namespace alchemist {
namespace {

TEST(FourStepNtt, FactorsizesMultiplyToN) {
  const u64 q = max_ntt_prime(36, 16384);
  FourStepNtt ntt(q, 16384);
  EXPECT_EQ(ntt.n1() * ntt.n2(), 16384u);
  // The paper's example: N=16384 decomposes into 128 sub-NTTs of 128 points.
  EXPECT_EQ(ntt.n1(), 128u);
  EXPECT_EQ(ntt.n2(), 128u);
  EXPECT_EQ(ntt.sub_ntts_phase1(), 128u);
  EXPECT_EQ(ntt.sub_ntts_phase2(), 128u);
}

TEST(FourStepNtt, MatchesDirectEvaluationSmall) {
  const std::size_t n = 8;
  const u64 q = max_ntt_prime(20, n);
  FourStepNtt ntt(q, n);
  Rng rng(1);
  std::vector<u64> a = rng.uniform_vector(n, q);

  // Direct negacyclic DFT in natural order.
  std::vector<u64> expected(n);
  const u64 psi = primitive_root_2n(q, n);
  for (std::size_t k = 0; k < n; ++k) {
    u64 acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      acc = add_mod(acc, mul_mod(a[i], pow_mod(psi, (i * (2 * k + 1)) % (2 * n), q), q), q);
    }
    expected[k] = acc;
  }

  std::vector<u64> actual = a;
  ntt.forward(actual);
  EXPECT_EQ(actual, expected);
}

TEST(FourStepNtt, AgreesWithSingleStepNttValues) {
  // Same prime, same psi convention: four-step natural order output must be
  // the bit-reversal-unscrambled output of the standard table.
  const std::size_t n = 256;
  const u64 q = max_ntt_prime(30, n);
  FourStepNtt four(q, n);
  const NttTable& table = get_ntt_table(q, n);
  Rng rng(2);
  std::vector<u64> a = rng.uniform_vector(n, q);

  std::vector<u64> via_table = a;
  table.forward(via_table);

  std::vector<u64> via_four = a;
  four.forward(via_four);

  int log_n = 8;
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_EQ(via_four[k], via_table[bit_reverse(k, log_n)]) << k;
  }
}

class FourStepRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FourStepRoundTrip, InverseUndoesForward) {
  const std::size_t n = GetParam();
  const u64 q = max_ntt_prime(40, n);
  FourStepNtt ntt(q, n);
  Rng rng(n);
  const std::vector<u64> original = rng.uniform_vector(n, q);
  std::vector<u64> a = original;
  ntt.forward(a);
  ntt.inverse(a);
  EXPECT_EQ(a, original);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FourStepRoundTrip,
                         ::testing::Values(4, 8, 16, 64, 128, 512, 2048, 4096));

TEST(FourStepNtt, ConvolutionTheorem) {
  const std::size_t n = 128;
  const u64 q = max_ntt_prime(30, n);
  FourStepNtt ntt(q, n);
  Rng rng(7);
  std::vector<u64> a = rng.uniform_vector(n, q);
  std::vector<u64> b = rng.uniform_vector(n, q);

  std::vector<u64> expected(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const u64 prod = mul_mod(a[i], b[j], q);
      if (i + j < n) {
        expected[i + j] = add_mod(expected[i + j], prod, q);
      } else {
        expected[i + j - n] = sub_mod(expected[i + j - n], prod, q);
      }
    }
  }

  ntt.forward(a);
  ntt.forward(b);
  for (std::size_t i = 0; i < n; ++i) a[i] = mul_mod(a[i], b[i], q);
  ntt.inverse(a);
  EXPECT_EQ(a, expected);
}

TEST(FourStepNtt, NonSquareDecomposition) {
  // Odd log2: N = 2048 -> n1 = 32, n2 = 64.
  const u64 q = max_ntt_prime(36, 2048);
  FourStepNtt ntt(q, 2048);
  EXPECT_EQ(ntt.n1(), 32u);
  EXPECT_EQ(ntt.n2(), 64u);
}

TEST(FourStepNtt, RejectsBadSizes) {
  EXPECT_THROW(FourStepNtt(max_ntt_prime(20, 64), 63), std::invalid_argument);
  EXPECT_THROW(FourStepNtt(max_ntt_prime(20, 64), 2), std::invalid_argument);
}

}  // namespace
}  // namespace alchemist
