// Memory-system observability (memory.v1): byte conservation against
// sim.hbm.bytes, bit-identity of profiled runs, the keyswitch evk/ct-limb
// split against the closed-form digit sizes, the key-reuse ledger, the
// scratchpad residency model on synthetic graphs with analytic answers, and
// checkpoint/resume carrying the profile bit-identically on both engines.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <vector>

#include "arch/config.h"
#include "metaop/metaop.h"
#include "metaop/op_graph.h"
#include "obs/memory.h"
#include "obs/report.h"
#include "sim/alchemist_sim.h"
#include "sim/checkpoint.h"
#include "sim/event_sim.h"
#include "sim/mem_profiler.h"
#include "sim/sim_control.h"
#include "workloads/ckks_subgraphs.h"
#include "workloads/ckks_workloads.h"
#include "workloads/tfhe_workloads.h"

namespace alchemist {
namespace {

sim::SimResult run_engine(bool event, const metaop::OpGraph& g,
                          const arch::ArchConfig& cfg,
                          sim::MemProfiler* mem = nullptr,
                          sim::SimControl* control = nullptr) {
  return event ? sim::simulate_alchemist_events(g, cfg, nullptr, nullptr,
                                                control, nullptr, mem)
               : sim::simulate_alchemist(g, cfg, nullptr, nullptr, control,
                                         nullptr, mem);
}

void expect_same_profile(const obs::MemoryProfile& a,
                         const obs::MemoryProfile& b) {
  EXPECT_EQ(a.enabled(), b.enabled());
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.attributed, b.attributed);
  ASSERT_EQ(a.keys.size(), b.keys.size());
  for (const auto& [id, k] : a.keys) {
    const auto it = b.keys.find(id);
    ASSERT_NE(it, b.keys.end()) << "key " << id;
    EXPECT_EQ(k.operand, it->second.operand);
    EXPECT_EQ(k.fetches, it->second.fetches);
    EXPECT_EQ(k.total_bytes, it->second.total_bytes);
    EXPECT_EQ(k.refetch_bytes, it->second.refetch_bytes);
  }
  EXPECT_EQ(a.bw_util, b.bw_util);  // exact: resumed runs are bit-identical
  EXPECT_EQ(a.occupancy_bytes, b.occupancy_bytes);
  EXPECT_EQ(a.scratch_capacity_bytes, b.scratch_capacity_bytes);
  EXPECT_EQ(a.scratch_peak_bytes, b.scratch_peak_bytes);
  EXPECT_EQ(a.evictions, b.evictions);
}

// Every streamed byte lands in exactly one (operand x op class) bucket: the
// attribution grand total equals sim.hbm.bytes EXACTLY, on both engines and
// across schemes (CKKS keyswitch/rotation/HELR, TFHE PBS).
TEST(MemProfiler, ByteConservationAcrossSchemesAndEngines) {
  const workloads::CkksWl w = workloads::CkksWl::paper(16);
  workloads::TfheWl t = workloads::TfheWl::set_i();
  t.batch = 4;
  std::vector<metaop::OpGraph> graphs;
  graphs.push_back(workloads::build_keyswitch(w));
  graphs.push_back(workloads::build_rotation(w));
  graphs.push_back(workloads::build_helr_iteration(w));
  graphs.push_back(workloads::build_pbs(t));

  const arch::ArchConfig cfg = arch::ArchConfig::alchemist();
  for (const metaop::OpGraph& g : graphs) {
    for (bool event : {false, true}) {
      sim::MemProfiler mem;
      const sim::SimResult r = run_engine(event, g, cfg, &mem);
      ASSERT_TRUE(r.mem_profile.enabled()) << g.name;
      EXPECT_EQ(r.mem_profile.total_bytes,
                r.registry.counter(sim::metrics::kHbmBytes))
          << g.name;
      EXPECT_EQ(r.mem_profile.attributed_total(), r.mem_profile.total_bytes)
          << g.name << " event=" << event;
      EXPECT_EQ(r.mem_profile.total_cycles, r.cycles);
      EXPECT_EQ(r.mem_profile.scratch_capacity_bytes,
                static_cast<std::uint64_t>(cfg.total_sram_kb()) * 1024);
      EXPECT_EQ(r.mem_profile.bw_util.size(), sim::MemProfiler::kEpochs);
      EXPECT_EQ(r.mem_profile.occupancy_bytes.size(),
                sim::MemProfiler::kEpochs);
      for (const double v : r.mem_profile.bw_util) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
      }
    }
  }
}

// The profiler is an observer: attaching it must not perturb the simulated
// result in any counter, and the profile itself must agree across engines
// (both feed the same schedule-ordered stream model).
TEST(MemProfiler, ProfiledRunBitIdentical) {
  const metaop::OpGraph g =
      workloads::build_helr_iteration(workloads::CkksWl::paper(16));
  const arch::ArchConfig cfg = arch::ArchConfig::alchemist();
  for (bool event : {false, true}) {
    const sim::SimResult plain = run_engine(event, g, cfg);
    sim::MemProfiler mem;
    const sim::SimResult profiled = run_engine(event, g, cfg, &mem);
    EXPECT_EQ(plain.cycles, profiled.cycles);
    EXPECT_EQ(plain.time_us, profiled.time_us);
    EXPECT_EQ(plain.registry.counters(), profiled.registry.counters());
    EXPECT_FALSE(plain.mem_profile.enabled());
    EXPECT_TRUE(profiled.mem_profile.enabled());
  }
  sim::MemProfiler m1, m2;
  const sim::SimResult level = run_engine(false, g, cfg, &m1);
  const sim::SimResult event = run_engine(true, g, cfg, &m2);
  // Attribution and ledger depend only on the op stream, not the engine.
  EXPECT_EQ(level.mem_profile.attributed, event.mem_profile.attributed);
  EXPECT_EQ(level.mem_profile.key_fetch_bytes(),
            event.mem_profile.key_fetch_bytes());
  EXPECT_EQ(level.mem_profile.key_refetch_bytes(),
            event.mem_profile.key_refetch_bytes());
}

// Keyswitch evk traffic against the closed-form dnum-digit key size: the one
// DecompPolyMult's descriptor carries exactly evk_stream_bytes(w, digits),
// all of it under the relinearization key id.
TEST(MemProfiler, KeyswitchEvkSplitMatchesClosedForm) {
  const workloads::CkksWl w = workloads::CkksWl::paper(16);
  const metaop::OpGraph g = workloads::build_keyswitch(w);
  const std::uint64_t evk_expected =
      workloads::evk_stream_bytes(w, w.active_digits());
  ASSERT_GT(evk_expected, 0u);

  sim::MemProfiler mem;
  const sim::SimResult r =
      run_engine(false, g, arch::ArchConfig::alchemist(), &mem);
  const auto evk_it = r.mem_profile.attributed.find("evk");
  ASSERT_NE(evk_it, r.mem_profile.attributed.end());
  std::uint64_t evk_total = 0;
  for (const auto& [cls, bytes] : evk_it->second) evk_total += bytes;
  EXPECT_EQ(evk_total, evk_expected);
  // All evk traffic feeds the DecompPolyMult class.
  EXPECT_EQ(evk_it->second.count(
                metaop::class_tag(metaop::OpClass::DecompPolyMult)),
            1u);

  const auto key_it = r.mem_profile.keys.find(workloads::kRelinKeyId);
  ASSERT_NE(key_it, r.mem_profile.keys.end());
  EXPECT_EQ(key_it->second.operand, "evk");
  EXPECT_EQ(key_it->second.total_bytes, evk_expected);
  // One keyswitch streams the key once: no reuse headroom.
  EXPECT_EQ(key_it->second.fetches, 1u);
  EXPECT_EQ(key_it->second.refetch_bytes, 0u);
}

// Key reuse across ops: HELR's rotation tree re-fetches shared keys (nonzero
// headroom); one TFHE PBS batch streams each bootstrapping-key step exactly
// once (zero headroom) — the ledger separates the two regimes.
TEST(MemProfiler, KeyReuseLedgerSeparatesRegimes) {
  const arch::ArchConfig cfg = arch::ArchConfig::alchemist();
  sim::MemProfiler mem_helr;
  const sim::SimResult helr = run_engine(
      false, workloads::build_helr_iteration(workloads::CkksWl::paper(16)),
      cfg, &mem_helr);
  EXPECT_GT(helr.mem_profile.key_refetch_bytes(), 0u);

  workloads::TfheWl t = workloads::TfheWl::set_i();
  t.batch = 2;
  sim::MemProfiler mem_pbs;
  const sim::SimResult pbs =
      run_engine(false, workloads::build_pbs(t), cfg, &mem_pbs);
  EXPECT_GT(pbs.mem_profile.key_fetch_bytes(), 0u);
  EXPECT_EQ(pbs.mem_profile.key_refetch_bytes(), 0u);
  for (const auto& [id, k] : pbs.mem_profile.keys) {
    EXPECT_GE(id, workloads::kTfheBkKeyBase);
    EXPECT_EQ(k.fetches, 1u);
  }
}

// --- Synthetic scratchpad graphs with analytic answers -----------------------

metaop::HighOp synth_op(metaop::OpKind kind, std::uint64_t hbm_bytes,
                        std::vector<metaop::TransferDesc> transfers) {
  metaop::HighOp op;
  op.kind = kind;
  op.n = 64;
  op.channels = 1;
  op.hbm_bytes = hbm_bytes;
  op.transfers = std::move(transfers);
  return op;
}

TEST(MemProfiler, SyntheticResidencyPeakAndEvictions) {
  const arch::ArchConfig cfg = arch::ArchConfig::alchemist();
  const double bpc = cfg.hbm_bytes_per_cycle();
  ASSERT_GT(bpc, 0.0);

  sim::MemProfiler mem;
  mem.begin(cfg);
  // Two working sets fetched back to back, both resident until cycle 10:
  // peak residency is their sum, and each is evicted exactly once.
  mem.record_op(synth_op(metaop::OpKind::DecompPolyMult, 1000,
                         {{metaop::OperandClass::Evk, 1, 1000}}),
                10.0);
  mem.record_op(synth_op(metaop::OpKind::Automorphism, 2000,
                         {{metaop::OperandClass::RotationKey, 2, 2000}}),
                10.0);
  obs::MemoryProfile out;
  mem.finish(16, out);

  EXPECT_EQ(out.scratch_peak_bytes, 3000u);  // analytic: both sets resident
  EXPECT_LE(out.scratch_peak_bytes, out.scratch_capacity_bytes);
  EXPECT_EQ(out.evictions, 2u);  // one per working set
  EXPECT_EQ(out.total_bytes, 3000u);
  EXPECT_EQ(out.attributed_total(), 3000u);
  EXPECT_EQ(out.keys.size(), 2u);
  EXPECT_EQ(out.keys.at(1).fetches, 1u);
  EXPECT_EQ(out.keys.at(2).fetches, 1u);
  EXPECT_EQ(out.key_refetch_bytes(), 0u);
  // Residency sampled at epoch starts: set 1 is already streaming at cycle 0,
  // both sets are resident mid-run, and after release (cycle 10) residency is
  // zero for the tail epochs.
  EXPECT_EQ(out.occupancy_bytes.front(), 1000u);
  bool saw_peak = false;
  for (const std::uint64_t occ : out.occupancy_bytes) {
    if (occ == 3000u) saw_peak = true;
  }
  EXPECT_TRUE(saw_peak);
  EXPECT_EQ(out.occupancy_bytes.back(), 0u);
}

TEST(MemProfiler, SyntheticLedgerRefetchAndRemainder) {
  const arch::ArchConfig cfg = arch::ArchConfig::alchemist();
  sim::MemProfiler mem;
  mem.begin(cfg);
  // Same key fetched twice: the second stream is pure re-fetch headroom.
  mem.record_op(synth_op(metaop::OpKind::DecompPolyMult, 1000,
                         {{metaop::OperandClass::Evk, 7, 1000}}),
                4.0);
  mem.record_op(synth_op(metaop::OpKind::DecompPolyMult, 1000,
                         {{metaop::OperandClass::Evk, 7, 1000}}),
                8.0);
  // Descriptor covers only part of the stream: the remainder must land in
  // ct_limb so conservation still holds.
  mem.record_op(synth_op(metaop::OpKind::Ntt, 1000,
                         {{metaop::OperandClass::Twiddle, 0, 400}}),
                10.0);
  // Over-claiming descriptors are clamped to the op's hbm_bytes.
  mem.record_op(synth_op(metaop::OpKind::PointwiseMult, 500,
                         {{metaop::OperandClass::Plaintext, 0, 900}}),
                12.0);
  obs::MemoryProfile out;
  mem.finish(16, out);

  EXPECT_EQ(out.total_bytes, 3500u);
  EXPECT_EQ(out.attributed_total(), 3500u);  // conservation despite clamp
  const auto& key = out.keys.at(7);
  EXPECT_EQ(key.fetches, 2u);
  EXPECT_EQ(key.total_bytes, 2000u);
  EXPECT_EQ(key.refetch_bytes, 1000u);
  EXPECT_EQ(out.attributed.at("twiddle").at("ntt"), 400u);
  EXPECT_EQ(out.attributed.at("ct_limb").at("ntt"), 600u);  // remainder
  EXPECT_EQ(out.attributed.at("plaintext").at("elementwise"), 500u);  // clamped
  EXPECT_EQ(out.evictions, 4u);
}

// A descriptor-free graph (legacy lowering) attributes everything to ct_limb
// rather than losing bytes.
TEST(MemProfiler, DescriptorFreeGraphFallsBackToCtLimb) {
  const arch::ArchConfig cfg = arch::ArchConfig::alchemist();
  sim::MemProfiler mem;
  mem.begin(cfg);
  mem.record_op(synth_op(metaop::OpKind::Bconv, 1234, {}), 5.0);
  obs::MemoryProfile out;
  mem.finish(8, out);
  EXPECT_EQ(out.total_bytes, 1234u);
  EXPECT_EQ(out.attributed.at("ct_limb").at("bconv"), 1234u);
  EXPECT_TRUE(out.keys.empty());
}

// --- Checkpoint/resume ------------------------------------------------------

// A run interrupted at a step boundary and resumed with a fresh profiler must
// produce a memory.v1 section bit-identical to the uninterrupted run, on both
// engines (level: serialized accumulators, schema v2; event: deterministic
// reconstruction from per-op state).
void check_resumed_profile_identical(bool event) {
  const metaop::OpGraph g =
      workloads::build_keyswitch(workloads::CkksWl::paper(16));
  const arch::ArchConfig cfg = arch::ArchConfig::alchemist();
  sim::MemProfiler ref_mem;
  const sim::SimResult ref = run_engine(event, g, cfg, &ref_mem);
  ASSERT_TRUE(ref.mem_profile.enabled());

  for (std::uint64_t budget = 1;; ++budget) {
    sim::Checkpoint cp;
    sim::SimControl ctl;
    ctl.max_steps = budget;
    ctl.checkpoint = &cp;
    sim::MemProfiler mem;
    try {
      const sim::SimResult full = run_engine(event, g, cfg, &mem, &ctl);
      expect_same_profile(full.mem_profile, ref.mem_profile);
      return;  // budget outlived the run: every prefix was tested
    } catch (const sim::CancelledError&) {
      ASSERT_TRUE(cp.valid());
    }
    sim::SimControl resume;
    resume.checkpoint = &cp;
    sim::MemProfiler resumed_mem;
    const sim::SimResult resumed = run_engine(event, g, cfg, &resumed_mem, &resume);
    EXPECT_EQ(resumed.cycles, ref.cycles);
    EXPECT_EQ(resumed.registry.counters(), ref.registry.counters());
    expect_same_profile(resumed.mem_profile, ref.mem_profile);
  }
}

TEST(MemProfiler, LevelEngineResumeKeepsProfileBitIdentical) {
  check_resumed_profile_identical(false);
}
TEST(MemProfiler, EventEngineResumeKeepsProfileBitIdentical) {
  check_resumed_profile_identical(true);
}

// Resuming WITHOUT a profiler from a checkpoint taken WITH one must still
// work (the v2 frame is parsed and discarded), and resuming WITH a profiler
// from a profiler-less checkpoint disables profiling rather than reporting a
// half-run profile.
TEST(MemProfiler, CheckpointPresenceMismatchDegradesSafely) {
  const metaop::OpGraph g =
      workloads::build_keyswitch(workloads::CkksWl::paper(16));
  const arch::ArchConfig cfg = arch::ArchConfig::alchemist();
  const sim::SimResult ref = run_engine(false, g, cfg);

  // Profiled first leg -> unprofiled resume.
  {
    sim::Checkpoint cp;
    sim::SimControl ctl;
    ctl.max_steps = 1;
    ctl.checkpoint = &cp;
    sim::MemProfiler mem;
    ASSERT_THROW(run_engine(false, g, cfg, &mem, &ctl), sim::CancelledError);
    sim::SimControl resume;
    resume.checkpoint = &cp;
    const sim::SimResult r = run_engine(false, g, cfg, nullptr, &resume);
    EXPECT_EQ(r.cycles, ref.cycles);
    EXPECT_FALSE(r.mem_profile.enabled());
  }
  // Unprofiled first leg -> profiled resume: a half-run profile would lie.
  {
    sim::Checkpoint cp;
    sim::SimControl ctl;
    ctl.max_steps = 1;
    ctl.checkpoint = &cp;
    ASSERT_THROW(run_engine(false, g, cfg, nullptr, &ctl), sim::CancelledError);
    sim::SimControl resume;
    resume.checkpoint = &cp;
    sim::MemProfiler mem;
    const sim::SimResult r = run_engine(false, g, cfg, &mem, &resume);
    EXPECT_EQ(r.cycles, ref.cycles);
    EXPECT_FALSE(r.mem_profile.enabled());
  }
}

// MetricsReport carries the profile as the "memory" section.
TEST(MemProfiler, MetricsReportEmitsMemorySection) {
  const metaop::OpGraph g =
      workloads::build_keyswitch(workloads::CkksWl::paper(16));
  sim::MemProfiler mem;
  const sim::SimResult r =
      run_engine(false, g, arch::ArchConfig::alchemist(), &mem);
  obs::MetricsReport report("test_mem_profiler");
  report.add(r);
  const std::string json = report.json();
  EXPECT_NE(json.find("\"memory\""), std::string::npos);
  EXPECT_NE(json.find("\"memory.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"attributed\""), std::string::npos);
  EXPECT_NE(json.find("\"key_refetch_bytes\""), std::string::npos);

  // Unprofiled reports keep their pre-existing shape.
  obs::MetricsReport plain("test_mem_profiler");
  plain.add(run_engine(false, g, arch::ArchConfig::alchemist()));
  EXPECT_EQ(plain.json().find("\"memory\""), std::string::npos);
}

}  // namespace
}  // namespace alchemist
