// Structured fuzzing of the TCP job-protocol framing layer, in the style of
// test_serdes_fuzz.cpp: every frame type is round-tripped once, then the
// encoded byte streams are attacked for thousands of seeded iterations with
// truncation, bit flips, splices, hostile length prefixes, version-mismatch
// handshakes and interleaved garbage. The contract under attack: FrameParser
// either produces a verified frame or fails with a typed, sticky FrameError —
// it never crashes, never allocates what a hostile length prefix claims, and
// never hands back a silently-corrupt payload. The protocol decoders below it
// must map every mutated payload to std::runtime_error, never UB.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "net/frame.h"
#include "net/protocol.h"

namespace alchemist {
namespace {

using net::Frame;
using net::FrameError;
using net::FrameParser;
using net::FrameType;

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

// Feed a whole buffer and pull one frame.
FrameError parse_one(std::span<const std::uint8_t> wire, Frame& out,
                     std::size_t max_payload = net::kDefaultMaxPayload) {
  FrameParser p(max_payload);
  p.feed(wire);
  return p.next(out);
}

// ------------------------------------------------------------ round trips --

TEST(NetFrame, RoundTripsEveryFrameType) {
  const FrameType kTypes[] = {
      FrameType::Hello,  FrameType::HelloAck, FrameType::Submit,
      FrameType::Status, FrameType::Result,   FrameType::Error,
      FrameType::Drain,  FrameType::Ping,     FrameType::Pong,
      FrameType::Bye,
  };
  for (FrameType t : kTypes) {
    const auto payload = bytes_of("payload for " + std::string(to_string(t)));
    const auto wire = net::encode_frame(t, payload);
    ASSERT_EQ(wire.size(),
              net::kFrameHeaderSize + payload.size() + net::kFrameFooterSize);
    Frame f;
    ASSERT_EQ(parse_one(wire, f), FrameError::None) << to_string(t);
    EXPECT_EQ(f.type, t);
    EXPECT_EQ(f.payload, payload);
  }
}

TEST(NetFrame, RoundTripsEmptyPayload) {
  const auto wire = net::encode_frame(FrameType::Ping, {});
  Frame f;
  ASSERT_EQ(parse_one(wire, f), FrameError::None);
  EXPECT_EQ(f.type, FrameType::Ping);
  EXPECT_TRUE(f.payload.empty());
}

TEST(NetFrame, ParsesBackToBackFramesFromOneFeed) {
  std::vector<std::uint8_t> wire;
  for (int i = 0; i < 5; ++i) {
    const auto one =
        net::encode_frame(FrameType::Status, bytes_of("s" + std::to_string(i)));
    wire.insert(wire.end(), one.begin(), one.end());
  }
  FrameParser p;
  p.feed(wire);
  Frame f;
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(p.next(f), FrameError::None) << i;
    EXPECT_EQ(f.payload, bytes_of("s" + std::to_string(i)));
  }
  EXPECT_EQ(p.next(f), FrameError::NeedMore);
  EXPECT_EQ(p.buffered(), 0u);
}

TEST(NetFrame, ByteAtATimeFeedingYieldsTheSameFrame) {
  const auto payload = bytes_of("drip-fed payload");
  const auto wire = net::encode_frame(FrameType::Submit, payload);
  FrameParser p;
  Frame f;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    p.feed(std::span<const std::uint8_t>(&wire[i], 1));
    ASSERT_EQ(p.next(f), FrameError::NeedMore) << "byte " << i;
  }
  p.feed(std::span<const std::uint8_t>(&wire[wire.size() - 1], 1));
  ASSERT_EQ(p.next(f), FrameError::None);
  EXPECT_EQ(f.type, FrameType::Submit);
  EXPECT_EQ(f.payload, payload);
}

// -------------------------------------------------------- hostile headers --

TEST(NetFrame, TruncationAtEveryByteNeverYieldsAFrame) {
  const auto wire = net::encode_frame(FrameType::Result, bytes_of("truncate"));
  for (std::size_t keep = 0; keep < wire.size(); ++keep) {
    Frame f;
    const auto err = parse_one({wire.data(), keep}, f);
    // A prefix is either still incomplete or (once the header is whole and
    // the checksum range short) NeedMore — never a verified frame.
    EXPECT_EQ(err, FrameError::NeedMore) << "keep=" << keep;
  }
}

TEST(NetFrame, BadMagicIsTypedAndSticky) {
  auto wire = net::encode_frame(FrameType::Ping, {});
  wire[0] = 'X';
  FrameParser p;
  p.feed(wire);
  Frame f;
  EXPECT_EQ(p.next(f), FrameError::BadMagic);
  EXPECT_TRUE(p.failed());
  // Sticky: even after feeding a pristine frame the stream stays poisoned.
  const auto good = net::encode_frame(FrameType::Ping, {});
  p.feed(good);
  EXPECT_EQ(p.next(f), FrameError::BadMagic);
}

TEST(NetFrame, VersionMismatchIsDistinguished) {
  const auto wire =
      net::encode_frame(FrameType::Hello, bytes_of("v2 hello"),
                        static_cast<std::uint8_t>(net::kProtocolVersion + 1));
  Frame f;
  EXPECT_EQ(parse_one(wire, f), FrameError::BadVersion);
}

TEST(NetFrame, UnknownFrameTypeRejected) {
  auto wire = net::encode_frame(FrameType::Ping, {});
  for (std::uint8_t t : {std::uint8_t{0}, std::uint8_t{11}, std::uint8_t{0xff}}) {
    auto mutated = wire;
    mutated[5] = t;
    Frame f;
    EXPECT_EQ(parse_one(mutated, f), FrameError::BadType) << unsigned(t);
  }
}

TEST(NetFrame, NonzeroReservedRejected) {
  auto wire = net::encode_frame(FrameType::Ping, {});
  wire[6] = 1;
  Frame f;
  EXPECT_EQ(parse_one(wire, f), FrameError::BadReserved);
}

TEST(NetFrame, OversizeLengthPrefixRejectedBeforeBuffering) {
  // A 12-byte header claiming a 2 GiB payload must be refused from the header
  // alone: typed Oversize, no allocation, no waiting for 2 GiB to arrive.
  std::vector<std::uint8_t> header = {'A', 'L', 'C', 'H',
                                      net::kProtocolVersion,
                                      static_cast<std::uint8_t>(FrameType::Submit),
                                      0, 0,
                                      0x00, 0x00, 0x00, 0x80};  // 1u << 31
  FrameParser p;
  p.feed(header);
  Frame f;
  EXPECT_EQ(p.next(f), FrameError::Oversize);
  EXPECT_TRUE(p.failed());
  EXPECT_EQ(p.buffered(), net::kFrameHeaderSize);  // nothing beyond the header
}

TEST(NetFrame, PayloadJustOverTheConfiguredCapRejected) {
  const std::size_t cap = 64;
  const auto at_cap = net::encode_frame(
      FrameType::Submit, std::vector<std::uint8_t>(cap, 0xab));
  const auto over_cap = net::encode_frame(
      FrameType::Submit, std::vector<std::uint8_t>(cap + 1, 0xab));
  Frame f;
  EXPECT_EQ(parse_one(at_cap, f, cap), FrameError::None);
  EXPECT_EQ(parse_one(over_cap, f, cap), FrameError::Oversize);
}

TEST(NetFrame, EveryLengthFieldValueEitherParsesOrFailsTyped) {
  // Sweep the declared length over the whole u32 range by bytes: whatever the
  // prefix claims, the parser must answer NeedMore / Oversize / BadChecksum —
  // never a crash or a bogus frame.
  const auto wire = net::encode_frame(FrameType::Status, bytes_of("abcdef"));
  Rng rng(2024);
  for (int iter = 0; iter < 4096; ++iter) {
    auto mutated = wire;
    for (int b = 8; b < 12; ++b) {
      mutated[static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(rng.uniform(256));
    }
    Frame f;
    const auto err = parse_one(mutated, f, 1u << 16);
    EXPECT_TRUE(err == FrameError::NeedMore || err == FrameError::Oversize ||
                err == FrameError::BadChecksum || err == FrameError::None)
        << to_string(err);
    // The only way a random length still parses is the original one.
    if (err == FrameError::None) {
      EXPECT_EQ(f.payload, bytes_of("abcdef"));
    }
  }
}

// ----------------------------------------------------- corruption attacks --

TEST(NetFrame, AnySingleBitFlipIsDetected) {
  const auto payload = bytes_of("checksummed payload bytes");
  const auto wire = net::encode_frame(FrameType::Result, payload);
  for (std::size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto mutated = wire;
      mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
      Frame f;
      const auto err = parse_one(mutated, f);
      EXPECT_NE(err, FrameError::None) << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(NetFrame, FuzzRandomMutationsNeverCrash) {
  // The classic three mutations from test_serdes_fuzz, plus garbage prefixes,
  // against a seeded corpus of frames. Success criteria: no crash, no hang,
  // and None only when the bytes happen to be the unmutated original.
  Rng rng(77);
  const auto base = net::encode_frame(
      FrameType::Submit, bytes_of("fuzz me: idempotency-key-000, keyswitch"));
  for (int iter = 0; iter < 20000; ++iter) {
    auto mutated = base;
    switch (rng.uniform(4)) {
      case 0:  // truncate
        mutated.resize(rng.uniform(static_cast<u64>(mutated.size()) + 1));
        break;
      case 1: {  // flip 1..4 random bytes
        const int flips = 1 + static_cast<int>(rng.uniform(4));
        for (int i = 0; i < flips && !mutated.empty(); ++i) {
          mutated[rng.uniform(static_cast<u64>(mutated.size()))] ^=
              static_cast<std::uint8_t>(1 + rng.uniform(255));
        }
        break;
      }
      case 2: {  // splice: overwrite a run with random bytes
        if (!mutated.empty()) {
          const std::size_t at = rng.uniform(static_cast<u64>(mutated.size()));
          const std::size_t run =
              1 + rng.uniform(static_cast<u64>(mutated.size() - at));
          for (std::size_t i = 0; i < run; ++i) {
            mutated[at + i] = static_cast<std::uint8_t>(rng.uniform(256));
          }
        }
        break;
      }
      case 3: {  // interleave garbage before the frame
        std::vector<std::uint8_t> garbage(1 + rng.uniform(16));
        for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.uniform(256));
        mutated.insert(mutated.begin(), garbage.begin(), garbage.end());
        break;
      }
    }
    FrameParser p;
    p.feed(mutated);
    Frame f;
    const auto err = p.next(f);
    if (err == FrameError::None) {
      EXPECT_EQ(f.payload, bytes_of("fuzz me: idempotency-key-000, keyswitch"));
    }
  }
}

TEST(NetFrame, GarbageAfterAValidFramePoisonsOnlySubsequentParses) {
  auto wire = net::encode_frame(FrameType::Ping, {});
  const auto garbage = bytes_of("not a frame header at all!");
  wire.insert(wire.end(), garbage.begin(), garbage.end());
  FrameParser p;
  p.feed(wire);
  Frame f;
  EXPECT_EQ(p.next(f), FrameError::None);  // the good frame still delivers
  EXPECT_EQ(f.type, FrameType::Ping);
  EXPECT_EQ(p.next(f), FrameError::BadMagic);  // then the stream is dead
  EXPECT_TRUE(p.failed());
}

// ------------------------------------------------- protocol payload fuzz --

TEST(NetProtocol, SubmitRoundTrip) {
  net::SubmitPayload s;
  s.client_job_id = "soak-042";
  s.tenant = "tenant-a";
  s.workload = "keyswitch";
  s.engine = net::kEngineEvent;
  s.degradable = true;
  s.fault_seed = 0xdeadbeef;
  s.fault_rate = 0.25;
  s.deadline_us = 1000000;
  s.max_steps = 5000;
  s.max_attempts = 3;
  s.checkpoint_interval = 128;
  const auto bytes = net::encode(s);
  const auto back = net::decode_submit(bytes);
  EXPECT_EQ(back.client_job_id, s.client_job_id);
  EXPECT_EQ(back.tenant, s.tenant);
  EXPECT_EQ(back.workload, s.workload);
  EXPECT_EQ(back.engine, s.engine);
  EXPECT_EQ(back.degradable, s.degradable);
  EXPECT_EQ(back.fault_seed, s.fault_seed);
  EXPECT_DOUBLE_EQ(back.fault_rate, s.fault_rate);
  EXPECT_EQ(back.deadline_us, s.deadline_us);
  EXPECT_EQ(back.max_steps, s.max_steps);
  EXPECT_EQ(back.max_attempts, s.max_attempts);
  EXPECT_EQ(back.checkpoint_interval, s.checkpoint_interval);
}

TEST(NetProtocol, SubmitRejectsEmptyAndOversizeIdempotencyKeys) {
  net::SubmitPayload s;
  s.client_job_id = "";
  s.workload = "keyswitch";
  EXPECT_THROW(net::decode_submit(net::encode(s)), std::runtime_error);
  s.client_job_id = std::string(10000, 'k');
  EXPECT_THROW(net::decode_submit(net::encode(s)), std::runtime_error);
}

TEST(NetProtocol, DecodersRejectCrossTypePayloads) {
  // Feeding one message type's bytes to another type's decoder must be a
  // typed failure (the tag check), not a misparse.
  net::HelloPayload hello;
  hello.client = "tester";
  const auto bytes = net::encode(hello);
  EXPECT_NO_THROW(net::decode_hello(bytes));
  EXPECT_THROW(net::decode_submit(bytes), std::runtime_error);
  EXPECT_THROW(net::decode_result(bytes), std::runtime_error);
  EXPECT_THROW(net::decode_status(bytes), std::runtime_error);
  EXPECT_THROW(net::decode_error(bytes), std::runtime_error);
}

TEST(NetProtocol, DecodersSurviveMutationStorm) {
  // Same contract as the serdes fuzz suite: decoded-or-threw, nothing else.
  struct Target {
    const char* name;
    std::vector<std::uint8_t> bytes;
    void (*parse)(std::span<const std::uint8_t>);
  };
  net::SubmitPayload sub;
  sub.client_job_id = "fuzz-1";
  sub.workload = "pmult";
  net::ResultPayload res;
  res.client_job_id = "fuzz-1";
  res.state = 2;
  res.has_result = true;
  res.workload = "pmult";
  res.accelerator = "alchemist";
  res.registry.add("sim.cycles", 129762);
  res.sim_time_us = 108.1;
  net::StatusPayload status;
  status.client_job_id = "fuzz-1";
  status.state = 1;
  net::ErrorPayload err;
  err.code = 7;
  err.message = "busy";
  const Target targets[] = {
      {"hello", net::encode(net::HelloPayload{}),
       [](std::span<const std::uint8_t> b) { net::decode_hello(b); }},
      {"hello_ack", net::encode(net::HelloAckPayload{}),
       [](std::span<const std::uint8_t> b) { net::decode_hello_ack(b); }},
      {"submit", net::encode(sub),
       [](std::span<const std::uint8_t> b) { net::decode_submit(b); }},
      {"status", net::encode(status),
       [](std::span<const std::uint8_t> b) { net::decode_status(b); }},
      {"result", net::encode(res),
       [](std::span<const std::uint8_t> b) { net::decode_result(b); }},
      {"error", net::encode(err),
       [](std::span<const std::uint8_t> b) { net::decode_error(b); }},
      {"drain", net::encode(net::DrainPayload{"bye"}),
       [](std::span<const std::uint8_t> b) { net::decode_drain(b); }},
  };
  Rng rng(4242);
  for (const auto& t : targets) {
    // Truncation at every length.
    for (std::size_t keep = 0; keep < t.bytes.size(); ++keep) {
      try {
        t.parse({t.bytes.data(), keep});
      } catch (const std::exception&) {
      }
    }
    // Random byte flips.
    for (int iter = 0; iter < 2000; ++iter) {
      auto mutated = t.bytes;
      const int flips = 1 + static_cast<int>(rng.uniform(3));
      for (int i = 0; i < flips; ++i) {
        mutated[rng.uniform(static_cast<u64>(mutated.size()))] ^=
            static_cast<std::uint8_t>(1 + rng.uniform(255));
      }
      try {
        t.parse(mutated);
      } catch (const std::exception&) {
      }
    }
    // Trailing garbage must be rejected, not ignored.
    auto padded = t.bytes;
    padded.push_back(0x5a);
    EXPECT_THROW(t.parse(padded), std::runtime_error) << t.name;
  }
}

TEST(NetProtocol, ResultRegistryRoundTripsBitIdentically) {
  net::ResultPayload res;
  res.client_job_id = "bits";
  res.state = 2;
  res.has_result = true;
  res.workload = "keyswitch";
  res.accelerator = "alchemist";
  res.registry.add("sim.cycles", 129762);
  res.registry.add("sim.mults", 42, {{"lazy", "true"}});
  res.registry.set_gauge("sim.time_us", 108.135);
  res.sim_time_us = 108.135;
  const auto back = net::decode_result(net::encode(res));
  ASSERT_TRUE(back.has_result);
  EXPECT_EQ(back.registry.counters(), res.registry.counters());
  EXPECT_DOUBLE_EQ(back.sim_time_us, res.sim_time_us);
}

TEST(NetProtocol, ErrorCodeTaxonomy) {
  using net::ErrorCode;
  // Transport-class codes invite a retry; request-class codes do not.
  EXPECT_TRUE(net::is_retryable(ErrorCode::Busy));
  EXPECT_TRUE(net::is_retryable(ErrorCode::Draining));
  EXPECT_TRUE(net::is_retryable(ErrorCode::ReadTimeout));
  EXPECT_TRUE(net::is_retryable(ErrorCode::IdleTimeout));
  EXPECT_FALSE(net::is_retryable(ErrorCode::BadRequest));
  EXPECT_FALSE(net::is_retryable(ErrorCode::UnknownWorkload));
  EXPECT_FALSE(net::is_retryable(ErrorCode::VersionMismatch));
  EXPECT_FALSE(net::is_retryable(ErrorCode::ProtocolViolation));
  // Every code prints something other than the unknown marker.
  for (std::uint16_t c = 1; c <= 11; ++c) {
    EXPECT_STRNE(net::to_string(static_cast<ErrorCode>(c)), "?");
  }
}

}  // namespace
}  // namespace alchemist
