#include <gtest/gtest.h>

#include <memory>

#include "arch/energy_model.h"
#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keygen.h"
#include "ckks/noise.h"
#include "common/rng.h"
#include "sim/alchemist_sim.h"
#include "workloads/ckks_workloads.h"

namespace alchemist {
namespace {

using namespace alchemist::ckks;
using Complex = std::complex<double>;

struct NoiseFixture {
  ContextPtr ctx;
  std::unique_ptr<CkksEncoder> encoder;
  std::unique_ptr<KeyGenerator> keygen;
  std::unique_ptr<Encryptor> encryptor;
  std::unique_ptr<Decryptor> decryptor;
  std::unique_ptr<Evaluator> evaluator;
  std::unique_ptr<NoiseOracle> oracle;
  RelinKeys rk;

  NoiseFixture() {
    ctx = std::make_shared<CkksContext>(CkksParams::toy(1024, 4, 2));
    encoder = std::make_unique<CkksEncoder>(ctx);
    keygen = std::make_unique<KeyGenerator>(ctx, 8);
    encryptor = std::make_unique<Encryptor>(ctx, keygen->make_public_key());
    decryptor = std::make_unique<Decryptor>(ctx, keygen->secret_key());
    evaluator = std::make_unique<Evaluator>(ctx);
    oracle = std::make_unique<NoiseOracle>(ctx, *encoder, *decryptor);
    rk = keygen->make_relin_keys();
  }
};

NoiseFixture& fx() {
  static NoiseFixture f;
  return f;
}

TEST(NoiseOracle, FreshCiphertextHasHighPrecision) {
  NoiseFixture& f = fx();
  std::vector<Complex> z = {{0.5, 0.0}, {-0.25, 0.75}};
  const Ciphertext ct = f.encryptor->encrypt(f.encoder->encode(
      std::span<const Complex>(z), 4, f.ctx->params().scale()));
  EXPECT_LT(f.oracle->error_bits(ct, z), -15.0);       // error below 2^-15
  EXPECT_GT(f.oracle->precision_bits(ct, z), 14.0);
}

TEST(NoiseOracle, MultiplicationConsumesPrecision) {
  NoiseFixture& f = fx();
  std::vector<Complex> z = {{0.9, 0.0}, {-0.8, 0.0}};
  Ciphertext ct = f.encryptor->encrypt(f.encoder->encode(
      std::span<const Complex>(z), 4, f.ctx->params().scale()));
  const double fresh = f.oracle->precision_bits(ct, z);
  std::vector<Complex> sq = z;
  for (auto& v : sq) v *= v;
  ct = f.evaluator->rescale(f.evaluator->multiply(ct, ct, f.rk));
  const double after = f.oracle->precision_bits(ct, sq);
  EXPECT_LT(after, fresh);  // precision strictly decreases
  EXPECT_GT(after, 5.0);    // but the result is still usable
}

TEST(CiphertextInvariants, FreshCiphertextPasses) {
  NoiseFixture& f = fx();
  std::vector<Complex> z = {{1.0, 0.0}};
  const Ciphertext ct = f.encryptor->encrypt(f.encoder->encode(
      std::span<const Complex>(z), 4, f.ctx->params().scale()));
  EXPECT_NO_THROW(check_ciphertext_invariants(*f.ctx, ct));
  // After evaluator pipelines too.
  const Ciphertext sq = f.evaluator->rescale(f.evaluator->multiply(ct, ct, f.rk));
  EXPECT_NO_THROW(check_ciphertext_invariants(*f.ctx, sq));
}

TEST(CiphertextInvariants, DetectsCorruption) {
  NoiseFixture& f = fx();
  std::vector<Complex> z = {{1.0, 0.0}};
  Ciphertext ct = f.encryptor->encrypt(f.encoder->encode(
      std::span<const Complex>(z), 4, f.ctx->params().scale()));

  Ciphertext bad_level = ct;
  bad_level.level = 0;
  EXPECT_THROW(check_ciphertext_invariants(*f.ctx, bad_level), std::logic_error);

  Ciphertext bad_scale = ct;
  bad_scale.scale = -1.0;
  EXPECT_THROW(check_ciphertext_invariants(*f.ctx, bad_scale), std::logic_error);

  Ciphertext bad_form = ct;
  bad_form.c0.to_coeff();
  EXPECT_THROW(check_ciphertext_invariants(*f.ctx, bad_form), std::logic_error);

  Ciphertext bad_residue = ct;
  bad_residue.c0.channel(0)[0] = ~u64{0};
  EXPECT_THROW(check_ciphertext_invariants(*f.ctx, bad_residue), std::logic_error);

  Ciphertext bad_basis = ct;
  bad_basis.level = 3;  // basis still has 4 channels
  EXPECT_THROW(check_ciphertext_invariants(*f.ctx, bad_basis), std::logic_error);
}

TEST(CorruptedCiphertext, DecryptsToGarbageNotCrash) {
  // Failure injection: flipping residues must not crash anything; it only
  // destroys the plaintext.
  NoiseFixture& f = fx();
  std::vector<Complex> z = {{0.5, 0.0}};
  Ciphertext ct = f.encryptor->encrypt(f.encoder->encode(
      std::span<const Complex>(z), 4, f.ctx->params().scale()));
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const std::size_t c = rng.uniform(ct.c0.num_channels());
    const std::size_t k = rng.uniform(f.ctx->degree());
    ct.c0.channel(c)[k] = rng.uniform(f.ctx->q_moduli()[c]);
  }
  const auto dec = f.decryptor->decrypt(ct, *f.encoder);
  EXPECT_GT(std::abs(dec[0] - z[0]), 0.1);  // message destroyed, no crash
}

TEST(EnergyModel, ReferenceWorkloadNearPublishedPower) {
  workloads::CkksWl w = workloads::CkksWl::paper(44);
  w.hbm_stream_fraction = 0.05;
  const auto cfg = arch::ArchConfig::alchemist();
  const auto r = sim::simulate_alchemist(workloads::build_bootstrapping(w, true), cfg);
  const auto e = arch::energy_model(cfg, r);
  EXPECT_GT(e.total_joules, 0);
  EXPECT_NEAR(e.average_watts, 77.9, 25.0);  // the calibration point
  EXPECT_GT(e.dynamic_joules, e.hbm_joules);
}

TEST(EnergyModel, IdleWorkloadBurnsMostlyStatic) {
  // A memory-bound workload at low utilization leans on static + HBM energy.
  metaop::OpGraph g;
  metaop::HighOp op;
  op.kind = metaop::OpKind::DecompPolyMult;
  op.n = 4096;
  op.channels = 2;
  op.param_a = 4;
  op.hbm_bytes = 500'000'000;
  g.add(op);
  const auto cfg = arch::ArchConfig::alchemist();
  const auto r = sim::simulate_alchemist(g, cfg);
  const auto e = arch::energy_model(cfg, r);
  EXPECT_LT(e.dynamic_joules, e.static_joules + e.hbm_joules);
  EXPECT_LT(e.average_watts, 77.9);
}

TEST(EnergyModel, ZeroTimeIsZeroEnergy) {
  sim::SimResult empty;
  const auto e = arch::energy_model(arch::ArchConfig::alchemist(), empty);
  EXPECT_EQ(e.total_joules, 0);
}

}  // namespace
}  // namespace alchemist
