#include "poly/rns.h"

#include <gtest/gtest.h>

#include "common/biguint.h"
#include "common/primes.h"
#include "common/rng.h"
#include "poly/polynomial.h"

namespace alchemist {
namespace {

RnsPoly random_rns(std::size_t n, const std::vector<u64>& moduli, u64 seed) {
  RnsPoly p(n, moduli);
  Rng rng(seed);
  for (std::size_t c = 0; c < moduli.size(); ++c) {
    auto ch = p.channel(c);
    for (std::size_t i = 0; i < n; ++i) ch[i] = rng.uniform(moduli[c]);
  }
  return p;
}

// Residues of a common value x (< all moduli products) in every channel.
RnsPoly constant_rns(std::size_t n, const std::vector<u64>& moduli,
                     const std::vector<BigUInt>& values) {
  RnsPoly p(n, moduli);
  for (std::size_t c = 0; c < moduli.size(); ++c) {
    auto ch = p.channel(c);
    for (std::size_t i = 0; i < n; ++i) ch[i] = values[i].mod_u64(moduli[c]);
  }
  return p;
}

TEST(RnsPoly, ConstructionAndAccessors) {
  const auto moduli = generate_ntt_primes(30, 64, 3);
  RnsPoly p(64, moduli);
  EXPECT_EQ(p.degree(), 64u);
  EXPECT_EQ(p.num_channels(), 3u);
  EXPECT_FALSE(p.is_ntt());
  EXPECT_EQ(p.moduli(), moduli);
  EXPECT_THROW(RnsPoly(63, moduli), std::invalid_argument);
  EXPECT_THROW(RnsPoly(64, std::vector<u64>{}), std::invalid_argument);
}

TEST(RnsPoly, NttRoundTrip) {
  const auto moduli = generate_ntt_primes(36, 256, 4);
  RnsPoly p = random_rns(256, moduli, 1);
  const RnsPoly original = p;
  p.to_ntt();
  EXPECT_TRUE(p.is_ntt());
  EXPECT_NE(p, original);
  p.to_coeff();
  EXPECT_EQ(p, original);
}

TEST(RnsPoly, AddSubNegateElementwise) {
  const auto moduli = generate_ntt_primes(30, 32, 2);
  RnsPoly a = random_rns(32, moduli, 2);
  RnsPoly b = random_rns(32, moduli, 3);
  RnsPoly sum = a + b;
  RnsPoly back = sum - b;
  EXPECT_EQ(back, a);
  RnsPoly neg = a;
  neg.negate();
  RnsPoly zero = a + neg;
  for (std::size_t c = 0; c < zero.num_channels(); ++c) {
    for (u64 x : zero.channel(c)) EXPECT_EQ(x, 0u);
  }
}

TEST(RnsPoly, NttMulMatchesPerChannelSchoolbook) {
  const std::size_t n = 64;
  const auto moduli = generate_ntt_primes(40, n, 3);
  RnsPoly a = random_rns(n, moduli, 4);
  RnsPoly b = random_rns(n, moduli, 5);

  // Per-channel reference products.
  std::vector<Polynomial> expected;
  for (std::size_t c = 0; c < moduli.size(); ++c) {
    Polynomial pa(std::vector<u64>(a.channel(c).begin(), a.channel(c).end()), moduli[c]);
    Polynomial pb(std::vector<u64>(b.channel(c).begin(), b.channel(c).end()), moduli[c]);
    expected.push_back(pa.mul_schoolbook(pb));
  }

  a.to_ntt();
  b.to_ntt();
  RnsPoly prod = a * b;
  prod.to_coeff();
  for (std::size_t c = 0; c < moduli.size(); ++c) {
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(prod.channel(c)[i], expected[c][i]) << "channel " << c;
    }
  }
}

TEST(RnsPoly, MulRequiresNttForm) {
  const auto moduli = generate_ntt_primes(30, 16, 2);
  RnsPoly a = random_rns(16, moduli, 6);
  RnsPoly b = random_rns(16, moduli, 7);
  EXPECT_THROW(a *= b, std::invalid_argument);
}

TEST(RnsPoly, ScalarMulPerChannelAndUniform) {
  const auto moduli = generate_ntt_primes(30, 16, 2);
  RnsPoly a = random_rns(16, moduli, 8);
  RnsPoly b = a;
  std::vector<u64> scalars = {5, 5};
  a.mul_scalar(std::span<const u64>(scalars));
  b.mul_scalar(u64{5});
  EXPECT_EQ(a, b);
}

TEST(RnsPoly, ChannelSurgeryPreservesData) {
  const auto moduli = generate_ntt_primes(30, 16, 4);
  RnsPoly a = random_rns(16, moduli, 9);
  RnsPoly head = a.extract_channels(0, 2);
  RnsPoly tail = a.extract_channels(2, 2);
  head.append_channels(tail);
  EXPECT_EQ(head, a);
  RnsPoly dropped = a;
  dropped.drop_channels_to(2);
  EXPECT_EQ(dropped, a.extract_channels(0, 2));
  EXPECT_THROW(a.extract_channels(3, 2), std::invalid_argument);
  EXPECT_THROW(dropped.drop_channels_to(0), std::invalid_argument);
}

TEST(RnsPoly, AutomorphismMatchesSingleChannel) {
  const std::size_t n = 32;
  const auto moduli = generate_ntt_primes(30, n, 2);
  RnsPoly a = random_rns(n, moduli, 10);
  const u64 g = 5;
  RnsPoly rotated = a.automorphism(g);
  for (std::size_t c = 0; c < moduli.size(); ++c) {
    Polynomial pc(std::vector<u64>(a.channel(c).begin(), a.channel(c).end()), moduli[c]);
    Polynomial expected = pc.automorphism(g);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(rotated.channel(c)[i], expected[i]);
  }
}

TEST(RnsPoly, AutomorphismNttFormConsistent) {
  const std::size_t n = 32;
  const auto moduli = generate_ntt_primes(30, n, 2);
  RnsPoly a = random_rns(n, moduli, 11);
  RnsPoly coeff_route = a.automorphism(3);
  RnsPoly ntt_input = a;
  ntt_input.to_ntt();
  RnsPoly ntt_route = ntt_input.automorphism(3);
  ntt_route.to_coeff();
  EXPECT_EQ(ntt_route, coeff_route);
}

TEST(BConvTest, MatchesExactFormula) {
  // The fast base conversion must compute Eq. (1) *exactly as written*:
  //   out_j = (sum_i [x_i q̂_i^{-1}]_{q_i} q̂_i) mod p_j  (no rounding).
  const std::size_t n = 8;
  const auto source = generate_ntt_primes(30, n, 3);
  const auto target = generate_ntt_primes(31, n, 2);
  const RnsPoly x = random_rns(n, source, 12);
  BConv conv(source, target);
  const RnsPoly out = conv.apply(x);

  const BigUInt big_q = BigUInt::product(source);
  for (std::size_t k = 0; k < n; ++k) {
    BigUInt acc(0);
    for (std::size_t i = 0; i < source.size(); ++i) {
      const BigUInt qhat = big_q.div_u64(source[i], true);
      const u64 qhat_inv = inv_mod(qhat.mod_u64(source[i]), source[i]);
      const u64 v = mul_mod(x.channel(i)[k], qhat_inv, source[i]);
      BigUInt term = qhat;
      term.mul_u64(v);
      acc += term;
    }
    for (std::size_t j = 0; j < target.size(); ++j) {
      EXPECT_EQ(out.channel(j)[k], acc.mod_u64(target[j])) << "k=" << k;
    }
  }
}

TEST(BConvTest, OutputIsValuePlusSmallMultipleOfQ) {
  // Fast conversion's only error is an additive alpha*Q with alpha < L.
  const std::size_t n = 4;
  const auto source = generate_ntt_primes(28, n, 4);
  const auto target = generate_ntt_primes(29, n, 1);
  const BigUInt big_q = BigUInt::product(source);

  Rng rng(13);
  std::vector<BigUInt> values;
  for (std::size_t i = 0; i < n; ++i) {
    // Random x < Q via CRT of random residues.
    std::vector<u64> residues;
    for (u64 q : source) residues.push_back(rng.uniform(q));
    values.push_back(crt_compose(residues, source));
  }
  const RnsPoly x = constant_rns(n, source, values);
  BConv conv(source, target);
  const RnsPoly out = conv.apply(x);

  const u64 p = target[0];
  for (std::size_t k = 0; k < n; ++k) {
    bool matched = false;
    for (std::size_t alpha = 0; alpha < source.size() && !matched; ++alpha) {
      BigUInt shifted = values[k];
      for (std::size_t a = 0; a < alpha; ++a) shifted += big_q;
      matched = out.channel(0)[k] == shifted.mod_u64(p);
    }
    EXPECT_TRUE(matched) << "k=" << k;
  }
}

TEST(BConvTest, RejectsBadInput) {
  const auto source = generate_ntt_primes(28, 8, 2);
  const auto target = generate_ntt_primes(29, 8, 1);
  BConv conv(source, target);
  RnsPoly wrong_basis = random_rns(8, target, 14);
  EXPECT_THROW(conv.apply(wrong_basis), std::invalid_argument);
  RnsPoly ntt_form = random_rns(8, source, 15);
  ntt_form.to_ntt();
  EXPECT_THROW(conv.apply(ntt_form), std::invalid_argument);
}

TEST(ModUpDown, ModupPreservesOriginalChannels) {
  const std::size_t n = 16;
  const auto q_moduli = generate_ntt_primes(30, n, 3);
  const auto p_moduli = generate_ntt_primes(32, n, 2);
  const RnsPoly x = random_rns(n, q_moduli, 16);
  const RnsPoly up = modup(x, p_moduli);
  ASSERT_EQ(up.num_channels(), 5u);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_TRUE(std::equal(x.channel(c).begin(), x.channel(c).end(),
                           up.channel(c).begin()));
  }
}

TEST(ModUpDown, ModdownExactWhenDivisible) {
  // y = P * z with z < Q: moddown must return exactly z (Bconv of 0 is 0).
  const std::size_t n = 8;
  const auto q_moduli = generate_ntt_primes(30, n, 3);
  const auto p_moduli = generate_ntt_primes(32, n, 2);
  const BigUInt big_p = BigUInt::product(p_moduli);

  Rng rng(17);
  std::vector<BigUInt> z_values, y_values;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<u64> residues;
    for (u64 q : q_moduli) residues.push_back(rng.uniform(q));
    BigUInt z = crt_compose(residues, q_moduli);
    y_values.push_back(z * big_p);
    z_values.push_back(std::move(z));
  }

  std::vector<u64> all_moduli = q_moduli;
  all_moduli.insert(all_moduli.end(), p_moduli.begin(), p_moduli.end());
  const RnsPoly y = constant_rns(n, all_moduli, y_values);
  const RnsPoly z = moddown(y, p_moduli.size());

  ASSERT_EQ(z.num_channels(), q_moduli.size());
  for (std::size_t c = 0; c < q_moduli.size(); ++c) {
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(z.channel(c)[i], z_values[i].mod_u64(q_moduli[c]));
    }
  }
}

TEST(ModUpDown, ModdownApproximatesDivisionByP) {
  // For arbitrary y, moddown returns floor-ish(y/P) - alpha for a small alpha
  // in [0, K): the fast-conversion error that CKKS absorbs as noise.
  const std::size_t n = 4;
  const auto q_moduli = generate_ntt_primes(30, n, 2);
  const auto p_moduli = generate_ntt_primes(32, n, 2);
  const std::size_t num_special = p_moduli.size();
  const BigUInt big_p = BigUInt::product(p_moduli);

  std::vector<u64> all_moduli = q_moduli;
  all_moduli.insert(all_moduli.end(), p_moduli.begin(), p_moduli.end());
  const BigUInt big_qp = BigUInt::product(all_moduli);

  Rng rng(18);
  std::vector<BigUInt> y_values;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<u64> residues;
    for (u64 q : all_moduli) residues.push_back(rng.uniform(q));
    y_values.push_back(crt_compose(residues, all_moduli));
  }

  const RnsPoly y = constant_rns(n, all_moduli, y_values);
  const RnsPoly z = moddown(y, num_special);

  for (std::size_t i = 0; i < n; ++i) {
    // exact quotient (y - (y mod P)) / P
    const BigUInt y_mod_p = crt_compose(
        {y_values[i].mod_u64(p_moduli[0]), y_values[i].mod_u64(p_moduli[1])}, p_moduli);
    const BigUInt quotient = (y_values[i] - y_mod_p).div_u64(p_moduli[0], true)
                                 .div_u64(p_moduli[1], true);
    for (std::size_t c = 0; c < q_moduli.size(); ++c) {
      bool matched = false;
      for (std::size_t alpha = 0; alpha <= num_special && !matched; ++alpha) {
        // candidate = quotient - alpha (mod q_c)
        u64 cand = quotient.mod_u64(q_moduli[c]);
        cand = sub_mod(cand, alpha % q_moduli[c], q_moduli[c]);
        matched = z.channel(c)[i] == cand;
      }
      EXPECT_TRUE(matched) << "i=" << i << " c=" << c;
    }
  }
}

TEST(ModUpDown, ModdownArgumentChecks) {
  const auto moduli = generate_ntt_primes(30, 8, 3);
  RnsPoly x = random_rns(8, moduli, 19);
  EXPECT_THROW(moddown(x, 0), std::invalid_argument);
  EXPECT_THROW(moddown(x, 3), std::invalid_argument);
  RnsPoly ntt = x;
  ntt.to_ntt();
  EXPECT_THROW(moddown(ntt, 1), std::invalid_argument);
}

}  // namespace
}  // namespace alchemist
