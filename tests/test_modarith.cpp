#include "common/modarith.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace alchemist {
namespace {

TEST(ModArith, AddSubNegBasics) {
  const u64 q = 17;
  EXPECT_EQ(add_mod(9, 9, q), 1u);
  EXPECT_EQ(add_mod(0, 0, q), 0u);
  EXPECT_EQ(add_mod(16, 16, q), 15u);
  EXPECT_EQ(sub_mod(3, 5, q), 15u);
  EXPECT_EQ(sub_mod(5, 3, q), 2u);
  EXPECT_EQ(neg_mod(0, q), 0u);
  EXPECT_EQ(neg_mod(1, q), 16u);
}

TEST(ModArith, MulModMatchesWideArithmetic) {
  const u64 q = (u64{1} << 61) - 1;  // Mersenne prime
  const u64 a = q - 1, b = q - 2;
  EXPECT_EQ(mul_mod(a, b, q), static_cast<u64>((u128{a} * b) % q));
}

TEST(ModArith, PowModSmallCases) {
  EXPECT_EQ(pow_mod(2, 10, 1000), 24u);
  EXPECT_EQ(pow_mod(3, 0, 7), 1u);
  EXPECT_EQ(pow_mod(0, 5, 7), 0u);
  // Fermat: a^(q-1) = 1 mod prime q.
  EXPECT_EQ(pow_mod(12345, 65536, 65537), 1u);
}

TEST(ModArith, InvModRoundTrip) {
  const u64 q = 1000000007;
  for (u64 a : {u64{1}, u64{2}, u64{12345}, q - 1}) {
    EXPECT_EQ(mul_mod(a, inv_mod(a, q), q), 1u) << a;
  }
}

TEST(ModArith, InvModThrowsOnNonInvertible) {
  EXPECT_THROW(inv_mod(4, 12), std::invalid_argument);
  EXPECT_THROW(inv_mod(0, 7), std::invalid_argument);
}

TEST(ModArith, ModulusRejectsOutOfRange) {
  EXPECT_THROW(Modulus(0), std::invalid_argument);
  EXPECT_THROW(Modulus(1), std::invalid_argument);
  EXPECT_THROW(Modulus(u64{1} << 63), std::invalid_argument);
}

TEST(ModArith, BarrettReduceMatchesNaive) {
  Rng rng(42);
  for (u64 qbits : {u64{20}, u64{36}, u64{50}, u64{62}}) {
    // Pick an odd modulus near 2^qbits.
    const u64 q = ((u64{1} << (qbits - 1)) + rng.uniform(u64{1} << (qbits - 1))) | 1;
    Modulus mod(q);
    for (int i = 0; i < 1000; ++i) {
      const u128 z = (u128{rng.next()} << 64) | rng.next();
      EXPECT_EQ(mod.reduce(z), static_cast<u64>(z % q));
    }
  }
}

TEST(ModArith, BarrettMulMatchesNaive) {
  Rng rng(7);
  const u64 q = (u64{1} << 62) - 57;  // near the maximum supported modulus
  ASSERT_LT(q, kMaxModulus + 1);
  Modulus mod(q);
  for (int i = 0; i < 1000; ++i) {
    const u64 a = rng.uniform(q), b = rng.uniform(q);
    EXPECT_EQ(mod.mul(a, b), mul_mod(a, b, q));
  }
}

TEST(ModArith, ShoupMulMatchesBarrett) {
  Rng rng(11);
  const u64 q = 0x3FFFFFFFFFFC0001ULL;  // 62-bit NTT-friendly prime shape
  Modulus mod(q);
  for (int i = 0; i < 200; ++i) {
    const u64 w = rng.uniform(q);
    MulModShoup shoup(w, q);
    for (int k = 0; k < 50; ++k) {
      const u64 x = rng.uniform(q);
      EXPECT_EQ(shoup.mul(x), mod.mul(w, x));
    }
  }
}

TEST(ModArith, ShoupMulEdgeOperands) {
  const u64 q = 97;
  MulModShoup zero(0, q);
  MulModShoup one(1, q);
  MulModShoup max(q - 1, q);
  for (u64 x = 0; x < q; ++x) {
    EXPECT_EQ(zero.mul(x), 0u);
    EXPECT_EQ(one.mul(x), x);
    EXPECT_EQ(max.mul(x), mul_mod(q - 1, x, q));
  }
}

class ModulusParamTest : public ::testing::TestWithParam<u64> {};

TEST_P(ModulusParamTest, FieldAxiomsSampled) {
  const u64 q = GetParam();
  Modulus mod(q);
  Rng rng(q);
  for (int i = 0; i < 200; ++i) {
    const u64 a = rng.uniform(q), b = rng.uniform(q), c = rng.uniform(q);
    // Commutativity and associativity of * and +.
    EXPECT_EQ(mod.mul(a, b), mod.mul(b, a));
    EXPECT_EQ(mod.add(a, b), mod.add(b, a));
    EXPECT_EQ(mod.mul(mod.mul(a, b), c), mod.mul(a, mod.mul(b, c)));
    EXPECT_EQ(mod.add(mod.add(a, b), c), mod.add(a, mod.add(b, c)));
    // Distributivity.
    EXPECT_EQ(mod.mul(a, mod.add(b, c)), mod.add(mod.mul(a, b), mod.mul(a, c)));
    // Subtraction inverts addition.
    EXPECT_EQ(mod.sub(mod.add(a, b), b), a);
    EXPECT_EQ(mod.add(a, mod.neg(a)), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Moduli, ModulusParamTest,
                         ::testing::Values(u64{3}, u64{65537}, u64{0x7E00001},
                                           u64{1000000007},
                                           u64{0x0FFFFFFF00000001ULL},
                                           (u64{1} << 62) - 57));

}  // namespace
}  // namespace alchemist
