#include "common/primes.h"

#include <gtest/gtest.h>

#include <set>

namespace alchemist {
namespace {

TEST(Primes, IsPrimeSmall) {
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(65537));
  EXPECT_FALSE(is_prime(65536));
  EXPECT_FALSE(is_prime(u64{3215031751}));  // strong pseudoprime to bases 2,3,5,7
}

TEST(Primes, IsPrimeLarge) {
  EXPECT_TRUE(is_prime((u64{1} << 61) - 1));       // Mersenne
  EXPECT_FALSE(is_prime((u64{1} << 61) - 3));
  EXPECT_TRUE(is_prime(u64{0x3fffffffffe80001}));  // 62-bit, ≡ 1 mod 2^17
  // Carmichael number 561 = 3*11*17.
  EXPECT_FALSE(is_prime(561));
}

TEST(Primes, MaxNttPrimeProperties) {
  for (std::size_t n : {std::size_t{1024}, std::size_t{4096}, std::size_t{65536}}) {
    for (int bits : {30, 36, 50}) {
      const u64 q = max_ntt_prime(bits, n);
      EXPECT_TRUE(is_prime(q));
      EXPECT_LT(q, u64{1} << bits);
      EXPECT_EQ((q - 1) % (2 * n), 0u) << "q=" << q << " n=" << n;
    }
  }
}

TEST(Primes, GenerateNttPrimesDistinctAndValid) {
  const std::size_t n = 4096;
  const auto primes = generate_ntt_primes(36, n, 10);
  ASSERT_EQ(primes.size(), 10u);
  std::set<u64> unique(primes.begin(), primes.end());
  EXPECT_EQ(unique.size(), 10u);
  for (u64 q : primes) {
    EXPECT_TRUE(is_prime(q));
    EXPECT_EQ((q - 1) % (2 * n), 0u);
    EXPECT_LT(q, u64{1} << 36);
  }
  // Descending order by construction.
  for (std::size_t i = 1; i < primes.size(); ++i) EXPECT_GT(primes[i - 1], primes[i]);
}

TEST(Primes, GenerateNttPrimesRespectsExclusion) {
  const std::size_t n = 1024;
  const auto base = generate_ntt_primes(30, n, 3);
  const auto more = generate_ntt_primes(30, n, 3, base);
  for (u64 q : more) {
    for (u64 e : base) EXPECT_NE(q, e);
  }
}

TEST(Primes, PrimitiveRootHasExactOrder2N) {
  for (std::size_t n : {std::size_t{8}, std::size_t{1024}, std::size_t{16384}}) {
    const u64 q = max_ntt_prime(40, n);
    const u64 psi = primitive_root_2n(q, n);
    // psi^N = -1 and psi^2N = 1: order exactly 2N.
    EXPECT_EQ(pow_mod(psi, n, q), q - 1);
    EXPECT_EQ(pow_mod(psi, 2 * n, q), 1u);
  }
}

TEST(Primes, RejectsBadArguments) {
  EXPECT_THROW(max_ntt_prime(36, 1000), std::invalid_argument);  // not power of two
  EXPECT_THROW(max_ntt_prime(2, 1024), std::invalid_argument);
  EXPECT_THROW(generate_ntt_primes(63, 1024, 1), std::invalid_argument);
  EXPECT_THROW(primitive_root_2n(17, 1024), std::invalid_argument);  // 17 != 1 mod 2048
}

}  // namespace
}  // namespace alchemist
