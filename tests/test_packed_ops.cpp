#include <gtest/gtest.h>

#include <memory>

#include "ckks/encryptor.h"
#include "ckks/keygen.h"
#include "ckks/packed_ops.h"
#include "common/rng.h"

namespace alchemist::ckks {
namespace {

struct PackedFixture {
  ContextPtr ctx;
  std::unique_ptr<CkksEncoder> encoder;
  std::unique_ptr<KeyGenerator> keygen;
  std::unique_ptr<Encryptor> encryptor;
  std::unique_ptr<Decryptor> decryptor;
  std::unique_ptr<Evaluator> evaluator;
  RelinKeys rk;
  GaloisKeys gk;

  PackedFixture() {
    ctx = std::make_shared<CkksContext>(CkksParams::toy(512, 4, 2));
    encoder = std::make_unique<CkksEncoder>(ctx);
    keygen = std::make_unique<KeyGenerator>(ctx, 15);
    encryptor = std::make_unique<Encryptor>(ctx, keygen->make_public_key());
    decryptor = std::make_unique<Decryptor>(ctx, keygen->secret_key());
    evaluator = std::make_unique<Evaluator>(ctx);
    rk = keygen->make_relin_keys();
    gk = keygen->make_galois_keys(power_of_two_rotations(ctx->params().slots()));
  }

  std::vector<double> random_values(u64 seed) const {
    Rng rng(seed);
    std::vector<double> z(ctx->params().slots());
    for (double& v : z) v = 2 * rng.uniform_real() - 1;
    return z;
  }

  Ciphertext encrypt(const std::vector<double>& z) const {
    return encryptor->encrypt(
        encoder->encode(std::span<const double>(z), 4, ctx->params().scale()));
  }
};

PackedFixture& fx() {
  static PackedFixture f;
  return f;
}

TEST(PackedOps, RotationStepList) {
  EXPECT_EQ(power_of_two_rotations(8), (std::vector<int>{1, 2, 4}));
  EXPECT_EQ(power_of_two_rotations(1), (std::vector<int>{}));
}

TEST(PackedOps, RotateAndSumAllBroadcastsTotal) {
  PackedFixture& f = fx();
  const auto z = f.random_values(1);
  double total = 0;
  for (double v : z) total += v;
  const Ciphertext summed =
      rotate_and_sum_all(*f.evaluator, f.encrypt(z), f.gk, f.encoder->slots());
  const auto dec = f.decryptor->decrypt(summed, *f.encoder);
  for (std::size_t i = 0; i < dec.size(); i += 63) {
    EXPECT_NEAR(dec[i].real(), total, 1e-2) << i;
  }
}

TEST(PackedOps, InnerProductPlain) {
  PackedFixture& f = fx();
  const auto z = f.random_values(2);
  const auto w = f.random_values(3);
  double expected = 0;
  for (std::size_t i = 0; i < z.size(); ++i) expected += z[i] * w[i];
  const Ciphertext ip = inner_product_plain(*f.evaluator, *f.encoder, f.encrypt(z),
                                            std::span<const double>(w), f.gk);
  const auto dec = f.decryptor->decrypt(ip, *f.encoder);
  EXPECT_NEAR(dec[0].real(), expected, 2e-2);
}

TEST(PackedOps, InnerProductEncrypted) {
  PackedFixture& f = fx();
  const auto z = f.random_values(4);
  const auto w = f.random_values(5);
  double expected = 0;
  for (std::size_t i = 0; i < z.size(); ++i) expected += z[i] * w[i];
  const Ciphertext ip =
      inner_product(*f.evaluator, f.encrypt(z), f.encrypt(w), f.rk, f.gk);
  const auto dec = f.decryptor->decrypt(ip, *f.encoder);
  EXPECT_NEAR(dec[0].real(), expected, 5e-2);
}

}  // namespace
}  // namespace alchemist::ckks
