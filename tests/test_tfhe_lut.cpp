#include <gtest/gtest.h>

#include "common/rng.h"
#include "tfhe/lut.h"

namespace alchemist::tfhe {
namespace {

struct LutFixture {
  Rng rng{44};
  TfheParams params;
  LweKey lwe_key;
  TrlweKey trlwe_key;
  BootstrapContext ctx;

  LutFixture() {
    params = TfheParams::toy();
    params.degree = 128;  // 2^(w+1) <= N allows w = 6
    lwe_key = lwe_keygen(params.n_lwe, rng);
    trlwe_key = trlwe_keygen(params, rng);
    ctx = make_bootstrap_context(params, lwe_key, trlwe_key, rng);
  }

  EncInt enc(u64 v, std::size_t w) {
    return encrypt_int(v, w, lwe_key, params.lwe_sigma, rng);
  }
};

LutFixture& fx() {
  static LutFixture f;
  return f;
}

TEST(TfheLut, PackBitsEncodesValueOnLowerHalfTorus) {
  LutFixture& f = fx();
  const std::size_t w = 4;
  for (u64 v : {u64{0}, u64{1}, u64{7}, u64{10}, u64{15}}) {
    const LweSample packed = pack_bits(f.enc(v, w), f.ctx);
    const double phase = torus_to_double(lwe_phase(packed, f.lwe_key));
    // Expected phase: v / 2^(w+1) = v / 32 in [0, 0.5).
    EXPECT_NEAR(phase, static_cast<double>(v) / 32.0, 0.01) << v;
  }
}

TEST(TfheLut, IdentityLut) {
  LutFixture& f = fx();
  for (u64 v : {u64{0}, u64{5}, u64{9}, u64{15}}) {
    const EncInt out = apply_lut(f.enc(v, 4), [](u64 m) { return m; }, f.ctx);
    EXPECT_EQ(decrypt_int(out, f.lwe_key), v) << v;
  }
}

TEST(TfheLut, NonLinearFunctions) {
  LutFixture& f = fx();
  // Squaring mod 16 — impossible with linear homomorphisms alone.
  for (u64 v : {u64{0}, u64{3}, u64{7}, u64{12}}) {
    const EncInt sq = apply_lut(f.enc(v, 4), [](u64 m) { return (m * m) & 0xF; }, f.ctx);
    EXPECT_EQ(decrypt_int(sq, f.lwe_key), (v * v) & 0xF) << v;
  }
  // An arbitrary S-box (AES-like nibble substitution).
  const u64 sbox[16] = {0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD,
                        0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2};
  for (u64 v : {u64{1}, u64{6}, u64{14}}) {
    const EncInt sub = apply_lut(f.enc(v, 4), [&](u64 m) { return sbox[m & 0xF]; }, f.ctx);
    EXPECT_EQ(decrypt_int(sub, f.lwe_key), sbox[v]) << v;
  }
}

TEST(TfheLut, ExhaustiveThreeBit) {
  LutFixture& f = fx();
  // Every input of a 3-bit LUT: f(m) = (3m + 1) mod 8.
  for (u64 v = 0; v < 8; ++v) {
    const EncInt out =
        apply_lut(f.enc(v, 3), [](u64 m) { return (3 * m + 1) & 0x7; }, f.ctx);
    EXPECT_EQ(decrypt_int(out, f.lwe_key), (3 * v + 1) & 0x7) << v;
  }
}

TEST(TfheLut, WidthGuards) {
  LutFixture& f = fx();
  EncInt empty;
  EXPECT_THROW(pack_bits(empty, f.ctx), std::invalid_argument);
  // w = 7 needs 2^8 = 256 > N = 128.
  EXPECT_THROW(apply_lut(f.enc(0, 7), [](u64 m) { return m; }, f.ctx),
               std::invalid_argument);
}

}  // namespace
}  // namespace alchemist::tfhe
