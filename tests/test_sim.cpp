#include <gtest/gtest.h>

#include "arch/baselines.h"
#include "metaop/mult_count.h"
#include "sim/alchemist_sim.h"
#include "sim/baseline_sim.h"
#include "sim/cpu_model.h"
#include "workloads/ckks_workloads.h"
#include "workloads/tfhe_workloads.h"

namespace alchemist::sim {
namespace {

using metaop::HighOp;
using metaop::OpGraph;
using metaop::OpKind;

HighOp make_op(OpKind kind, std::size_t n, std::size_t channels,
               std::vector<std::size_t> deps = {}, std::size_t pa = 0,
               std::size_t pb = 0, std::uint64_t hbm = 0) {
  HighOp op;
  op.kind = kind;
  op.n = n;
  op.channels = channels;
  op.deps = std::move(deps);
  op.param_a = pa;
  op.param_b = pb;
  op.hbm_bytes = hbm;
  return op;
}

TEST(AlchemistSim, SingleElementwiseOpCycles) {
  OpGraph g;
  g.name = "ew";
  // 16384 coefficients over 8 channels: 16384/8*8 = 16384 Meta-OPs of n=1.
  g.add(make_op(OpKind::PointwiseMult, 16384, 8));
  const auto cfg = arch::ArchConfig::alchemist();
  const SimResult r = simulate_alchemist(g, cfg);
  // 16384 Meta-OPs over 2048 cores = 8 waves of (1+2) cycles.
  EXPECT_EQ(r.cycles, 8u * 3u);
  EXPECT_NEAR(r.utilization, 1.0, 1e-9);  // perfectly filled waves
  EXPECT_EQ(r.mem_stall_cycles, 0u);
}

TEST(AlchemistSim, TailWavesLowerUtilization) {
  OpGraph g;
  // 2049 Meta-OPs on 2048 cores: 6147 core-cycles pool into ceil(6147/2048)
  // = 4 cycles; the padded tail shows up as lost utilization.
  g.add(make_op(OpKind::PointwiseMult, 8 * 2049, 1));
  const SimResult r = simulate_alchemist(g, arch::ArchConfig::alchemist());
  EXPECT_EQ(r.cycles, 4u);
  EXPECT_NEAR(r.utilization, 2049.0 * 3.0 / (4.0 * 2048.0), 1e-6);
}

TEST(AlchemistSim, DependenciesSerializeLevels) {
  OpGraph chain, parallel;
  const HighOp op = make_op(OpKind::PointwiseMult, 16384, 1);
  const std::size_t a = chain.add(op);
  HighOp dependent = op;
  dependent.deps = {a};
  chain.add(dependent);
  parallel.add(op);
  parallel.add(op);
  const auto cfg = arch::ArchConfig::alchemist();
  const SimResult rc = simulate_alchemist(chain, cfg);
  const SimResult rp = simulate_alchemist(parallel, cfg);
  // Same work either way; both serialize on cores here, same cycle count.
  EXPECT_EQ(rc.cycles, rp.cycles);
  // A forward dependency index is rejected.
  OpGraph bad;
  HighOp cyc = op;
  cyc.deps = {5};
  bad.add(cyc);
  EXPECT_THROW(simulate_alchemist(bad, cfg), std::invalid_argument);
}

TEST(AlchemistSim, HbmBoundLevelStalls) {
  OpGraph g;
  // Tiny compute, huge key traffic: wall time should be HBM-bound.
  g.add(make_op(OpKind::DecompPolyMult, 4096, 2, {}, 4, 0,
                /*hbm=*/100'000'000));
  const auto cfg = arch::ArchConfig::alchemist();
  const SimResult r = simulate_alchemist(g, cfg);
  EXPECT_GT(r.mem_stall_cycles, 0u);
  EXPECT_GE(r.cycles, 100'000'000 / 1000);  // bytes / (bytes per cycle)
  EXPECT_LT(r.utilization, 0.1);
}

TEST(AlchemistSim, NttPaysTranspose) {
  OpGraph with_ntt, with_ew;
  with_ntt.add(make_op(OpKind::Ntt, 65536, 1));
  with_ew.add(make_op(OpKind::PointwiseMult, 65536, 1));
  const auto cfg = arch::ArchConfig::alchemist();
  EXPECT_GT(simulate_alchemist(with_ntt, cfg).transpose_cycles, 0u);
  EXPECT_EQ(simulate_alchemist(with_ew, cfg).transpose_cycles, 0u);
}

TEST(AlchemistSim, UtilizationStaysHighOnMixedWorkload) {
  // The headline claim: the unified design keeps overall utilization high
  // (~0.86 in the paper) across the mixed CKKS keyswitch workload.
  workloads::CkksWl w = workloads::CkksWl::paper(44);
  w.hbm_stream_fraction = 0.0;  // keys resident/regenerated (app steady state)
  const SimResult r = simulate_alchemist(workloads::build_keyswitch(w),
                                         arch::ArchConfig::alchemist());
  EXPECT_GT(r.utilization, 0.75);
  EXPECT_LE(r.utilization, 1.0);

  // With fresh keys streaming in full, the op becomes bandwidth-bound at
  // ~1 TB/s — the regime Table 7's ~7.2k keyswitch/s sits in.
  workloads::CkksWl fresh = workloads::CkksWl::paper(44);
  const SimResult rf = simulate_alchemist(workloads::build_keyswitch(fresh),
                                          arch::ArchConfig::alchemist());
  EXPECT_GT(rf.mem_stall_cycles, 0u);
  const double ops_per_s = 1e6 / rf.time_us;
  EXPECT_GT(ops_per_s, 5000);
  EXPECT_LT(ops_per_s, 12000);
}

TEST(BaselineSim, ModularDesignIdlesOnMixedWorkload) {
  workloads::CkksWl w = workloads::CkksWl::paper(44);
  w.hbm_stream_fraction = 0.05;  // compute-bound regime (keys resident)
  const OpGraph g = workloads::build_keyswitch(w);
  const SimResult sharp = simulate_modular(g, arch::spec_by_name("SHARP"));
  const SimResult alch = simulate_alchemist(g, arch::ArchConfig::alchemist());
  // Dedicated engines idle while the dominant class runs: overall utilization
  // must be visibly lower than the unified design's (Fig. 1 / Fig. 7b).
  EXPECT_LT(sharp.utilization, alch.utilization);
  EXPECT_GT(sharp.utilization, 0.0);
}

TEST(BaselineSim, MissingEngineIsAnError) {
  // Matcha has no Bconv engine; a CKKS keyswitch cannot run on it.
  const workloads::CkksWl w = workloads::CkksWl::paper(24);
  const OpGraph g = workloads::build_keyswitch(w);
  EXPECT_THROW(simulate_modular(g, arch::spec_by_name("Matcha")),
               std::invalid_argument);
}

TEST(BaselineSim, TfheRunsOnLogicAccelerators) {
  const workloads::TfheWl w = workloads::TfheWl::set_i();
  const OpGraph g = workloads::build_pbs(w);
  const SimResult matcha = simulate_modular(g, arch::spec_by_name("Matcha"));
  const SimResult strix = simulate_modular(g, arch::spec_by_name("Strix"));
  EXPECT_GT(matcha.cycles, 0u);
  EXPECT_GT(strix.cycles, 0u);
  EXPECT_LE(matcha.utilization, 1.0);
}

TEST(BaselineSim, BaselinesPayEagerReductionCost) {
  const workloads::CkksWl w = workloads::CkksWl::paper(24);
  const OpGraph g = workloads::build_cmult(w);
  const SimResult sharp = simulate_modular(g, arch::spec_by_name("SHARP"));
  const SimResult alch = simulate_alchemist(g, arch::ArchConfig::alchemist());
  // origin counting vs lazy-reduction counting (Fig. 7a).
  EXPECT_GT(sharp.total_mults, alch.total_mults);
}

TEST(CpuModel, CalibrationAndScaling) {
  const double ns = cpu_ns_per_modmul();
  EXPECT_GT(ns, 0.01);
  EXPECT_LT(ns, 100.0);
  const workloads::CkksWl w = workloads::CkksWl::paper(44);
  const double t_small = cpu_time_us(workloads::build_hadd(w));
  const double t_big = cpu_time_us(workloads::build_cmult(w));
  EXPECT_GT(t_big, t_small);
  // Hadd has no multiplies: effectively free in this model.
  EXPECT_EQ(metaop::count(workloads::build_hadd(w)).origin, 0u);
}

TEST(Sim, CmultFasterThanCpuByOrdersOfMagnitude) {
  const workloads::CkksWl w = workloads::CkksWl::paper(44);
  const OpGraph g = workloads::build_cmult(w);
  const SimResult r = simulate_alchemist(g, arch::ArchConfig::alchemist());
  const double cpu_us = cpu_time_us(g);
  // Table 7: four orders of magnitude.
  EXPECT_GT(cpu_us / r.time_us, 1000.0);
}

}  // namespace
}  // namespace alchemist::sim
