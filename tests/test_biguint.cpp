#include "common/biguint.h"

#include <gtest/gtest.h>

#include "common/primes.h"
#include "common/rng.h"

namespace alchemist {
namespace {

TEST(BigUInt, ZeroAndBasics) {
  BigUInt zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.bit_length(), 0u);
  EXPECT_EQ(zero.to_hex(), "0x0");

  BigUInt one(1);
  EXPECT_FALSE(one.is_zero());
  EXPECT_EQ(one.bit_length(), 1u);
  EXPECT_EQ(one.mod_u64(7), 1u);
}

TEST(BigUInt, AdditionCarriesAcrossLimbs) {
  BigUInt a(~u64{0});
  a += BigUInt(1);
  EXPECT_EQ(a.bit_length(), 65u);
  EXPECT_EQ(a.mod_u64(3), (u128{1} << 64) % 3);
  EXPECT_EQ(a.to_hex(), "0x10000000000000000");
}

TEST(BigUInt, SubtractionBorrowsAndThrowsOnNegative) {
  BigUInt a(~u64{0});
  a += BigUInt(5);           // 2^64 + 4
  BigUInt b = a - BigUInt(6);  // 2^64 - 2
  EXPECT_EQ(b.mod_u64(1000000007), ((u128{1} << 64) - 2) % 1000000007);
  EXPECT_THROW(BigUInt(3) -= BigUInt(4), std::invalid_argument);
}

TEST(BigUInt, MulU64AndProduct) {
  const std::vector<u64> factors = {u64{1} << 40, u64{1} << 40, 12345};
  BigUInt p = BigUInt::product(factors);
  EXPECT_EQ(p.bit_length(), 80u + 14u);  // 12345 ~ 14 bits
  EXPECT_EQ(p.mod_u64(12345), 0u);
  EXPECT_EQ(p.div_u64(12345, true).mod_u64(u64{1} << 40), 0u);
}

TEST(BigUInt, FullMultiplicationMatchesRepeatedAddition) {
  BigUInt a(0x123456789abcdefULL);
  a.mul_u64(0xfedcba987654321ULL);
  BigUInt b = a * a;
  // Check mod several primes against modular arithmetic on the residues.
  for (u64 q : {u64{1000000007}, u64{998244353}, (u64{1} << 61) - 1}) {
    EXPECT_EQ(b.mod_u64(q), mul_mod(a.mod_u64(q), a.mod_u64(q), q));
  }
}

TEST(BigUInt, DivU64ExactAndInexact) {
  BigUInt a(100);
  EXPECT_EQ(a.div_u64(10, true).mod_u64(1000), 10u);
  EXPECT_THROW(a.div_u64(7, true), std::logic_error);
  EXPECT_EQ(a.div_u64(7, false).mod_u64(1000), 14u);  // floor(100/7)
  EXPECT_THROW(a.div_u64(0), std::invalid_argument);
  EXPECT_THROW(a.mod_u64(0), std::invalid_argument);
}

TEST(BigUInt, Comparisons) {
  BigUInt a(5), b(7);
  BigUInt big(1);
  big.mul_u64(~u64{0}).mul_u64(~u64{0});
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b > a);
  EXPECT_TRUE(a <= a);
  EXPECT_TRUE(a >= a);
  EXPECT_TRUE(a == BigUInt(5));
  EXPECT_TRUE(a < big);
  EXPECT_TRUE(big >= b);
}

TEST(BigUInt, ToDoubleApproximates) {
  BigUInt a(1);
  a.mul_u64(u64{1} << 50).mul_u64(u64{1} << 50);
  EXPECT_NEAR(a.to_double(), 0x1.0p100, 0x1.0p60);
}

TEST(CrtCompose, ReconstructsKnownValue) {
  const std::vector<u64> moduli = {101, 103, 107};
  const u64 x = 123456;
  std::vector<u64> residues;
  for (u64 q : moduli) residues.push_back(x % q);
  BigUInt recovered = crt_compose(residues, moduli);
  EXPECT_EQ(recovered, BigUInt(x));
}

TEST(CrtCompose, RandomRoundTripLargeModuli) {
  const std::size_t n = 64;
  const auto moduli = generate_ntt_primes(45, n, 6);
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<u64> residues;
    residues.reserve(moduli.size());
    for (u64 q : moduli) residues.push_back(rng.uniform(q));
    const BigUInt x = crt_compose(residues, moduli);
    EXPECT_LT(x, BigUInt::product(moduli));
    for (std::size_t i = 0; i < moduli.size(); ++i) {
      EXPECT_EQ(x.mod_u64(moduli[i]), residues[i]);
    }
  }
}

TEST(CrtCompose, SizeMismatchThrows) {
  EXPECT_THROW(crt_compose({1, 2}, {3}), std::invalid_argument);
}

}  // namespace
}  // namespace alchemist
