#include <gtest/gtest.h>

#include <memory>

#include "arch/data_layout.h"
#include "ckks/encryptor.h"
#include "ckks/keygen.h"
#include "metaop/mult_count.h"
#include "sim/alchemist_sim.h"
#include "sim/tracer.h"
#include "workloads/ckks_workloads.h"

namespace alchemist {
namespace {

// ---------------- SlotLayout: the Table 4 / §5.3 claims ----------------

TEST(SlotLayout, ChannelAndDnumPatternsAreUnitLocal) {
  // The paper's data-management claim: with slot striping, Bconv and
  // DecompPolyMult never leave the unit-private scratchpad.
  for (std::size_t n : {std::size_t{16384}, std::size_t{65536}, std::size_t{1024}}) {
    arch::SlotLayout layout(n, 128);
    EXPECT_EQ(layout.cross_unit_accesses_channel(44), 0u) << n;
    EXPECT_EQ(layout.cross_unit_accesses_dnum(4), 0u) << n;
  }
}

TEST(SlotLayout, ClassicNttIsFullyConnectedButFourStepIsLocal) {
  arch::SlotLayout layout(16384, 128);
  // The classical NTT crosses units heavily (the paper: "fully connected,
  // which contradicts our slot-based data partition")...
  EXPECT_GT(layout.cross_unit_accesses_classic_ntt(), 10000u);
  // ...while the 4-step decomposition keeps every sub-NTT unit-local,
  EXPECT_EQ(layout.cross_unit_accesses_four_step_ntt(), 0u);
  // paying only the transpose through the dedicated buffer.
  EXPECT_EQ(layout.four_step_transpose_words(), 16384u);
}

TEST(SlotLayout, PaperExampleDimensions) {
  // N = 16384 over 128 units: each unit holds 128 slots of every polynomial
  // (Fig. 5b), and the 4-step sub-NTTs are 128-point.
  arch::SlotLayout layout(16384, 128);
  EXPECT_EQ(layout.slots_per_unit(), 128u);
  EXPECT_EQ(layout.unit_of_slot(0), 0u);
  EXPECT_EQ(layout.unit_of_slot(127), 0u);
  EXPECT_EQ(layout.unit_of_slot(128), 1u);
  EXPECT_EQ(layout.unit_of_slot(16383), 127u);
  EXPECT_THROW(arch::SlotLayout(1000, 128), std::invalid_argument);
}

// ---------------- TracedEvaluator ----------------

struct TraceFixture {
  ckks::ContextPtr ctx;
  std::unique_ptr<ckks::CkksEncoder> encoder;
  std::unique_ptr<ckks::KeyGenerator> keygen;
  std::unique_ptr<ckks::Encryptor> encryptor;
  std::unique_ptr<ckks::Decryptor> decryptor;
  std::unique_ptr<ckks::Evaluator> evaluator;
  ckks::RelinKeys rk;
  ckks::GaloisKeys gk;

  TraceFixture() {
    ctx = std::make_shared<ckks::CkksContext>(ckks::CkksParams::toy(1024, 4, 2));
    encoder = std::make_unique<ckks::CkksEncoder>(ctx);
    keygen = std::make_unique<ckks::KeyGenerator>(ctx, 6);
    encryptor = std::make_unique<ckks::Encryptor>(ctx, keygen->make_public_key());
    decryptor = std::make_unique<ckks::Decryptor>(ctx, keygen->secret_key());
    evaluator = std::make_unique<ckks::Evaluator>(ctx);
    rk = keygen->make_relin_keys();
    gk = keygen->make_galois_keys({1});
  }
};

TraceFixture& fx() {
  static TraceFixture f;
  return f;
}

TEST(TracedEvaluator, ProducesCorrectCryptoAndValidGraph) {
  TraceFixture& f = fx();
  sim::TracedEvaluator traced(f.ctx, *f.evaluator);

  std::vector<double> z = {0.5, -0.25, 0.75};
  const auto a = traced.wrap(f.encryptor->encrypt(
      f.encoder->encode(std::span<const double>(z), 4, f.ctx->params().scale())));

  // Real program: square, rotate, add.
  const auto sq = traced.multiply_rescale(a, a, f.rk);
  const auto rot = traced.rotate(sq, 1, f.gk);
  const auto out = traced.add(sq, rot);

  // The crypto is real: slot 0 holds z0^2 + z1^2.
  const auto dec = f.decryptor->decrypt(out.ct, *f.encoder);
  EXPECT_NEAR(dec[0].real(), 0.25 + 0.0625, 1e-2);

  // The trace is a valid DAG with dependency wiring across the three ops.
  const auto g = traced.graph();
  EXPECT_GT(g.ops.size(), 10u);
  for (std::size_t i = 0; i < g.ops.size(); ++i) {
    for (std::size_t dep : g.ops[i].deps) ASSERT_LT(dep, i);
  }
  // The final add depends on both the rotation chain and the square chain.
  EXPECT_EQ(g.ops.back().kind, metaop::OpKind::PointwiseAdd);
  EXPECT_EQ(g.ops.back().deps.size(), 2u);
}

TEST(TracedEvaluator, TraceMatchesHandBuiltWorkload) {
  TraceFixture& f = fx();
  sim::TracedEvaluator traced(f.ctx, *f.evaluator);
  std::vector<double> z = {0.5};
  const auto a = traced.wrap(f.encryptor->encrypt(
      f.encoder->encode(std::span<const double>(z), 4, f.ctx->params().scale())));
  (void)traced.multiply_rescale(a, a, f.rk);

  // Identical parameters through the hand-built generator.
  workloads::CkksWl w;
  w.n = f.ctx->degree();
  w.level = 4;
  w.max_level = 4;
  w.dnum = 2;
  const auto reference = workloads::build_cmult(w);

  EXPECT_EQ(metaop::count(traced.graph()).meta, metaop::count(reference).meta);
  EXPECT_EQ(metaop::count(traced.graph()).origin, metaop::count(reference).origin);
}

TEST(TracedEvaluator, ArchScaleOverrideProjectsToPaperN) {
  TraceFixture& f = fx();
  // Trace the functional N=1024 program but cost it at N=65536.
  sim::TracedEvaluator traced(f.ctx, *f.evaluator, /*arch_n=*/65536,
                              /*hbm_stream_fraction=*/0.05);
  std::vector<double> z = {0.5};
  const auto a = traced.wrap(f.encryptor->encrypt(
      f.encoder->encode(std::span<const double>(z), 4, f.ctx->params().scale())));
  (void)traced.multiply_rescale(a, a, f.rk);

  const auto g = traced.graph();
  for (const auto& op : g.ops) EXPECT_EQ(op.n, 65536u);
  const auto r = sim::simulate_alchemist(g, arch::ArchConfig::alchemist());
  EXPECT_GT(r.cycles, 1000u);
  EXPECT_GT(r.utilization, 0.5);
}

TEST(TracedEvaluator, TakeGraphResetsState) {
  TraceFixture& f = fx();
  sim::TracedEvaluator traced(f.ctx, *f.evaluator);
  std::vector<double> z = {0.5};
  const auto a = traced.wrap(f.encryptor->encrypt(
      f.encoder->encode(std::span<const double>(z), 4, f.ctx->params().scale())));
  (void)traced.add(a, a);
  const auto g = traced.take_graph("phase-1");
  EXPECT_EQ(g.name, "phase-1");
  EXPECT_EQ(g.ops.size(), 1u);
  EXPECT_TRUE(traced.graph().ops.empty());
}

}  // namespace
}  // namespace alchemist
