#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <memory>

#include "ckks/bootstrap.h"
#include "ckks/encoder.h"
#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keygen.h"
#include "ckks/linear_transform.h"
#include "ckks/poly_eval.h"
#include "common/rng.h"

#include <span>

namespace alchemist::ckks {
namespace {

using Complex = std::complex<double>;

struct Fixture {
  ContextPtr ctx;
  std::unique_ptr<CkksEncoder> encoder;
  std::unique_ptr<KeyGenerator> keygen;
  std::unique_ptr<Encryptor> encryptor;
  std::unique_ptr<Decryptor> decryptor;
  std::unique_ptr<Evaluator> evaluator;
  RelinKeys relin;

  explicit Fixture(const CkksParams& params, u64 seed = 21) {
    ctx = std::make_shared<CkksContext>(params);
    encoder = std::make_unique<CkksEncoder>(ctx);
    keygen = std::make_unique<KeyGenerator>(ctx, seed);
    encryptor = std::make_unique<Encryptor>(ctx, keygen->make_public_key());
    decryptor = std::make_unique<Decryptor>(ctx, keygen->secret_key());
    evaluator = std::make_unique<Evaluator>(ctx);
    relin = keygen->make_relin_keys();
  }

  Ciphertext encrypt(const std::vector<double>& v, std::size_t level) const {
    return encryptor->encrypt(
        encoder->encode(std::span<const double>(v), level, ctx->params().scale()));
  }
};

TEST(EncodeConstant, MatchesFullEncode) {
  Fixture f(CkksParams::toy(512, 3, 1));
  for (Complex value : {Complex{0.5, 0.0}, Complex{-1.25, 2.0}, Complex{0.0, -0.75}}) {
    const Plaintext fast = f.encoder->encode_constant(value, 3, f.ctx->params().scale());
    const auto decoded = f.encoder->decode(fast);
    for (const Complex& slot : decoded) {
      EXPECT_LT(std::abs(slot - value), 1e-8) << value;
    }
  }
}

TEST(EvaluatorHelpers, ScalarAddAndMul) {
  Fixture f(CkksParams::toy(512, 3, 1));
  const std::vector<double> v = {1.0, -2.0, 0.25};
  Ciphertext ct = f.encrypt(v, 3);
  Ciphertext shifted = f.evaluator->add_scalar(ct, 10.0, *f.encoder);
  auto dec = f.decryptor->decrypt(shifted, *f.encoder);
  EXPECT_NEAR(dec[0].real(), 11.0, 1e-4);
  EXPECT_NEAR(dec[1].real(), 8.0, 1e-4);

  Ciphertext scaled = f.evaluator->rescale(
      f.evaluator->mul_scalar(ct, Complex{0.0, 1.0}, *f.encoder, ct.scale));
  dec = f.decryptor->decrypt(scaled, *f.encoder);
  EXPECT_NEAR(dec[1].imag(), -2.0, 1e-4);  // i * (-2) = -2i
  EXPECT_NEAR(dec[1].real(), 0.0, 1e-4);
}

TEST(EvaluatorHelpers, AlignedOpsAcrossLevels) {
  Fixture f(CkksParams::toy(1024, 4, 2));
  const std::vector<double> v = {0.5, 0.25};
  Ciphertext deep = f.encrypt(v, 4);
  Ciphertext shallow = f.evaluator->rescale(
      f.evaluator->mul_scalar(deep, 1.0, *f.encoder, deep.scale));
  ASSERT_EQ(shallow.level, 3u);
  // add_aligned handles the level gap; values add.
  auto dec = f.decryptor->decrypt(f.evaluator->add_aligned(deep, shallow), *f.encoder);
  EXPECT_NEAR(dec[0].real(), 1.0, 1e-3);
  // mul_aligned handles it too.
  dec = f.decryptor->decrypt(f.evaluator->mul_aligned(deep, shallow, f.relin), *f.encoder);
  EXPECT_NEAR(dec[0].real(), 0.25, 1e-3);
  EXPECT_THROW(f.evaluator->normalize_scale(deep, deep.scale * 2), std::invalid_argument);
}

TEST(PolyEval, QuadraticAndCubic) {
  Fixture f(CkksParams::toy(1024, 6, 2));
  PolyEvaluator poly(f.ctx, *f.encoder, *f.evaluator, f.relin);
  Rng rng(3);
  std::vector<double> xs(8);
  for (double& x : xs) x = 2.0 * rng.uniform_real() - 1.0;
  const Ciphertext ct = f.encrypt(xs, 6);

  // p(x) = 0.5 - x + 2x^2
  const std::vector<double> p2 = {0.5, -1.0, 2.0};
  auto dec = f.decryptor->decrypt(
      poly.evaluate(ct, std::span<const double>(p2)), *f.encoder);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double expected = 0.5 - xs[i] + 2 * xs[i] * xs[i];
    EXPECT_NEAR(dec[i].real(), expected, 1e-3) << i;
  }

  // p(x) = x^3 - 0.25x
  const std::vector<double> p3 = {0.0, -0.25, 0.0, 1.0};
  dec = f.decryptor->decrypt(poly.evaluate(ct, std::span<const double>(p3)), *f.encoder);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(dec[i].real(), xs[i] * xs[i] * xs[i] - 0.25 * xs[i], 1e-3) << i;
  }
}

TEST(PolyEval, DegreeSevenSigmoidish) {
  Fixture f(CkksParams::toy(1024, 8, 2));
  PolyEvaluator poly(f.ctx, *f.encoder, *f.evaluator, f.relin);
  // Taylor-ish sigmoid approximation around 0: 0.5 + x/4 - x^3/48 + x^5/480.
  const std::vector<double> coeffs = {0.5, 0.25, 0.0, -1.0 / 48, 0.0, 1.0 / 480, 0.0, 0.0};
  std::vector<double> xs = {-1.5, -0.5, 0.0, 0.5, 1.5};
  const Ciphertext ct = f.encrypt(xs, 8);
  const auto dec = f.decryptor->decrypt(
      poly.evaluate(ct, std::span<const double>(coeffs)), *f.encoder);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    double expected = 0;
    double p = 1;
    for (double c : coeffs) {
      expected += c * p;
      p *= xs[i];
    }
    EXPECT_NEAR(dec[i].real(), expected, 5e-3) << "x=" << xs[i];
  }
}

TEST(PolyEval, ChebyshevFitAccuracy) {
  // Pure math: the fit approximates exp on [-1, 1] to near machine precision
  // at degree 15.
  const auto cheb = chebyshev_fit([](double t) { return std::exp(t); }, -1, 1, 15);
  const auto mono = chebyshev_to_monomial(cheb);
  for (double x : {-0.9, -0.3, 0.0, 0.4, 0.95}) {
    double val = 0, p = 1;
    for (double c : mono) {
      val += c * p;
      p *= x;
    }
    EXPECT_NEAR(val, std::exp(x), 1e-10) << x;
  }
}

TEST(PolyEval, ComposeAffine) {
  // p(y) = y^2, y = 2x + 1 -> 4x^2 + 4x + 1.
  const std::vector<double> p = {0.0, 0.0, 1.0};
  const auto q = compose_affine(p, 2.0, 1.0);
  ASSERT_EQ(q.size(), 3u);
  EXPECT_DOUBLE_EQ(q[0], 1.0);
  EXPECT_DOUBLE_EQ(q[1], 4.0);
  EXPECT_DOUBLE_EQ(q[2], 4.0);
}

TEST(PolyEval, ChebyshevStableMatchesFunction) {
  Fixture f(CkksParams::toy(1024, 10, 2));
  PolyEvaluator poly(f.ctx, *f.encoder, *f.evaluator, f.relin);
  // sin on [-4, 4] at degree 31: stable evaluation required (monomial
  // conversion already loses precision here).
  const auto cheb = chebyshev_fit([](double t) { return std::sin(t); }, -4, 4, 31);
  std::vector<double> xs = {-3.5, -2.0, -0.5, 0.0, 1.0, 2.5, 3.9};
  const Ciphertext ct = f.encrypt(xs, 10);
  const Ciphertext out =
      poly.evaluate_chebyshev_stable(ct, std::span<const double>(cheb), -4, 4);
  const auto dec = f.decryptor->decrypt(out, *f.encoder);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(dec[i].real(), std::sin(xs[i]), 2e-2) << "x=" << xs[i];
  }
}

TEST(LinearTransformTest, MatchesCleartextMatrix) {
  Fixture f(CkksParams::toy(256, 4, 2));
  const std::size_t slots = f.ctx->params().slots();
  Rng rng(5);
  LinearTransform::Matrix m(slots, std::vector<Complex>(slots));
  for (auto& row : m) {
    for (Complex& v : row) {
      v = {2 * rng.uniform_real() - 1, 2 * rng.uniform_real() - 1};
    }
  }
  LinearTransform lt(f.ctx, m);
  const GaloisKeys gk = f.keygen->make_galois_keys(lt.required_rotations(true));

  std::vector<Complex> z(slots);
  for (Complex& v : z) v = {2 * rng.uniform_real() - 1, 2 * rng.uniform_real() - 1};
  const Ciphertext ct = f.encryptor->encrypt(
      f.encoder->encode(std::span<const Complex>(z), 4, f.ctx->params().scale()));

  Ciphertext out = lt.apply(*f.evaluator, *f.encoder, ct, gk, f.ctx->params().scale());
  out = f.evaluator->rescale(out);
  const auto dec = f.decryptor->decrypt(out, *f.encoder);

  for (std::size_t r = 0; r < slots; ++r) {
    Complex expected{0, 0};
    for (std::size_t c = 0; c < slots; ++c) expected += m[r][c] * z[c];
    EXPECT_LT(std::abs(dec[r] - expected), 5e-2) << "row " << r;
  }
}

TEST(LinearTransformTest, BsgsAndNaiveAgree) {
  Fixture f(CkksParams::toy(256, 3, 1));
  const std::size_t slots = f.ctx->params().slots();
  Rng rng(6);
  // Sparse banded matrix: only 3 diagonals.
  LinearTransform::Matrix m(slots, std::vector<Complex>(slots, {0, 0}));
  for (std::size_t k = 0; k < slots; ++k) {
    m[k][k] = 1.0;
    m[k][(k + 1) % slots] = 0.5;
    m[k][(k + 7) % slots] = -0.25;
  }
  LinearTransform lt(f.ctx, m);
  EXPECT_EQ(lt.num_diagonals(), 3u);

  auto steps = lt.required_rotations(false);
  auto steps_bsgs = lt.required_rotations(true);
  std::vector<int> all = steps;
  all.insert(all.end(), steps_bsgs.begin(), steps_bsgs.end());
  const GaloisKeys gk = f.keygen->make_galois_keys(all);

  std::vector<double> z(slots);
  for (double& v : z) v = 2 * rng.uniform_real() - 1;
  const Ciphertext ct = f.encrypt(z, 3);
  const double pt_scale = f.ctx->params().scale();

  const auto naive = f.decryptor->decrypt(
      f.evaluator->rescale(lt.apply(*f.evaluator, *f.encoder, ct, gk, pt_scale, false)),
      *f.encoder);
  const auto bsgs = f.decryptor->decrypt(
      f.evaluator->rescale(lt.apply(*f.evaluator, *f.encoder, ct, gk, pt_scale, true)),
      *f.encoder);
  for (std::size_t i = 0; i < slots; ++i) {
    EXPECT_LT(std::abs(naive[i] - bsgs[i]), 1e-3) << i;
  }
}

TEST(LinearTransformTest, SlotCoeffMatricesAreInverse) {
  const CkksParams params = CkksParams::toy(128, 2, 1);
  CkksContext ctx(params);
  const auto a = slot_to_coeff_matrix(ctx);
  const auto inv = coeff_to_slot_matrix(ctx);
  const std::size_t slots = params.slots();
  for (std::size_t r = 0; r < slots; ++r) {
    for (std::size_t c = 0; c < slots; ++c) {
      Complex sum{0, 0};
      for (std::size_t k = 0; k < slots; ++k) sum += a[r][k] * inv[k][c];
      EXPECT_LT(std::abs(sum - (r == c ? 1.0 : 0.0)), 1e-9) << r << "," << c;
    }
  }
}

TEST(HoistedRotations, MatchIndividualRotations) {
  Fixture f(CkksParams::toy(1024, 4, 2));
  const GaloisKeys gk = f.keygen->make_galois_keys({0, 1, 3, 7});
  Rng rng(23);
  std::vector<double> z(f.ctx->params().slots());
  for (double& v : z) v = 2 * rng.uniform_real() - 1;
  const Ciphertext ct = f.encryptor->encrypt(f.encoder->encode(
      std::span<const double>(z), 4, f.ctx->params().scale()));

  const std::vector<int> steps = {0, 1, 3, 7};
  const auto hoisted = f.evaluator->rotate_hoisted(ct, steps, gk);
  ASSERT_EQ(hoisted.size(), steps.size());
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const auto individual =
        f.decryptor->decrypt(f.evaluator->rotate(ct, steps[i], gk), *f.encoder);
    const auto shared = f.decryptor->decrypt(hoisted[i], *f.encoder);
    for (std::size_t k = 0; k < shared.size(); k += 37) {
      ASSERT_LT(std::abs(shared[k] - individual[k]), 1e-3)
          << "step " << steps[i] << " slot " << k;
    }
  }
}

TEST(HoistedRotations, WorksAtLowerLevelsAndChecksKeys) {
  Fixture f(CkksParams::toy(1024, 4, 2));
  const GaloisKeys gk = f.keygen->make_galois_keys({2});
  std::vector<double> z = {0.5, -0.5, 1.0};
  Ciphertext ct = f.encryptor->encrypt(f.encoder->encode(
      std::span<const double>(z), 4, f.ctx->params().scale()));
  ct = f.evaluator->mod_drop(ct, 2);  // truncated-digit path
  const std::vector<int> good = {2};
  const auto rotated = f.evaluator->rotate_hoisted(ct, good, gk);
  const auto dec = f.decryptor->decrypt(rotated[0], *f.encoder);
  // Left rotation by 2: slot 0 <- z[2], slot 1 <- z[3] (zero padding).
  EXPECT_NEAR(dec[0].real(), 1.0, 1e-3);
  EXPECT_NEAR(dec[1].real(), 0.0, 1e-3);
  const std::vector<int> bad = {5};
  EXPECT_THROW(f.evaluator->rotate_hoisted(ct, bad, gk), std::invalid_argument);
}

TEST(LinearTransformTest, RejectsBadMatrix) {
  Fixture f(CkksParams::toy(128, 2, 1));
  LinearTransform::Matrix wrong(3, std::vector<Complex>(3));
  EXPECT_THROW(LinearTransform(f.ctx, wrong), std::invalid_argument);
  LinearTransform::Matrix zero(f.ctx->params().slots(),
                               std::vector<Complex>(f.ctx->params().slots(), {0, 0}));
  LinearTransform lt(f.ctx, zero);
  GaloisKeys gk;
  const Ciphertext ct = f.encrypt({1.0}, 2);
  EXPECT_THROW(lt.apply(*f.evaluator, *f.encoder, ct, gk, 1024.0), std::invalid_argument);
}

}  // namespace
}  // namespace alchemist::ckks
