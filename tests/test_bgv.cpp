#include <gtest/gtest.h>

#include <memory>

#include "bfv/bgv.h"
#include "common/rng.h"

namespace alchemist::bgv {
namespace {

struct BgvFixture {
  BgvContextPtr ctx;
  std::unique_ptr<BgvKeyGenerator> keygen;
  std::unique_ptr<BgvEncryptor> encryptor;
  std::unique_ptr<BgvDecryptor> decryptor;
  std::unique_ptr<BgvEvaluator> evaluator;
  BgvRelinKey rk;

  BgvFixture() {
    ctx = std::make_shared<BgvContext>(BfvParams::toy(1024));
    keygen = std::make_unique<BgvKeyGenerator>(ctx, 9);
    encryptor = std::make_unique<BgvEncryptor>(ctx, keygen->make_public_key());
    decryptor = std::make_unique<BgvDecryptor>(ctx, keygen->secret_key());
    evaluator = std::make_unique<BgvEvaluator>(ctx);
    rk = keygen->make_relin_key();
  }

  std::vector<u64> random_message(u64 seed) const {
    Rng rng(seed);
    return rng.uniform_vector(ctx->degree(), ctx->t());
  }
};

BgvFixture& fx() {
  static BgvFixture f;
  return f;
}

TEST(Bgv, EncryptDecryptExact) {
  BgvFixture& f = fx();
  const auto values = f.random_message(1);
  const auto ct = f.encryptor->encrypt(bgv_encode(*f.ctx, values));
  EXPECT_EQ(bgv_decode(*f.ctx, f.decryptor->decrypt(ct)), values);
}

TEST(Bgv, AddSubPlainOps) {
  BgvFixture& f = fx();
  const auto a = f.random_message(2);
  const auto b = f.random_message(3);
  const auto ca = f.encryptor->encrypt(bgv_encode(*f.ctx, a));
  const auto cb = f.encryptor->encrypt(bgv_encode(*f.ctx, b));
  const u64 t = f.ctx->t();

  const auto sum = bgv_decode(*f.ctx, f.decryptor->decrypt(f.evaluator->add(ca, cb)));
  const auto diff = bgv_decode(*f.ctx, f.decryptor->decrypt(f.evaluator->sub(ca, cb)));
  const auto psum = bgv_decode(
      *f.ctx, f.decryptor->decrypt(f.evaluator->add_plain(ca, bgv_encode(*f.ctx, b))));
  const auto pprod = bgv_decode(
      *f.ctx, f.decryptor->decrypt(f.evaluator->mul_plain(ca, bgv_encode(*f.ctx, b))));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(sum[i], (a[i] + b[i]) % t) << i;
    EXPECT_EQ(diff[i], (a[i] + t - b[i]) % t) << i;
    EXPECT_EQ(psum[i], (a[i] + b[i]) % t) << i;
    EXPECT_EQ(pprod[i], static_cast<u64>((u128{a[i]} * b[i]) % t)) << i;
  }
}

TEST(Bgv, CiphertextMultiplyExact) {
  BgvFixture& f = fx();
  const auto a = f.random_message(4);
  const auto b = f.random_message(5);
  const auto ca = f.encryptor->encrypt(bgv_encode(*f.ctx, a));
  const auto cb = f.encryptor->encrypt(bgv_encode(*f.ctx, b));
  const auto prod =
      bgv_decode(*f.ctx, f.decryptor->decrypt(f.evaluator->multiply(ca, cb, f.rk)));
  const u64 t = f.ctx->t();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(prod[i], static_cast<u64>((u128{a[i]} * b[i]) % t)) << i;
  }
}

TEST(Bgv, MultiplyThenLinearOps) {
  BgvFixture& f = fx();
  const auto a = f.random_message(6);
  const auto b = f.random_message(7);
  const auto c = f.random_message(8);
  const auto ca = f.encryptor->encrypt(bgv_encode(*f.ctx, a));
  const auto cb = f.encryptor->encrypt(bgv_encode(*f.ctx, b));
  const auto cc = f.encryptor->encrypt(bgv_encode(*f.ctx, c));
  const auto res = bgv_decode(*f.ctx, f.decryptor->decrypt(f.evaluator->add(
                                          f.evaluator->multiply(ca, cb, f.rk), cc)));
  const u64 t = f.ctx->t();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(res[i], static_cast<u64>((u128{a[i]} * b[i] + c[i]) % t)) << i;
  }
}

TEST(Bgv, AgreesWithBfvSemantics) {
  // BGV and BFV realize the same plaintext algebra Z_t^N; the same program
  // must give the same answers under both schemes.
  BgvFixture& f = fx();
  auto bfv_ctx = std::make_shared<bfv::BfvContext>(BfvParams::toy(1024));
  bfv::BfvEncoder bfv_encoder(bfv_ctx);
  bfv::BfvKeyGenerator bfv_keygen(bfv_ctx, 10);
  bfv::BfvEncryptor bfv_encryptor(bfv_ctx, bfv_keygen.make_public_key());
  bfv::BfvDecryptor bfv_decryptor(bfv_ctx, bfv_keygen.secret_key());
  bfv::BfvEvaluator bfv_evaluator(bfv_ctx);
  const bfv::BfvRelinKey bfv_rk = bfv_keygen.make_relin_key();

  const auto a = f.random_message(11);
  const auto b = f.random_message(12);

  const auto bgv_result = bgv_decode(
      *f.ctx, f.decryptor->decrypt(f.evaluator->multiply(
                  f.encryptor->encrypt(bgv_encode(*f.ctx, a)),
                  f.encryptor->encrypt(bgv_encode(*f.ctx, b)), f.rk)));
  const auto bfv_result = bfv_encoder.decode(bfv_decryptor.decrypt(
      bfv_evaluator.multiply(bfv_encryptor.encrypt(bfv_encoder.encode(a)),
                             bfv_encryptor.encrypt(bfv_encoder.encode(b)), bfv_rk)));
  EXPECT_EQ(bgv_result, bfv_result);
}

TEST(Bgv, ArgumentChecks) {
  BgvFixture& f = fx();
  std::vector<u64> wrong(f.ctx->degree() / 2, 0);
  EXPECT_THROW(f.encryptor->encrypt(wrong), std::invalid_argument);
  BfvParams bad;
  bad.t = 65536;
  EXPECT_THROW(BgvContext{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace alchemist::bgv
