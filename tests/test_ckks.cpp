#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <memory>

#include "ckks/encoder.h"
#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keygen.h"
#include "ckks/params.h"
#include "common/rng.h"

namespace alchemist::ckks {
namespace {

using Complex = std::complex<double>;

struct CkksFixture {
  ContextPtr ctx;
  std::unique_ptr<CkksEncoder> encoder;
  std::unique_ptr<KeyGenerator> keygen;
  std::unique_ptr<Encryptor> encryptor;
  std::unique_ptr<Decryptor> decryptor;
  std::unique_ptr<Evaluator> evaluator;

  explicit CkksFixture(const CkksParams& params) {
    ctx = std::make_shared<CkksContext>(params);
    encoder = std::make_unique<CkksEncoder>(ctx);
    keygen = std::make_unique<KeyGenerator>(ctx, /*seed=*/7);
    encryptor = std::make_unique<Encryptor>(ctx, keygen->make_public_key());
    decryptor = std::make_unique<Decryptor>(ctx, keygen->secret_key());
    evaluator = std::make_unique<Evaluator>(ctx);
  }
};

std::vector<Complex> random_message(std::size_t count, u64 seed, double mag = 1.0) {
  Rng rng(seed);
  std::vector<Complex> z(count);
  for (Complex& v : z) {
    v = {mag * (2 * rng.uniform_real() - 1), mag * (2 * rng.uniform_real() - 1)};
  }
  return z;
}

double max_error(const std::vector<Complex>& a, const std::vector<Complex>& b) {
  double err = 0;
  for (std::size_t i = 0; i < a.size(); ++i) err = std::max(err, std::abs(a[i] - b[i]));
  return err;
}

TEST(CkksContext, ModuliChainShape) {
  CkksParams p = CkksParams::toy(1024, 4, 2);
  CkksContext ctx(p);
  EXPECT_EQ(ctx.q_moduli().size(), 4u);
  EXPECT_EQ(ctx.p_moduli().size(), 2u);  // alpha = ceil(4/2) = 2
  EXPECT_EQ(ctx.basis_at(2).size(), 2u);
  EXPECT_EQ(ctx.extended_basis_at(2).size(), 4u);
  EXPECT_EQ(ctx.num_digits_at(4), 2u);
  EXPECT_EQ(ctx.num_digits_at(3), 2u);
  EXPECT_EQ(ctx.num_digits_at(2), 1u);
  auto [first, count] = ctx.digit_range(1, 3);
  EXPECT_EQ(first, 2u);
  EXPECT_EQ(count, 1u);  // truncated tail digit
  EXPECT_THROW(ctx.digit_range(1, 2), std::invalid_argument);
  EXPECT_THROW(ctx.basis_at(0), std::invalid_argument);
  EXPECT_THROW(ctx.basis_at(5), std::invalid_argument);
}

TEST(CkksContext, GaloisElements) {
  CkksParams p = CkksParams::toy(1024, 2, 1);
  CkksContext ctx(p);
  EXPECT_EQ(ctx.galois_elt_for_rotation(0), 1u);
  EXPECT_EQ(ctx.galois_elt_for_rotation(1), 5u);
  EXPECT_EQ(ctx.galois_elt_for_rotation(2), 25u);
  EXPECT_EQ(ctx.galois_elt_conjugate(), 2047u);
  // Negative steps normalize to slots - |steps|.
  EXPECT_EQ(ctx.galois_elt_for_rotation(-1), ctx.galois_elt_for_rotation(511));
}

TEST(CkksEncoder, EncodeDecodeRoundTrip) {
  CkksFixture f(CkksParams::toy(1024, 3, 1));
  const auto z = random_message(f.encoder->slots(), 1);
  const Plaintext pt = f.encoder->encode(std::span<const Complex>(z), 3,
                                         f.ctx->params().scale());
  const auto decoded = f.encoder->decode(pt);
  EXPECT_LT(max_error(z, decoded), 1e-7);
}

TEST(CkksEncoder, ZeroPaddingAndScalar) {
  CkksFixture f(CkksParams::toy(1024, 2, 1));
  std::vector<Complex> partial = {{1.0, 0.0}, {2.0, -1.0}};
  const Plaintext pt = f.encoder->encode(std::span<const Complex>(partial), 2,
                                         f.ctx->params().scale());
  const auto decoded = f.encoder->decode(pt);
  EXPECT_NEAR(std::abs(decoded[0] - partial[0]), 0.0, 1e-7);
  EXPECT_NEAR(std::abs(decoded[1] - partial[1]), 0.0, 1e-7);
  for (std::size_t i = 2; i < decoded.size(); ++i) {
    EXPECT_LT(std::abs(decoded[i]), 1e-7);
  }

  const Plaintext ps = f.encoder->encode_scalar({0.5, 0.25}, 2, f.ctx->params().scale());
  const auto ds = f.encoder->decode(ps);
  for (const Complex& v : ds) EXPECT_LT(std::abs(v - Complex{0.5, 0.25}), 1e-7);
}

TEST(CkksEncoder, RejectsBadArguments) {
  CkksFixture f(CkksParams::toy(1024, 2, 1));
  std::vector<Complex> too_many(f.encoder->slots() + 1);
  EXPECT_THROW(
      f.encoder->encode(std::span<const Complex>(too_many), 2, 1024.0),
      std::invalid_argument);
  std::vector<Complex> ok(4);
  EXPECT_THROW(f.encoder->encode(std::span<const Complex>(ok), 2, -1.0),
               std::invalid_argument);
}

TEST(Ckks, EncryptDecryptRoundTrip) {
  CkksFixture f(CkksParams::toy(1024, 3, 1));
  const auto z = random_message(f.encoder->slots(), 2);
  const Plaintext pt = f.encoder->encode(std::span<const Complex>(z), 3,
                                         f.ctx->params().scale());
  const Ciphertext ct = f.encryptor->encrypt(pt);
  const auto decrypted = f.decryptor->decrypt(ct, *f.encoder);
  EXPECT_LT(max_error(z, decrypted), 1e-5);
}

TEST(Ckks, HomomorphicAddSub) {
  CkksFixture f(CkksParams::toy(1024, 3, 1));
  const auto za = random_message(f.encoder->slots(), 3);
  const auto zb = random_message(f.encoder->slots(), 4);
  const double scale = f.ctx->params().scale();
  const Ciphertext ca = f.encryptor->encrypt(f.encoder->encode(std::span<const Complex>(za), 3, scale));
  const Ciphertext cb = f.encryptor->encrypt(f.encoder->encode(std::span<const Complex>(zb), 3, scale));

  std::vector<Complex> sum(za.size()), diff(za.size());
  for (std::size_t i = 0; i < za.size(); ++i) {
    sum[i] = za[i] + zb[i];
    diff[i] = za[i] - zb[i];
  }
  EXPECT_LT(max_error(sum, f.decryptor->decrypt(f.evaluator->add(ca, cb), *f.encoder)), 1e-5);
  EXPECT_LT(max_error(diff, f.decryptor->decrypt(f.evaluator->sub(ca, cb), *f.encoder)), 1e-5);

  std::vector<Complex> neg(za.size());
  for (std::size_t i = 0; i < za.size(); ++i) neg[i] = -za[i];
  EXPECT_LT(max_error(neg, f.decryptor->decrypt(f.evaluator->negate(ca), *f.encoder)), 1e-5);
}

TEST(Ckks, AddPlainAndMulPlainWithRescale) {
  CkksFixture f(CkksParams::toy(1024, 3, 1));
  const double scale = f.ctx->params().scale();
  const auto z = random_message(f.encoder->slots(), 5);
  const auto w = random_message(f.encoder->slots(), 6);
  const Ciphertext ct = f.encryptor->encrypt(f.encoder->encode(std::span<const Complex>(z), 3, scale));
  const Plaintext pw = f.encoder->encode(std::span<const Complex>(w), 3, scale);

  std::vector<Complex> sum(z.size()), prod(z.size());
  for (std::size_t i = 0; i < z.size(); ++i) {
    sum[i] = z[i] + w[i];
    prod[i] = z[i] * w[i];
  }
  EXPECT_LT(max_error(sum, f.decryptor->decrypt(f.evaluator->add_plain(ct, pw), *f.encoder)), 1e-5);

  Ciphertext cprod = f.evaluator->mul_plain(ct, pw);
  EXPECT_DOUBLE_EQ(cprod.scale, scale * scale);
  cprod = f.evaluator->rescale(cprod);
  EXPECT_EQ(cprod.level, 2u);
  EXPECT_LT(max_error(prod, f.decryptor->decrypt(cprod, *f.encoder)), 1e-4);
}

TEST(Ckks, CiphertextMultiplyWithRelin) {
  CkksFixture f(CkksParams::toy(1024, 4, 2));
  const double scale = f.ctx->params().scale();
  const RelinKeys rk = f.keygen->make_relin_keys();
  const auto za = random_message(f.encoder->slots(), 7);
  const auto zb = random_message(f.encoder->slots(), 8);
  const Ciphertext ca = f.encryptor->encrypt(f.encoder->encode(std::span<const Complex>(za), 4, scale));
  const Ciphertext cb = f.encryptor->encrypt(f.encoder->encode(std::span<const Complex>(zb), 4, scale));

  Ciphertext prod = f.evaluator->multiply(ca, cb, rk);
  prod = f.evaluator->rescale(prod);

  std::vector<Complex> expected(za.size());
  for (std::size_t i = 0; i < za.size(); ++i) expected[i] = za[i] * zb[i];
  EXPECT_LT(max_error(expected, f.decryptor->decrypt(prod, *f.encoder)), 1e-3);
}

TEST(Ckks, MultiplicationDepthChain) {
  // Three successive multiplications down the moduli chain: z^8.
  CkksFixture f(CkksParams::toy(1024, 4, 2));
  const double scale = f.ctx->params().scale();
  const RelinKeys rk = f.keygen->make_relin_keys();
  const auto z = random_message(f.encoder->slots(), 9, /*mag=*/0.9);
  Ciphertext ct = f.encryptor->encrypt(f.encoder->encode(std::span<const Complex>(z), 4, scale));

  std::vector<Complex> expected = z;
  for (int depth = 0; depth < 3; ++depth) {
    ct = f.evaluator->rescale(f.evaluator->multiply(ct, ct, rk));
    for (Complex& v : expected) v *= v;
  }
  EXPECT_EQ(ct.level, 1u);
  EXPECT_LT(max_error(expected, f.decryptor->decrypt(ct, *f.encoder)), 5e-2);
}

TEST(Ckks, RotationMatchesCyclicShift) {
  CkksFixture f(CkksParams::toy(1024, 3, 1));
  const double scale = f.ctx->params().scale();
  const GaloisKeys gk = f.keygen->make_galois_keys({1, 3, -1});
  const auto z = random_message(f.encoder->slots(), 10);
  const Ciphertext ct = f.encryptor->encrypt(f.encoder->encode(std::span<const Complex>(z), 3, scale));

  for (int steps : {1, 3, -1}) {
    const Ciphertext rotated = f.evaluator->rotate(ct, steps, gk);
    const auto decrypted = f.decryptor->decrypt(rotated, *f.encoder);
    const std::size_t num_slots = f.encoder->slots();
    for (std::size_t i = 0; i < num_slots; ++i) {
      const std::size_t src = (i + static_cast<std::size_t>(
                                       (steps % static_cast<int>(num_slots) +
                                        static_cast<int>(num_slots))) ) % num_slots;
      EXPECT_LT(std::abs(decrypted[i] - z[src]), 1e-3)
          << "steps=" << steps << " slot=" << i;
    }
  }
}

TEST(Ckks, RotateByZeroIsIdentity) {
  CkksFixture f(CkksParams::toy(1024, 2, 1));
  const auto z = random_message(f.encoder->slots(), 11);
  const Ciphertext ct = f.encryptor->encrypt(
      f.encoder->encode(std::span<const Complex>(z), 2, f.ctx->params().scale()));
  GaloisKeys gk;  // rotation by 0 needs no key
  const Ciphertext same = f.evaluator->rotate(ct, 0, gk);
  EXPECT_LT(max_error(f.decryptor->decrypt(ct, *f.encoder),
                      f.decryptor->decrypt(same, *f.encoder)),
            1e-9);
}

TEST(Ckks, ConjugateConjugatesSlots) {
  CkksFixture f(CkksParams::toy(1024, 3, 1));
  const GaloisKeys gk = f.keygen->make_galois_keys({}, /*include_conjugate=*/true);
  const auto z = random_message(f.encoder->slots(), 12);
  const Ciphertext ct = f.encryptor->encrypt(
      f.encoder->encode(std::span<const Complex>(z), 3, f.ctx->params().scale()));
  const auto decrypted = f.decryptor->decrypt(f.evaluator->conjugate(ct, gk), *f.encoder);
  for (std::size_t i = 0; i < z.size(); ++i) {
    EXPECT_LT(std::abs(decrypted[i] - std::conj(z[i])), 1e-3);
  }
}

TEST(Ckks, ModDropPreservesMessage) {
  CkksFixture f(CkksParams::toy(1024, 4, 2));
  const auto z = random_message(f.encoder->slots(), 13);
  const Ciphertext ct = f.encryptor->encrypt(
      f.encoder->encode(std::span<const Complex>(z), 4, f.ctx->params().scale()));
  const Ciphertext dropped = f.evaluator->mod_drop(ct, 2);
  EXPECT_EQ(dropped.level, 2u);
  EXPECT_LT(max_error(z, f.decryptor->decrypt(dropped, *f.encoder)), 1e-4);
  EXPECT_THROW(f.evaluator->mod_drop(ct, 0), std::invalid_argument);
  EXPECT_THROW(f.evaluator->mod_drop(dropped, 3), std::invalid_argument);
}

TEST(Ckks, MismatchChecksThrow) {
  CkksFixture f(CkksParams::toy(1024, 4, 2));
  const double scale = f.ctx->params().scale();
  const auto z = random_message(f.encoder->slots(), 14);
  const Ciphertext a = f.encryptor->encrypt(f.encoder->encode(std::span<const Complex>(z), 4, scale));
  const Ciphertext b = f.evaluator->mod_drop(a, 3);
  EXPECT_THROW(f.evaluator->add(a, b), std::invalid_argument);
  Ciphertext scaled = a;
  scaled.scale *= 2;
  EXPECT_THROW(f.evaluator->add(a, scaled), std::invalid_argument);
  EXPECT_THROW(f.evaluator->rescale(f.evaluator->mod_drop(a, 1)), std::invalid_argument);
  GaloisKeys empty;
  EXPECT_THROW(f.evaluator->rotate(a, 2, empty), std::invalid_argument);
  EXPECT_THROW(f.evaluator->conjugate(a, empty), std::invalid_argument);
}

TEST(Ckks, DnumVariantsAllWork) {
  // The paper sweeps dnum (Fig. 1); every decomposition must stay correct.
  for (std::size_t dnum : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    CkksFixture f(CkksParams::toy(1024, 4, dnum));
    const double scale = f.ctx->params().scale();
    const RelinKeys rk = f.keygen->make_relin_keys();
    const auto z = random_message(f.encoder->slots(), 15 + dnum, 0.9);
    const Ciphertext ct = f.encryptor->encrypt(
        f.encoder->encode(std::span<const Complex>(z), 4, scale));
    Ciphertext sq = f.evaluator->rescale(f.evaluator->multiply(ct, ct, rk));
    std::vector<Complex> expected(z.size());
    for (std::size_t i = 0; i < z.size(); ++i) expected[i] = z[i] * z[i];
    EXPECT_LT(max_error(expected, f.decryptor->decrypt(sq, *f.encoder)), 1e-2)
        << "dnum=" << dnum;
  }
}

TEST(Ckks, KeyswitchAtLowerLevelAfterRescale) {
  // Rotation after two rescales exercises the truncated-digit path.
  CkksFixture f(CkksParams::toy(1024, 4, 2));
  const double scale = f.ctx->params().scale();
  const RelinKeys rk = f.keygen->make_relin_keys();
  const GaloisKeys gk = f.keygen->make_galois_keys({2});
  const auto z = random_message(f.encoder->slots(), 20, 0.9);
  Ciphertext ct = f.encryptor->encrypt(f.encoder->encode(std::span<const Complex>(z), 4, scale));
  ct = f.evaluator->rescale(f.evaluator->multiply(ct, ct, rk));
  ct = f.evaluator->rescale(f.evaluator->multiply(ct, ct, rk));
  ASSERT_EQ(ct.level, 2u);
  const Ciphertext rotated = f.evaluator->rotate(ct, 2, gk);
  const auto decrypted = f.decryptor->decrypt(rotated, *f.encoder);
  const std::size_t num_slots = f.encoder->slots();
  for (std::size_t i = 0; i < num_slots; ++i) {
    const Complex expected = std::pow(z[(i + 2) % num_slots], 4);
    EXPECT_LT(std::abs(decrypted[i] - expected), 5e-2) << i;
  }
}

}  // namespace
}  // namespace alchemist::ckks
