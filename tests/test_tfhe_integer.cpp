#include <gtest/gtest.h>

#include "common/rng.h"
#include "tfhe/integer.h"

namespace alchemist::tfhe {
namespace {

struct IntFixture {
  Rng rng{99};
  TfheParams params = TfheParams::toy();
  LweKey lwe_key;
  TrlweKey trlwe_key;
  BootstrapContext ctx;

  IntFixture() {
    lwe_key = lwe_keygen(params.n_lwe, rng);
    trlwe_key = trlwe_keygen(params, rng);
    ctx = make_bootstrap_context(params, lwe_key, trlwe_key, rng);
  }

  EncInt enc(u64 v, std::size_t w) {
    return encrypt_int(v, w, lwe_key, params.lwe_sigma, rng);
  }
  u64 dec(const EncInt& v) { return decrypt_int(v, lwe_key); }
};

IntFixture& fx() {
  static IntFixture f;
  return f;
}

TEST(EncIntTest, EncryptDecryptRoundTrip) {
  IntFixture& f = fx();
  for (u64 v : {u64{0}, u64{1}, u64{42}, u64{255}, u64{170}}) {
    EXPECT_EQ(f.dec(f.enc(v, 8)), v);
  }
  // Truncation to width.
  EXPECT_EQ(f.dec(f.enc(0x1FF, 8)), 0xFFu);
}

TEST(EncIntTest, TrivialConstant) {
  IntFixture& f = fx();
  const EncInt t = trivial_int(0xA5, 8, f.params.n_lwe);
  EXPECT_EQ(f.dec(t), 0xA5u);
}

TEST(EncIntTest, AdditionWithWraparound) {
  IntFixture& f = fx();
  const struct { u64 a, b; } cases[] = {{3, 5}, {200, 100}, {255, 1}, {0, 0}, {127, 128}};
  for (const auto& c : cases) {
    EXPECT_EQ(f.dec(add(f.enc(c.a, 8), f.enc(c.b, 8), f.ctx)), (c.a + c.b) & 0xFF)
        << c.a << "+" << c.b;
  }
}

TEST(EncIntTest, SubtractionTwosComplement) {
  IntFixture& f = fx();
  const struct { u64 a, b; } cases[] = {{9, 5}, {5, 9}, {0, 1}, {255, 255}};
  for (const auto& c : cases) {
    EXPECT_EQ(f.dec(sub(f.enc(c.a, 8), f.enc(c.b, 8), f.ctx)), (c.a - c.b) & 0xFF)
        << c.a << "-" << c.b;
  }
}

TEST(EncIntTest, Comparisons) {
  IntFixture& f = fx();
  const struct { u64 a, b; } cases[] = {{3, 7}, {7, 3}, {5, 5}, {0, 255}, {128, 127}};
  for (const auto& c : cases) {
    EXPECT_EQ(decrypt_bit(less_than(f.enc(c.a, 8), f.enc(c.b, 8), f.ctx), f.lwe_key),
              c.a < c.b)
        << c.a << "<" << c.b;
    EXPECT_EQ(decrypt_bit(equal(f.enc(c.a, 8), f.enc(c.b, 8), f.ctx), f.lwe_key),
              c.a == c.b)
        << c.a << "==" << c.b;
  }
}

TEST(EncIntTest, SelectAndMax) {
  IntFixture& f = fx();
  const EncInt a = f.enc(77, 8);
  const EncInt b = f.enc(33, 8);
  const LweSample yes = encrypt_bit(true, f.lwe_key, f.params.lwe_sigma, f.rng);
  const LweSample no = encrypt_bit(false, f.lwe_key, f.params.lwe_sigma, f.rng);
  EXPECT_EQ(f.dec(select(yes, a, b, f.ctx)), 77u);
  EXPECT_EQ(f.dec(select(no, a, b, f.ctx)), 33u);
  EXPECT_EQ(f.dec(max_int(a, b, f.ctx)), 77u);
  EXPECT_EQ(f.dec(max_int(b, a, f.ctx)), 77u);
}

TEST(EncIntTest, MultiplicationTruncated) {
  IntFixture& f = fx();
  const struct { u64 a, b; } cases[] = {{3, 5}, {12, 11}, {16, 16}, {0, 200}};
  for (const auto& c : cases) {
    EXPECT_EQ(f.dec(mul(f.enc(c.a, 8), f.enc(c.b, 8), f.ctx)), (c.a * c.b) & 0xFF)
        << c.a << "*" << c.b;
  }
}

TEST(EncIntTest, RandomizedPropertySweep) {
  IntFixture& f = fx();
  Rng rng(2026);
  for (int trial = 0; trial < 6; ++trial) {
    const u64 a = rng.uniform(16), b = rng.uniform(16);
    const EncInt ea = f.enc(a, 4), eb = f.enc(b, 4);
    EXPECT_EQ(f.dec(add(ea, eb, f.ctx)), (a + b) & 0xF);
    EXPECT_EQ(f.dec(sub(ea, eb, f.ctx)), (a - b) & 0xF);
    EXPECT_EQ(decrypt_bit(less_than(ea, eb, f.ctx), f.lwe_key), a < b);
  }
}

TEST(EncIntTest, WidthMismatchThrows) {
  IntFixture& f = fx();
  EXPECT_THROW(add(f.enc(1, 8), f.enc(1, 4), f.ctx), std::invalid_argument);
  EXPECT_THROW(less_than(f.enc(1, 8), f.enc(1, 4), f.ctx), std::invalid_argument);
  EncInt empty;
  EXPECT_THROW(add(empty, empty, f.ctx), std::invalid_argument);
}

}  // namespace
}  // namespace alchemist::tfhe
