// Property sweeps across parameter grids: every supported parameter set must
// keep the schemes correct, not just the defaults the other tests use.
#include <gtest/gtest.h>

#include <memory>

#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keygen.h"
#include "common/rng.h"
#include "tfhe/bootstrap.h"
#include "metaop/mult_count.h"
#include "workloads/bfv_workloads.h"
#include "workloads/ckks_workloads.h"
#include "workloads/tfhe_workloads.h"

namespace alchemist {
namespace {

// ---------------- CKKS grid ----------------

struct CkksGridParam {
  std::size_t n;
  std::size_t levels;
  std::size_t dnum;
  std::size_t hamming;  // 0 = dense
};

class CkksGrid : public ::testing::TestWithParam<CkksGridParam> {};

TEST_P(CkksGrid, EncryptMultiplyRotateStaysAccurate) {
  const auto [n, levels, dnum, hamming] = GetParam();
  ckks::CkksParams params = ckks::CkksParams::toy(n, levels, dnum);
  params.secret_hamming_weight = hamming;
  auto ctx = std::make_shared<ckks::CkksContext>(params);
  ckks::CkksEncoder encoder(ctx);
  ckks::KeyGenerator keygen(ctx, 100 + n + levels);
  ckks::Encryptor encryptor(ctx, keygen.make_public_key());
  ckks::Decryptor decryptor(ctx, keygen.secret_key());
  ckks::Evaluator evaluator(ctx);
  const ckks::RelinKeys rk = keygen.make_relin_keys();
  const ckks::GaloisKeys gk = keygen.make_galois_keys({1});

  Rng rng(n * 31 + levels);
  std::vector<double> z(encoder.slots());
  for (double& v : z) v = 0.9 * (2 * rng.uniform_real() - 1);
  const ckks::Ciphertext ct = encryptor.encrypt(
      encoder.encode(std::span<const double>(z), levels, params.scale()));

  // Round trip.
  auto dec = decryptor.decrypt(ct, encoder);
  for (std::size_t i = 0; i < z.size(); ++i) {
    ASSERT_NEAR(dec[i].real(), z[i], 1e-4) << "roundtrip slot " << i;
  }
  // Square.
  dec = decryptor.decrypt(evaluator.rescale(evaluator.multiply(ct, ct, rk)), encoder);
  for (std::size_t i = 0; i < z.size(); ++i) {
    ASSERT_NEAR(dec[i].real(), z[i] * z[i], 5e-3) << "square slot " << i;
  }
  // Rotate.
  dec = decryptor.decrypt(evaluator.rotate(ct, 1, gk), encoder);
  for (std::size_t i = 0; i + 1 < z.size(); i += 97) {
    ASSERT_NEAR(dec[i].real(), z[(i + 1) % z.size()], 5e-3) << "rotate slot " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CkksGrid,
    ::testing::Values(CkksGridParam{512, 3, 1, 0}, CkksGridParam{1024, 4, 2, 0},
                      CkksGridParam{1024, 6, 3, 0}, CkksGridParam{2048, 4, 2, 0},
                      CkksGridParam{2048, 8, 4, 0}, CkksGridParam{1024, 4, 4, 0},
                      CkksGridParam{1024, 4, 2, 64}));

// ---------------- TFHE grid ----------------

struct TfheGridParam {
  std::size_t degree;
  int bg_bits;
  std::size_t l;
};

class TfheGrid : public ::testing::TestWithParam<TfheGridParam> {};

TEST_P(TfheGrid, GateBootstrapCorrectAcrossDecompositions) {
  const auto [degree, bg_bits, l] = GetParam();
  tfhe::TfheParams params = tfhe::TfheParams::toy();
  params.degree = degree;
  params.bg_bits = bg_bits;
  params.l = l;
  Rng rng(degree + static_cast<u64>(bg_bits));
  const tfhe::LweKey lwe_key = tfhe::lwe_keygen(params.n_lwe, rng);
  const tfhe::TrlweKey trlwe_key = tfhe::trlwe_keygen(params, rng);
  const tfhe::BootstrapContext ctx =
      tfhe::make_bootstrap_context(params, lwe_key, trlwe_key, rng);

  for (bool a : {false, true}) {
    for (bool b : {false, true}) {
      const auto ea = tfhe::encrypt_bit(a, lwe_key, params.lwe_sigma, rng);
      const auto eb = tfhe::encrypt_bit(b, lwe_key, params.lwe_sigma, rng);
      ASSERT_EQ(tfhe::decrypt_bit(tfhe::gate_nand(ea, eb, ctx), lwe_key), !(a && b))
          << degree << "/" << bg_bits << "/" << l;
      ASSERT_EQ(tfhe::decrypt_bit(tfhe::gate_xor(ea, eb, ctx), lwe_key), a != b)
          << degree << "/" << bg_bits << "/" << l;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, TfheGrid,
                         ::testing::Values(TfheGridParam{64, 8, 4},
                                           TfheGridParam{128, 7, 3},
                                           TfheGridParam{256, 6, 5},
                                           TfheGridParam{128, 4, 8},
                                           TfheGridParam{64, 12, 3}));

// ---------------- Workload-generator grid ----------------

class WorkloadLevelGrid : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WorkloadLevelGrid, GraphsValidAtEveryLevel) {
  const std::size_t level = GetParam();
  const workloads::CkksWl w = workloads::CkksWl::paper(level);
  for (const auto& g : {workloads::build_keyswitch(w), workloads::build_cmult(w),
                        workloads::build_rotation(w)}) {
    for (std::size_t i = 0; i < g.ops.size(); ++i) {
      for (std::size_t dep : g.ops[i].deps) {
        ASSERT_LT(dep, i) << g.name << " level " << level;
      }
    }
    ASSERT_GT(metaop::count(g).meta, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, WorkloadLevelGrid,
                         ::testing::Values(2, 3, 8, 11, 12, 23, 33, 44));

}  // namespace
}  // namespace alchemist
