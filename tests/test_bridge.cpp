#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "bridge/scheme_switch.h"
#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keygen.h"
#include "common/rng.h"

namespace alchemist::bridge {
namespace {

// CKKS parameters tuned for switching: Delta/q0 = 2^-3 keeps the bridged
// torus message within PBS margins for |z| up to ~1.
ckks::CkksParams bridge_params() {
  ckks::CkksParams p = ckks::CkksParams::toy(1024, 3, 1);
  p.first_prime_bits = 48;
  p.log_scale = 45;
  p.prime_bits = 45;
  return p;
}

struct BridgeFixture {
  ckks::ContextPtr ctx;
  std::unique_ptr<ckks::CkksEncoder> encoder;
  std::unique_ptr<ckks::KeyGenerator> keygen;
  std::unique_ptr<ckks::Encryptor> encryptor;
  std::unique_ptr<ckks::Decryptor> decryptor;
  std::unique_ptr<ckks::Evaluator> evaluator;
  Rng rng{2025};
  tfhe::TfheParams tfhe_params = tfhe::TfheParams::toy();
  tfhe::LweKey tfhe_key;
  tfhe::TrlweKey trlwe_key;
  tfhe::BootstrapContext boot_ctx;
  tfhe::KeySwitchKey bridge_key;

  BridgeFixture() {
    ctx = std::make_shared<ckks::CkksContext>(bridge_params());
    encoder = std::make_unique<ckks::CkksEncoder>(ctx);
    keygen = std::make_unique<ckks::KeyGenerator>(ctx, 12);
    encryptor = std::make_unique<ckks::Encryptor>(ctx, keygen->make_public_key());
    decryptor = std::make_unique<ckks::Decryptor>(ctx, keygen->secret_key());
    evaluator = std::make_unique<ckks::Evaluator>(ctx);
    tfhe_key = tfhe::lwe_keygen(tfhe_params.n_lwe, rng);
    trlwe_key = tfhe::trlwe_keygen(tfhe_params, rng);
    boot_ctx = tfhe::make_bootstrap_context(tfhe_params, tfhe_key, trlwe_key, rng);
    bridge_key = make_bridge_key(*ctx, keygen->secret_key(), tfhe_key, tfhe_params, rng);
  }

  // Level-1 ciphertext with z at coefficient 0 (constant encoding).
  ckks::Ciphertext constant_ct(double z) {
    const ckks::Ciphertext fresh = encryptor->encrypt(
        encoder->encode_constant(z, ctx->params().num_levels, ctx->params().scale()));
    return evaluator->mod_drop(fresh, 1);
  }
};

BridgeFixture& fx() {
  static BridgeFixture f;
  return f;
}

TEST(Bridge, CkksSecretExtractsAsTernaryLweKey) {
  BridgeFixture& f = fx();
  const tfhe::LweKey key = ckks_lwe_secret(*f.ctx, f.keygen->secret_key());
  ASSERT_EQ(key.s.size(), f.ctx->degree());
  int nonzero = 0;
  for (int bit : key.s) {
    EXPECT_GE(bit, -1);
    EXPECT_LE(bit, 1);
    nonzero += bit != 0;
  }
  // Dense ternary: about two thirds of the coefficients are nonzero.
  EXPECT_GT(nonzero, static_cast<int>(f.ctx->degree() / 2));
}

TEST(Bridge, ExtractedLwePhaseMatchesCkksCoefficient) {
  BridgeFixture& f = fx();
  const tfhe::LweKey ckks_key = ckks_lwe_secret(*f.ctx, f.keygen->secret_key());
  const double q0 = static_cast<double>(f.ctx->q_moduli()[0]);
  for (double z : {0.5, -0.5, 0.9, -0.25}) {
    const ckks::Ciphertext ct = f.constant_ct(z);
    const std::vector<double> coeffs = f.decryptor->decrypt_coeffs(ct);
    const tfhe::LweSample lwe = extract_lwe(*f.ctx, ct, 0);
    const double phase = tfhe::torus_to_double(tfhe::lwe_phase(lwe, ckks_key));
    EXPECT_NEAR(phase, coeffs[0] / q0, 1e-6) << z;
    // The bridged value is z * Delta / q0 = z / 8.
    EXPECT_NEAR(phase, z / 8.0, 1e-3) << z;
  }
}

TEST(Bridge, KeyswitchToTfheKeyPreservesMessage) {
  BridgeFixture& f = fx();
  for (double z : {0.75, -0.75}) {
    const ckks::Ciphertext ct = f.constant_ct(z);
    const tfhe::LweSample switched = switch_to_tfhe(*f.ctx, ct, 0, f.bridge_key);
    EXPECT_EQ(switched.dimension(), f.tfhe_params.n_lwe);
    const double phase = tfhe::torus_to_double(tfhe::lwe_phase(switched, f.tfhe_key));
    EXPECT_NEAR(phase, z / 8.0, 2e-3) << z;
  }
}

TEST(Bridge, EndToEndSignViaPbs) {
  // The motivating pipeline: CKKS arithmetic, bridge, TFHE comparison.
  BridgeFixture& f = fx();
  const tfhe::TorusPoly sign_tv =
      tfhe::make_constant_test_poly(f.tfhe_params.degree, u64{1} << 61);
  for (double z : {0.9, 0.3, -0.3, -0.9}) {
    // Homomorphic CKKS work first: (z + z) / 2 keeps the value but exercises
    // real arithmetic before the switch.
    ckks::Ciphertext ct = f.encryptor->encrypt(f.encoder->encode_constant(
        z, f.ctx->params().num_levels, f.ctx->params().scale()));
    ct = f.evaluator->add(ct, ct);
    ct = f.evaluator->rescale(f.evaluator->mul_scalar(ct, 0.5, *f.encoder, ct.scale));
    ct = f.evaluator->mod_drop(ct, 1);

    const tfhe::LweSample bridged = switch_to_tfhe(*f.ctx, ct, 0, f.bridge_key);
    const tfhe::LweSample decision =
        tfhe::programmable_bootstrap(bridged, sign_tv, f.boot_ctx);
    EXPECT_EQ(tfhe::decrypt_bit(decision, f.tfhe_key), z > 0) << z;
  }
}

TEST(Bridge, RejectsWrongLevelAndIndex) {
  BridgeFixture& f = fx();
  const ckks::Ciphertext fresh = f.encryptor->encrypt(f.encoder->encode_constant(
      0.5, f.ctx->params().num_levels, f.ctx->params().scale()));
  EXPECT_THROW(extract_lwe(*f.ctx, fresh, 0), std::invalid_argument);
  const ckks::Ciphertext low = f.evaluator->mod_drop(fresh, 1);
  EXPECT_THROW(extract_lwe(*f.ctx, low, f.ctx->degree()), std::invalid_argument);
}

}  // namespace
}  // namespace alchemist::bridge
