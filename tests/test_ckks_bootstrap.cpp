#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "ckks/bootstrap.h"
#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keygen.h"
#include "common/rng.h"

namespace alchemist::ckks {
namespace {

using Complex = std::complex<double>;

// Reduced-degree pipeline parameters: N=128 (64 slots), 20 levels (the
// pipeline consumes 16: 2 CtS + 12 EvalMod + 2 StC).
CkksParams bootstrap_params() {
  CkksParams p = CkksParams::toy(128, 20, 4);
  // Bootstrapping-grade settings: large scale (q0/Delta = 2^5 keeps the sine
  // amplification small) and a sparse secret (|I| <~ 4*sqrt((h+1)/12) ~ 7).
  p.prime_bits = 45;
  p.log_scale = 45;
  p.secret_hamming_weight = 32;
  return p;
}

struct BootFixture {
  ContextPtr ctx;
  std::unique_ptr<CkksEncoder> encoder;
  std::unique_ptr<KeyGenerator> keygen;
  std::unique_ptr<Encryptor> encryptor;
  std::unique_ptr<Decryptor> decryptor;
  std::unique_ptr<Evaluator> evaluator;
  RelinKeys relin;
  GaloisKeys galois;
  std::unique_ptr<Bootstrapper> boot;

  BootFixture() {
    const CkksParams params = bootstrap_params();
    ctx = std::make_shared<CkksContext>(params);
    encoder = std::make_unique<CkksEncoder>(ctx);
    keygen = std::make_unique<KeyGenerator>(ctx, 31);
    encryptor = std::make_unique<Encryptor>(ctx, keygen->make_public_key());
    decryptor = std::make_unique<Decryptor>(ctx, keygen->secret_key());
    evaluator = std::make_unique<Evaluator>(ctx);
    relin = keygen->make_relin_keys();
    galois = keygen->make_galois_keys(Bootstrapper::required_rotations(*ctx),
                                      /*include_conjugate=*/true);
    BootstrapConfig config;
    config.i_bound = 9.0;
    config.sine_degree = 140;
    boot = std::make_unique<Bootstrapper>(ctx, *encoder, *evaluator, relin, galois,
                                          config);
  }

  Ciphertext exhausted_ciphertext(const std::vector<double>& z) const {
    const Ciphertext fresh = encryptor->encrypt(encoder->encode(
        std::span<const double>(z), ctx->params().num_levels, ctx->params().scale()));
    return evaluator->mod_drop(fresh, 1);
  }
};

BootFixture& fixture() {
  static BootFixture f;  // key material is expensive; share across tests
  return f;
}

std::vector<double> test_message(std::size_t slots) {
  Rng rng(77);
  std::vector<double> z(slots);
  for (double& v : z) v = 0.9 * (2 * rng.uniform_real() - 1);
  return z;
}

TEST(CkksBootstrap, ModRaisePreservesResiduesModQ0) {
  BootFixture& f = fixture();
  const auto z = test_message(f.encoder->slots());
  const Ciphertext low = f.exhausted_ciphertext(z);
  const std::vector<double> low_coeffs = f.decryptor->decrypt_coeffs(low);

  const Ciphertext raised = f.boot->mod_raise(low);
  EXPECT_EQ(raised.level, f.ctx->params().num_levels);
  const std::vector<double> raised_coeffs = f.decryptor->decrypt_coeffs(raised);

  const double q0 = static_cast<double>(f.ctx->q_moduli()[0]);
  double max_i = 0;
  for (std::size_t k = 0; k < raised_coeffs.size(); ++k) {
    const double diff = (raised_coeffs[k] - low_coeffs[k]) / q0;
    // The raised ciphertext decrypts to m + q0*I with integer I.
    EXPECT_LT(std::abs(diff - std::round(diff)), 1e-6) << k;
    max_i = std::max(max_i, std::abs(std::round(diff)));
  }
  // |I| must stay within the configured EvalMod range.
  EXPECT_LE(max_i, 9.0);
  EXPECT_GT(max_i, 0.0);  // the lift genuinely wraps
}

TEST(CkksBootstrap, CoeffToSlotExposesScaledCoefficients) {
  BootFixture& f = fixture();
  const auto z = test_message(f.encoder->slots());
  const Ciphertext raised = f.boot->mod_raise(f.exhausted_ciphertext(z));
  const std::vector<double> raised_coeffs = f.decryptor->decrypt_coeffs(raised);
  const double q0 = static_cast<double>(f.ctx->q_moduli()[0]);

  const auto [t_u, t_v] = f.boot->coeff_to_slot(raised);
  const auto u = f.decryptor->decrypt(t_u, *f.encoder);
  const auto v = f.decryptor->decrypt(t_v, *f.encoder);
  const std::size_t slots = f.encoder->slots();
  for (std::size_t j = 0; j < slots; ++j) {
    EXPECT_NEAR(u[j].real(), raised_coeffs[j] / q0, 2e-2) << j;
    EXPECT_NEAR(v[j].real(), raised_coeffs[j + slots] / q0, 2e-2) << j;
    EXPECT_LT(std::abs(u[j].imag()), 2e-2) << j;
  }
}

TEST(CkksBootstrap, EvalModComputesScaledSine) {
  BootFixture& f = fixture();
  // Fresh ciphertext with known t-values spanning the EvalMod range.
  std::vector<double> t = {-8.9, -5.0, -1.25, -0.01, 0.0, 0.02, 2.75, 7.5, 8.8};
  const Ciphertext ct = f.encryptor->encrypt(f.encoder->encode(
      std::span<const double>(t), f.ctx->params().num_levels, f.ctx->params().scale()));
  const Ciphertext out = f.boot->eval_mod(ct);
  const auto dec = f.decryptor->decrypt(out, *f.encoder);

  const double q0 = static_cast<double>(f.ctx->q_moduli()[0]);
  const double amp = q0 / (2.0 * M_PI * f.ctx->params().scale());
  for (std::size_t i = 0; i < t.size(); ++i) {
    const double expected = amp * std::sin(2 * M_PI * t[i]);
    EXPECT_NEAR(dec[i].real(), expected, 5e-3 * std::abs(amp) + 2e-3) << "t=" << t[i];
  }
}

TEST(CkksBootstrap, FullPipelineRefreshesCiphertext) {
  BootFixture& f = fixture();
  const auto z = test_message(f.encoder->slots());
  const Ciphertext low = f.exhausted_ciphertext(z);
  ASSERT_EQ(low.level, 1u);

  const Ciphertext refreshed = f.boot->bootstrap(low);
  // The whole point: the result sits at a *computable* level again.
  EXPECT_GT(refreshed.level, low.level);
  EXPECT_GE(refreshed.level, f.ctx->params().num_levels - f.boot->depth());

  const auto dec = f.decryptor->decrypt(refreshed, *f.encoder);
  double max_err = 0;
  for (std::size_t j = 0; j < z.size(); ++j) {
    max_err = std::max(max_err, std::abs(dec[j] - Complex{z[j], 0.0}));
  }
  EXPECT_LT(max_err, 5e-2) << "bootstrap precision";
}

TEST(CkksBootstrap, RefreshedCiphertextIsComputable) {
  BootFixture& f = fixture();
  const auto z = test_message(f.encoder->slots());
  const Ciphertext refreshed = f.boot->bootstrap(f.exhausted_ciphertext(z));

  // Squaring the refreshed ciphertext must work and be accurate — the
  // exhausted input could not support any further multiplication.
  const Ciphertext squared =
      f.evaluator->rescale(f.evaluator->multiply(refreshed, refreshed, f.relin));
  const auto dec = f.decryptor->decrypt(squared, *f.encoder);
  for (std::size_t j = 0; j < z.size(); ++j) {
    EXPECT_NEAR(dec[j].real(), z[j] * z[j], 0.1) << j;
  }
}

TEST(CkksBootstrap, RejectsWrongLevel) {
  BootFixture& f = fixture();
  const auto z = test_message(f.encoder->slots());
  const Ciphertext fresh = f.encryptor->encrypt(f.encoder->encode(
      std::span<const double>(z), f.ctx->params().num_levels, f.ctx->params().scale()));
  EXPECT_THROW(f.boot->mod_raise(fresh), std::invalid_argument);
}

}  // namespace
}  // namespace alchemist::ckks
