#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "arch/data_layout.h"
#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keygen.h"
#include "ckks/noise.h"
#include "common/primes.h"
#include "fault/fault_model.h"
#include "fault/injector.h"
#include "sim/alchemist_sim.h"
#include "sim/event_sim.h"
#include "workloads/ckks_workloads.h"

namespace alchemist {
namespace {

metaop::OpGraph keyswitch_graph(double stream_fraction = 0.0) {
  workloads::CkksWl w = workloads::CkksWl::paper(44);
  w.hbm_stream_fraction = stream_fraction;
  return workloads::build_keyswitch(w);
}

std::vector<std::size_t> first_units(std::size_t n) {
  std::vector<std::size_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = i;
  return ids;
}

TEST(FaultConfig, PolicyParsing) {
  EXPECT_EQ(fault::policy_from_string("none"), fault::Policy::None);
  EXPECT_EQ(fault::policy_from_string("detect-retry"), fault::Policy::DetectRetry);
  EXPECT_EQ(fault::policy_from_string("dmr"), fault::Policy::Dmr);
  EXPECT_THROW(fault::policy_from_string("bogus"), std::invalid_argument);
}

TEST(FaultModel, ValidatesConfig) {
  fault::FaultConfig bad_rate;
  bad_rate.compute_fault_rate = -0.1;
  EXPECT_THROW(fault::FaultModel(bad_rate, 128), std::invalid_argument);

  fault::FaultConfig bad_mask;
  bad_mask.masked_units = {128};
  EXPECT_THROW(fault::FaultModel(bad_mask, 128), std::invalid_argument);

  fault::FaultConfig all_masked;
  all_masked.masked_units = first_units(4);
  EXPECT_THROW(fault::FaultModel(all_masked, 4), std::invalid_argument);
}

TEST(FaultModel, InertWhenAllZero) {
  fault::FaultModel model(fault::FaultConfig{}, 128);
  EXPECT_FALSE(model.enabled());
  fault::FaultConfig dmr;
  dmr.policy = fault::Policy::Dmr;  // reserves shadow cores even with no rate
  EXPECT_TRUE(fault::FaultModel(dmr, 128).enabled());
}

TEST(FaultModel, SamplingIsSeedReproducible) {
  fault::FaultConfig fc;
  fc.seed = 99;
  fc.compute_fault_rate = 1e-6;
  fc.sram_fault_rate = 1e-7;
  fc.hbm_fault_rate = 1e-8;
  fault::FaultModel a(fc, 128);
  fault::FaultModel b(fc, 128);
  for (int i = 0; i < 64; ++i) {
    const auto fa = a.sample_op(1 << 20, 1 << 22, 1 << 24);
    const auto fb = b.sample_op(1 << 20, 1 << 22, 1 << 24);
    EXPECT_EQ(fa.compute, fb.compute);
    EXPECT_EQ(fa.sram, fb.sram);
    EXPECT_EQ(fa.hbm, fb.hbm);
  }
  // reset() re-arms the stream at the seed.
  a.reset();
  b.reset();
  const auto fa = a.sample_op(1 << 20, 1 << 22, 1 << 24);
  const auto fb = b.sample_op(1 << 20, 1 << 22, 1 << 24);
  EXPECT_EQ(fa.total(), fb.total());
}

TEST(DegradedSlotLayout, RepartitionsOverHealthyUnits) {
  arch::DegradedSlotLayout full(1 << 16, 128, {});
  EXPECT_EQ(full.healthy_units(), 128u);
  EXPECT_DOUBLE_EQ(full.padding_factor(), 1.0);

  arch::DegradedSlotLayout degraded(1 << 16, 128, {0, 5, 17});
  EXPECT_EQ(degraded.healthy_units(), 125u);
  EXPECT_FALSE(degraded.is_healthy(5));
  EXPECT_TRUE(degraded.is_healthy(1));
  EXPECT_GE(degraded.padding_factor(), 1.0);
  EXPECT_GE(degraded.padded_slots(), std::size_t{1} << 16);
  // Slot 0 lands on the first healthy unit, never a masked one.
  EXPECT_EQ(degraded.unit_of_slot(0), 1u);
  for (std::size_t s = 0; s < (std::size_t{1} << 16); s += 977) {
    EXPECT_TRUE(degraded.is_healthy(degraded.unit_of_slot(s)));
  }
  EXPECT_THROW(degraded.unit_of_slot(std::size_t{1} << 16), std::out_of_range);
  EXPECT_THROW(arch::DegradedSlotLayout(64, 2, {0, 1}), std::invalid_argument);
}

TEST(DegradedSlotLayout, SurvivesAllButOneUnitMasked) {
  // 127 of 128 units gone: the single survivor owns every slot.
  std::vector<std::size_t> mask;
  for (std::size_t u = 0; u < 128; ++u) {
    if (u != 77) mask.push_back(u);
  }
  const std::size_t n = 1 << 12;
  arch::DegradedSlotLayout one(n, 128, mask);
  EXPECT_EQ(one.healthy_units(), 1u);
  EXPECT_EQ(one.masked_units(), 127u);
  EXPECT_EQ(one.slots_per_unit(), n);
  EXPECT_EQ(one.padded_slots(), n);
  EXPECT_DOUBLE_EQ(one.padding_factor(), 1.0);  // one stripe, no remainder
  for (std::size_t s = 0; s < n; s += 501) EXPECT_EQ(one.unit_of_slot(s), 77u);
  EXPECT_EQ(one.unit_of_slot(n - 1), 77u);
}

TEST(DegradedSlotLayout, FullMaskIsATypedFailure) {
  // Masking every unit (including via duplicate ids) must throw, as must
  // out-of-range ids — never a silent empty stripe.
  std::vector<std::size_t> all;
  for (std::size_t u = 0; u < 16; ++u) all.push_back(u);
  EXPECT_THROW(arch::DegradedSlotLayout(1 << 10, 16, all), std::invalid_argument);
  all.push_back(0);  // duplicates still cover every unit
  EXPECT_THROW(arch::DegradedSlotLayout(1 << 10, 16, all), std::invalid_argument);
  EXPECT_THROW(arch::DegradedSlotLayout(1 << 10, 16, {16}), std::invalid_argument);
  EXPECT_THROW(arch::DegradedSlotLayout(1 << 10, 16, {1000}), std::invalid_argument);
}

TEST(DegradedSlotLayout, RestripingIsStableAcrossRepeatedConstruction) {
  // The stripe is a pure function of (n, total, mask): rebuilding the layout
  // (in any mask order, with duplicates) must reproduce the exact assignment.
  const std::size_t n = 1 << 14;
  arch::DegradedSlotLayout a(n, 64, {3, 9, 41, 63});
  arch::DegradedSlotLayout b(n, 64, {63, 41, 9, 3});
  arch::DegradedSlotLayout c(n, 64, {3, 3, 9, 9, 41, 63, 63});
  EXPECT_EQ(a.healthy_units(), 60u);
  EXPECT_EQ(b.healthy_units(), 60u);
  EXPECT_EQ(c.healthy_units(), 60u);
  EXPECT_EQ(a.slots_per_unit(), b.slots_per_unit());
  EXPECT_EQ(a.padding_factor(), b.padding_factor());
  for (std::size_t s = 0; s < n; ++s) {
    ASSERT_EQ(a.unit_of_slot(s), b.unit_of_slot(s)) << "slot " << s;
    ASSERT_EQ(a.unit_of_slot(s), c.unit_of_slot(s)) << "slot " << s;
  }
  // Slot ownership is monotone in the slot index (contiguous stripes).
  std::size_t prev = a.unit_of_slot(0);
  for (std::size_t s = 1; s < n; ++s) {
    const std::size_t u = a.unit_of_slot(s);
    ASSERT_GE(u, prev) << "stripe not contiguous at slot " << s;
    prev = u;
  }
}

TEST(FaultSim, ZeroRateIsBitIdenticalToNoModel) {
  const auto graph = keyswitch_graph(1.0);
  const arch::ArchConfig cfg = arch::ArchConfig::alchemist();
  const auto plain = sim::simulate_alchemist(graph, cfg);
  fault::FaultModel inert(fault::FaultConfig{}, cfg.num_units);
  const auto with_model = sim::simulate_alchemist(graph, cfg, nullptr, &inert);
  EXPECT_EQ(plain.cycles, with_model.cycles);
  EXPECT_EQ(plain.registry.counters(), with_model.registry.counters());
  EXPECT_EQ(plain.registry.gauges(), with_model.registry.gauges());

  const auto plain_ev = sim::simulate_alchemist_events(graph, cfg);
  fault::FaultModel inert2(fault::FaultConfig{}, cfg.num_units);
  const auto model_ev = sim::simulate_alchemist_events(graph, cfg, nullptr, &inert2);
  EXPECT_EQ(plain_ev.cycles, model_ev.cycles);
  EXPECT_EQ(plain_ev.registry.counters(), model_ev.registry.counters());
  EXPECT_EQ(plain_ev.registry.gauges(), model_ev.registry.gauges());
}

TEST(FaultSim, MaskedUnitsDegradeMonotonically) {
  // Compute-bound configuration (no key streaming) so lost cores show up in
  // the critical path; cycles must grow strictly with the mask on both
  // engines and every schedule must stay valid.
  const auto graph = keyswitch_graph(0.0);
  const arch::ArchConfig cfg = arch::ArchConfig::alchemist();
  const auto baseline = sim::simulate_alchemist(graph, cfg);
  std::uint64_t prev = baseline.cycles;
  std::uint64_t prev_ev = sim::simulate_alchemist_events(graph, cfg).cycles;
  for (std::size_t masked : {8, 16, 32}) {
    fault::FaultConfig fc;
    fc.masked_units = first_units(masked);
    fault::FaultModel model(fc, cfg.num_units);
    const auto r = sim::simulate_alchemist(graph, cfg, nullptr, &model);
    EXPECT_GT(r.cycles, prev) << masked << " masked units (level engine)";
    EXPECT_GT(r.time_us, 0.0);
    EXPECT_EQ(r.registry.counter(fault::metrics::kMaskedUnits), masked);
    prev = r.cycles;

    fault::FaultModel model_ev(fc, cfg.num_units);
    const auto rev = sim::simulate_alchemist_events(graph, cfg, nullptr, &model_ev);
    EXPECT_GT(rev.cycles, prev_ev) << masked << " masked units (event engine)";
    prev_ev = rev.cycles;
  }
}

TEST(FaultSim, FixedSeedRunsAreReproducible) {
  const auto graph = keyswitch_graph(1.0);
  const arch::ArchConfig cfg = arch::ArchConfig::alchemist();
  fault::FaultConfig fc;
  fc.seed = 0xfa117;
  fc.compute_fault_rate = fc.sram_fault_rate = fc.hbm_fault_rate = 1e-8;
  fc.policy = fault::Policy::DetectRetry;
  fault::FaultModel m1(fc, cfg.num_units);
  fault::FaultModel m2(fc, cfg.num_units);
  const auto r1 = sim::simulate_alchemist(graph, cfg, nullptr, &m1);
  const auto r2 = sim::simulate_alchemist(graph, cfg, nullptr, &m2);
  EXPECT_EQ(r1.cycles, r2.cycles);
  EXPECT_EQ(r1.registry.counters(), r2.registry.counters());
  EXPECT_GT(r1.registry.counter(fault::metrics::kInjected), 0u);

  // A different seed draws a different fault pattern.
  fc.seed = 1;
  fault::FaultModel m3(fc, cfg.num_units);
  const auto r3 = sim::simulate_alchemist(graph, cfg, nullptr, &m3);
  EXPECT_NE(r1.registry.counter(fault::metrics::kInjected),
            r3.registry.counter(fault::metrics::kInjected));
}

TEST(FaultSim, PoliciesPriceFaultsDifferently) {
  const auto graph = keyswitch_graph(0.0);
  const arch::ArchConfig cfg = arch::ArchConfig::alchemist();
  const auto baseline = sim::simulate_alchemist(graph, cfg);

  fault::FaultConfig fc;
  fc.compute_fault_rate = fc.sram_fault_rate = fc.hbm_fault_rate = 1e-8;

  // none: schedule unchanged, yield lost.
  fc.policy = fault::Policy::None;
  fault::FaultModel none_model(fc, cfg.num_units);
  const auto none_r = sim::simulate_alchemist(graph, cfg, nullptr, &none_model);
  EXPECT_EQ(none_r.cycles, baseline.cycles);
  EXPECT_GT(none_r.registry.counter(fault::metrics::kCorruptedOps), 0u);
  EXPECT_EQ(none_r.registry.counter(fault::metrics::kRetries), 0u);

  // detect-retry: yield preserved, cycles paid.
  fc.policy = fault::Policy::DetectRetry;
  fault::FaultModel retry_model(fc, cfg.num_units);
  const auto retry_r = sim::simulate_alchemist(graph, cfg, nullptr, &retry_model);
  EXPECT_GT(retry_r.cycles, baseline.cycles);
  EXPECT_GT(retry_r.registry.counter(fault::metrics::kRetries), 0u);
  EXPECT_GT(retry_r.registry.counter(fault::metrics::kRetryCycles), 0u);
  EXPECT_EQ(retry_r.registry.counter(fault::metrics::kCorruptedOps), 0u);

  // dmr: halved cores cost cycles even before any fault lands.
  fc.policy = fault::Policy::Dmr;
  fc.compute_fault_rate = fc.sram_fault_rate = fc.hbm_fault_rate = 0.0;
  fault::FaultModel dmr_model(fc, cfg.num_units);
  const auto dmr_r = sim::simulate_alchemist(graph, cfg, nullptr, &dmr_model);
  EXPECT_GT(dmr_r.cycles, baseline.cycles);
}

TEST(FaultInjector, CorruptsExactlyOneResidue) {
  const auto moduli = generate_ntt_primes(30, 64, 3);
  RnsPoly p(64, moduli);
  RnsPoly q = p;
  fault::Injector injector(7);
  const auto [channel, index] = injector.corrupt(q);
  EXPECT_LT(channel, q.num_channels());
  EXPECT_LT(index, q.degree());
  EXPECT_NE(fault::poly_checksum(p), fault::poly_checksum(q));
  std::size_t diffs = 0;
  for (std::size_t c = 0; c < p.num_channels(); ++c) {
    for (std::size_t i = 0; i < p.degree(); ++i) {
      if (p.channel(c)[i] != q.channel(c)[i]) ++diffs;
    }
  }
  EXPECT_EQ(diffs, 1u);
  EXPECT_EQ(injector.injected(), 1u);
}

class FaultEndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    ctx_ = std::make_shared<ckks::CkksContext>(ckks::CkksParams::toy(512, 4, 2));
    encoder_ = std::make_unique<ckks::CkksEncoder>(ctx_);
    keygen_ = std::make_unique<ckks::KeyGenerator>(ctx_, 4);
    encryptor_ = std::make_unique<ckks::Encryptor>(ctx_, keygen_->make_public_key());
    decryptor_ = std::make_unique<ckks::Decryptor>(ctx_, keygen_->secret_key());
    relin_ = keygen_->make_relin_keys();
  }

  ckks::Ciphertext encrypt(const std::vector<double>& z) {
    return encryptor_->encrypt(
        encoder_->encode(std::span<const double>(z), 4, ctx_->params().scale()));
  }

  ckks::ContextPtr ctx_;
  std::unique_ptr<ckks::CkksEncoder> encoder_;
  std::unique_ptr<ckks::KeyGenerator> keygen_;
  std::unique_ptr<ckks::Encryptor> encryptor_;
  std::unique_ptr<ckks::Decryptor> decryptor_;
  ckks::RelinKeys relin_;
};

TEST_F(FaultEndToEnd, NoiseGuardFlagsCorruptedCiphertext) {
  ckks::Ciphertext ct = encrypt({1.5, -2.0, 0.25});
  ckks::NoiseGuard guard(ctx_, *decryptor_);
  EXPECT_TRUE(guard.check(ct).healthy);
  EXPECT_NO_THROW(guard.require_healthy(ct));

  // A single flipped residue (the functional image of a lane/SRAM upset with
  // policy `none`) decorrelates decryption; the guard must flag it before the
  // garbage plaintext escapes.
  fault::Injector injector(11);
  injector.corrupt(ct.c0);
  const auto report = guard.check(ct);
  EXPECT_FALSE(report.healthy);
  EXPECT_GT(report.coeff_bits, report.budget_bits);
  EXPECT_THROW(guard.require_healthy(ct), ckks::CorruptCiphertextError);
}

TEST_F(FaultEndToEnd, DetectRetryRecoversCorrectDecryption) {
  const ckks::Ciphertext a = encrypt({0.5, 1.0, -1.5});
  ckks::Evaluator evaluator(ctx_);
  ckks::NoiseGuard guard(ctx_, *decryptor_);
  obs::Registry registry;
  fault::Injector injector(23);
  fault::Retrier retrier(4, &registry);

  // First execution takes a kernel fault; detect-retry's validation catches
  // it and the bounded re-execution produces a clean result.
  std::size_t attempt = 0;
  const ckks::Ciphertext result = retrier.run(
      [&] {
        ckks::Ciphertext sq = evaluator.rescale(evaluator.multiply(a, a, relin_));
        if (attempt++ == 0) injector.corrupt(sq.c1);
        return sq;
      },
      [&](const ckks::Ciphertext& ct) { return guard.check(ct).healthy; });

  EXPECT_EQ(retrier.retries(), 1u);
  EXPECT_EQ(registry.counter(fault::metrics::kRetries), 1u);
  const auto dec = decryptor_->decrypt(result, *encoder_);
  EXPECT_NEAR(dec[0].real(), 0.25, 1e-3);
  EXPECT_NEAR(dec[1].real(), 1.0, 1e-3);
  EXPECT_NEAR(dec[2].real(), 2.25, 1e-3);
}

TEST_F(FaultEndToEnd, RetrierGivesUpAfterMaxRetries) {
  obs::Registry registry;
  fault::Retrier retrier(2, &registry);
  EXPECT_THROW(retrier.run([] { return 0; }, [](int) { return false; }),
               fault::UnrecoverableFaultError);
  EXPECT_EQ(registry.counter(fault::metrics::kRetries), 2u);
}

TEST_F(FaultEndToEnd, DecryptorValidationRejectsCorruption) {
  ckks::Ciphertext ct = encrypt({1.0});
  decryptor_->set_validate(true);
  EXPECT_NO_THROW(decryptor_->decrypt_coeffs(ct));
  // Hand-corrupt a residue to >= q: a structural violation the invariant
  // check rejects before any decryption math runs.
  ct.c1.channel(0)[3] = ct.c1.channel_modulus(0).value();
  EXPECT_THROW(decryptor_->decrypt_coeffs(ct), std::logic_error);
  decryptor_->set_validate(false);
  EXPECT_NO_THROW(decryptor_->decrypt_coeffs(ct));
}

}  // namespace
}  // namespace alchemist
