// Observability-layer tests: counter registry semantics, Chrome trace export
// schema, metrics report schema, and the observer-effect-zero guarantee
// (telemetry on/off yields bit-identical SimResults).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "arch/config.h"
#include "common/thread_pool.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "obs/histogram.h"
#include "obs/json.h"
#include "obs/prometheus.h"
#include "obs/registry.h"
#include "obs/report.h"
#include "obs/timeline.h"
#include "sim/alchemist_sim.h"
#include "sim/event_sim.h"
#include "sim/sim_control.h"
#include "sim/unit_profiler.h"
#include "workloads/ckks_workloads.h"

namespace alchemist {
namespace {

using metaop::HighOp;
using metaop::OpGraph;
using metaop::OpKind;

HighOp make_op(OpKind kind, std::size_t n, std::size_t channels,
               std::vector<std::size_t> deps = {}, std::uint64_t hbm = 0) {
  HighOp op;
  op.kind = kind;
  op.n = n;
  op.channels = channels;
  op.deps = std::move(deps);
  op.hbm_bytes = hbm;
  return op;
}

// The tiny fixed graph used by the trace-schema tests: an NTT feeding a
// pointwise multiply, with some key traffic.
OpGraph tiny_graph() {
  OpGraph g;
  g.name = "tiny";
  const std::size_t a = g.add(make_op(OpKind::Ntt, 16384, 2));
  g.add(make_op(OpKind::PointwiseMult, 16384, 2, {a}, /*hbm=*/1 << 20));
  return g;
}

// --- Registry -------------------------------------------------------------

TEST(ObsRegistry, CanonicalKeysAndAccumulation) {
  obs::Registry reg;
  reg.add("sim.cycles", 10);
  reg.add("sim.cycles", 5);
  EXPECT_EQ(reg.counter("sim.cycles"), 15u);

  // Tag order at the call site doesn't matter: keys canonicalize sorted.
  reg.add("sim.stall", 7, {{"cause", "hbm"}, {"level", "3"}});
  reg.add("sim.stall", 1, {{"level", "3"}, {"cause", "hbm"}});
  EXPECT_EQ(reg.counter("sim.stall", {{"cause", "hbm"}, {"level", "3"}}), 8u);
  EXPECT_EQ(reg.counter_by_key("sim.stall{cause=hbm,level=3}"), 8u);

  // Absent metrics read as zero.
  EXPECT_EQ(reg.counter("sim.nothing"), 0u);
  EXPECT_EQ(reg.gauge("sim.nothing"), 0.0);

  reg.set_gauge("sim.utilization", 0.5);
  reg.set_gauge("sim.utilization", 0.75);  // last write wins
  EXPECT_EQ(reg.gauge("sim.utilization"), 0.75);
}

TEST(ObsRegistry, MergeAndTagTotals) {
  obs::Registry a, b;
  a.add("sim.cycles", 100, {{"class", "ntt"}});
  b.add("sim.cycles", 50, {{"class", "ntt"}});
  b.add("sim.cycles", 30, {{"class", "bconv"}});
  b.set_gauge("sim.time_us", 1.5);
  a.merge(b);
  EXPECT_EQ(a.counter("sim.cycles", {{"class", "ntt"}}), 150u);
  EXPECT_EQ(a.counter("sim.cycles", {{"class", "bconv"}}), 30u);
  EXPECT_EQ(a.gauge("sim.time_us"), 1.5);
  EXPECT_EQ(a.total_over_tags("sim.cycles{class="), 180u);
}

// --- Trace schema ---------------------------------------------------------

// Minimal structural JSON scan: quotes/braces/brackets balance outside
// strings. Enough to catch malformed emission without a JSON dependency.
void expect_balanced_json(const std::string& s) {
  int depth_obj = 0, depth_arr = 0;
  bool in_string = false, escaped = false;
  for (char c : s) {
    if (in_string) {
      if (escaped) escaped = false;
      else if (c == '\\') escaped = true;
      else if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++depth_obj; break;
      case '}': --depth_obj; break;
      case '[': ++depth_arr; break;
      case ']': --depth_arr; break;
      default: break;
    }
    ASSERT_GE(depth_obj, 0);
    ASSERT_GE(depth_arr, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth_obj, 0);
  EXPECT_EQ(depth_arr, 0);
}

// Extract the values following every `"key":` occurrence (numbers only).
std::vector<double> scan_numeric_field(const std::string& json,
                                       const std::string& key) {
  std::vector<double> out;
  const std::string needle = "\"" + key + "\":";
  std::size_t pos = 0;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    out.push_back(std::stod(json.substr(pos)));
  }
  return out;
}

TEST(ObsTrace, LevelSimEmitsSchemaValidChromeTrace) {
  arch::ArchConfig cfg = arch::ArchConfig::alchemist();
  cfg.telemetry = true;
  obs::Timeline timeline;
  const auto r = sim::simulate_alchemist(tiny_graph(), cfg, &timeline);
  ASSERT_FALSE(timeline.events().empty());

  const std::string json = timeline.chrome_trace_json();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Only metadata (M) and complete (X) events — no unmatched B/E pairs.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\":\"E\""), std::string::npos);
  // The two ops, the transpose and the HBM stream all appear.
  EXPECT_NE(json.find("\"name\":\"NTT#0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"PointwiseMult#1\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"transpose\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"hbm\""), std::string::npos);

  // Timestamps are emitted sorted and non-negative; durations non-negative.
  const auto ts = scan_numeric_field(json, "ts");
  ASSERT_FALSE(ts.empty());
  for (std::size_t i = 1; i < ts.size(); ++i) EXPECT_LE(ts[i - 1], ts[i]);
  for (double t : ts) EXPECT_GE(t, 0.0);
  for (double d : scan_numeric_field(json, "dur")) EXPECT_GE(d, 0.0);

  // Trace is consistent with the aggregate result: the last slice ends at or
  // before the reported cycle count.
  double max_end = 0;
  for (const auto& ev : timeline.events()) {
    max_end = std::max(max_end, ev.ts + ev.dur);
  }
  EXPECT_LE(max_end, static_cast<double>(r.cycles) + 1.0);
}

TEST(ObsTrace, EventSimEmitsPerOpSlices) {
  arch::ArchConfig cfg = arch::ArchConfig::alchemist();
  cfg.telemetry = true;
  obs::Timeline timeline;
  const OpGraph g = tiny_graph();
  const auto r = sim::simulate_alchemist_events(g, cfg, &timeline);

  // One compute slice per op plus one HBM slice for the keyed op.
  std::size_t compute = 0, hbm = 0;
  for (const auto& ev : timeline.events()) {
    if (ev.cat == "hbm") ++hbm;
    else ++compute;
    EXPECT_GE(ev.dur, 0.0);
    EXPECT_LE(ev.ts + ev.dur, static_cast<double>(r.cycles) + 1.0);
  }
  EXPECT_EQ(compute, g.ops.size());
  EXPECT_EQ(hbm, 1u);
  expect_balanced_json(timeline.chrome_trace_json());
}

TEST(ObsTrace, DisabledTelemetryRecordsNothing) {
  arch::ArchConfig cfg = arch::ArchConfig::alchemist();  // telemetry = false
  obs::Timeline timeline;
  sim::simulate_alchemist(tiny_graph(), cfg, &timeline);
  sim::simulate_alchemist_events(tiny_graph(), cfg, &timeline);
  EXPECT_TRUE(timeline.events().empty());

  // A disabled sink also drops records even if the config enables telemetry.
  cfg.telemetry = true;
  obs::Timeline off(/*enabled=*/false);
  sim::simulate_alchemist(tiny_graph(), cfg, &off);
  EXPECT_TRUE(off.events().empty());
}

// --- Observer effect = 0 --------------------------------------------------

void expect_identical_results(const sim::SimResult& a, const sim::SimResult& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.time_us, b.time_us);  // bit-identical doubles, not NEAR
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.mem_stall_cycles, b.mem_stall_cycles);
  EXPECT_EQ(a.transpose_cycles, b.transpose_cycles);
  EXPECT_EQ(a.total_mults, b.total_mults);
  for (std::size_t c = 0; c < metaop::kNumOpClasses; ++c) {
    EXPECT_EQ(a.util_by_class[c], b.util_by_class[c]);
    EXPECT_EQ(a.cycles_by_class[c], b.cycles_by_class[c]);
  }
  EXPECT_EQ(a.registry.counters(), b.registry.counters());
  EXPECT_EQ(a.registry.gauges(), b.registry.gauges());
}

TEST(ObsObserverEffect, TelemetryDoesNotPerturbLevelSim) {
  const workloads::CkksWl w = workloads::CkksWl::paper(44);
  const OpGraph g = workloads::build_keyswitch(w);
  arch::ArchConfig off = arch::ArchConfig::alchemist();
  arch::ArchConfig on = off;
  on.telemetry = true;
  obs::Timeline timeline;
  const auto r_off = sim::simulate_alchemist(g, off);
  const auto r_on = sim::simulate_alchemist(g, on, &timeline);
  EXPECT_FALSE(timeline.events().empty());
  expect_identical_results(r_off, r_on);
}

TEST(ObsObserverEffect, TelemetryDoesNotPerturbEventSim) {
  const workloads::CkksWl w = workloads::CkksWl::paper(24);
  const OpGraph g = workloads::build_cmult(w);
  arch::ArchConfig off = arch::ArchConfig::alchemist();
  arch::ArchConfig on = off;
  on.telemetry = true;
  obs::Timeline timeline;
  const auto r_off = sim::simulate_alchemist_events(g, off);
  const auto r_on = sim::simulate_alchemist_events(g, on, &timeline);
  EXPECT_FALSE(timeline.events().empty());
  expect_identical_results(r_off, r_on);
}

// --- SimResult-on-registry ------------------------------------------------

TEST(ObsResult, AggregateFieldsMatchRegistry) {
  const workloads::CkksWl w = workloads::CkksWl::paper(44);
  const auto r = sim::simulate_alchemist(workloads::build_keyswitch(w),
                                         arch::ArchConfig::alchemist());
  using sim::metrics::kCycles;
  EXPECT_EQ(r.cycles, r.registry.counter(kCycles));
  EXPECT_EQ(r.mem_stall_cycles, r.registry.counter("sim.stall", {{"cause", "hbm"}}));
  EXPECT_EQ(r.total_mults, r.registry.counter("sim.mults", {{"lazy", "true"}}));
  EXPECT_EQ(r.time_us, r.registry.gauge("sim.time_us"));
  // Per-class wall cycles land under sim.cycles{class=...} and sum over the
  // classes derived from the (single-source-of-truth) OpClass enum.
  std::uint64_t class_sum = 0;
  for (std::size_t c = 0; c < metaop::kNumOpClasses; ++c) {
    class_sum += r.registry.counter(
        kCycles, {{"class", metaop::class_tag(static_cast<metaop::OpClass>(c))}});
  }
  EXPECT_EQ(class_sum, r.registry.total_over_tags("sim.cycles{class="));
  EXPECT_GT(class_sum, 0u);
}

// --- Metrics report -------------------------------------------------------

TEST(ObsReport, StableSchemaAndContent) {
  const workloads::CkksWl w = workloads::CkksWl::paper(24);
  const auto r = sim::simulate_alchemist(workloads::build_cmult(w),
                                         arch::ArchConfig::alchemist());
  obs::MetricsReport report("test_obs");
  report.add(r);
  const std::string json = report.json();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"schema\": \"alchemist.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"tool\": \"test_obs\""), std::string::npos);
  EXPECT_NE(json.find("\"workload\": \"Cmult\""), std::string::npos);
  EXPECT_NE(json.find("\"sim.cycles\""), std::string::npos);
  EXPECT_NE(json.find("\"sim.utilization\""), std::string::npos);
  // Two identical adds produce two runs (reports never dedupe).
  report.add(r);
  EXPECT_EQ(report.runs().size(), 2u);
}

TEST(ObsReport, EmptyReportIsValidJson) {
  obs::MetricsReport report("empty");
  expect_balanced_json(report.json());
  EXPECT_NE(report.json().find("\"runs\": []"), std::string::npos);
}

// --- Histogram ------------------------------------------------------------

TEST(ObsHistogram, BucketBoundariesTileTheTickRange) {
  using obs::Histogram;
  // Unit buckets below the first octave split.
  for (std::uint64_t t = 0; t < 8; ++t) {
    EXPECT_EQ(Histogram::bucket_index(t), t);
    EXPECT_EQ(Histogram::bucket_lower(t), t);
    EXPECT_EQ(Histogram::bucket_upper(t), t + 1);
  }
  // Every bucket half-open, contiguous, and consistent with bucket_index at
  // both edges (boundary value belongs to the bucket it lower-bounds).
  for (std::size_t i = 0; i + 1 < Histogram::kNumBuckets; ++i) {
    const std::uint64_t lo = Histogram::bucket_lower(i);
    const std::uint64_t hi = Histogram::bucket_upper(i);
    ASSERT_LT(lo, hi) << "bucket " << i;
    EXPECT_EQ(Histogram::bucket_lower(i + 1), hi) << "gap after bucket " << i;
    EXPECT_EQ(Histogram::bucket_index(lo), i);
    EXPECT_EQ(Histogram::bucket_index(hi - 1), i);
    EXPECT_EQ(Histogram::bucket_index(hi), i + 1);
  }
  // Powers of two start a fresh sub-bucket; value-1 stays one bucket lower.
  for (int k = 3; k < 63; ++k) {
    const std::uint64_t v = 1ull << k;
    EXPECT_EQ(Histogram::bucket_lower(Histogram::bucket_index(v)), v);
    EXPECT_EQ(Histogram::bucket_index(v - 1) + 1, Histogram::bucket_index(v));
  }
}

TEST(ObsHistogram, MergeIsExactAssociativeAndOrderIndependent) {
  const double values[] = {0,    1,    7,     8,     9,      100.7, 1e3,
                           4096, 5000, 123e6, 7.5e9, 3.2e12, 1e18};
  obs::Histogram all;
  for (double v : values) all.record(v);

  // Same multiset recorded in reverse into shards, merged in two different
  // association orders: every variant is bit-identical to the single-threaded
  // histogram.
  obs::Histogram s1, s2, s3;
  std::size_t i = 0;
  for (auto it = std::rbegin(values); it != std::rend(values); ++it, ++i) {
    (i % 3 == 0 ? s1 : i % 3 == 1 ? s2 : s3).record(*it);
  }
  obs::Histogram left = s1;
  left.merge(s2);
  left.merge(s3);
  obs::Histogram right = s2;
  right.merge(s3);
  obs::Histogram outer = s1;
  outer.merge(right);
  EXPECT_TRUE(left == all);
  EXPECT_TRUE(outer == all);
}

TEST(ObsHistogram, PercentileEdges) {
  obs::Histogram h;
  EXPECT_EQ(h.percentile(50), 0.0);  // empty
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);

  h.record(42);
  for (double p : {0.0, 50.0, 100.0}) EXPECT_EQ(h.percentile(p), 42.0);

  obs::Histogram two;
  two.record(10);
  two.record(1000);
  EXPECT_EQ(two.percentile(0), 10.0);
  EXPECT_EQ(two.percentile(100), 1000.0);
  const double p50 = two.percentile(50);
  EXPECT_GE(p50, 10.0);
  EXPECT_LE(p50, 1000.0);

  // Quantiles are monotone in p and clamped to [min, max] even at the
  // interpolation edges of the hit bucket.
  obs::Histogram many;
  for (int v = 100; v < 200; ++v) many.record(v);
  double prev = -1;
  for (double p = 0; p <= 100.0; p += 2.5) {
    const double q = many.percentile(p);
    EXPECT_GE(q, many.min());
    EXPECT_LE(q, many.max());
    EXPECT_GE(q, prev);
    prev = q;
  }
  EXPECT_NEAR(many.percentile(50), 150.0, 16.0);  // ~12% bucket resolution

  // Hostile inputs: NaN and negatives clamp to tick 0, huge values saturate.
  obs::Histogram hostile;
  hostile.record(std::nan(""));
  hostile.record(-5.0);
  hostile.record(1e30);
  EXPECT_EQ(hostile.count(), 3u);
  EXPECT_EQ(hostile.buckets()[0], 2u);
  EXPECT_EQ(hostile.percentile(100), hostile.max());
}

TEST(ObsHistogram, RegistryObserveSnapshotAndMerge) {
  obs::Registry reg;
  reg.observe("svc.latency.total_us", 100.0, {{"class", "a"}});
  reg.observe("svc.latency.total_us", 300.0, {{"class", "a"}});
  reg.observe("svc.latency.total_us", 700.0);
  EXPECT_EQ(reg.histogram("svc.latency.total_us", {{"class", "a"}}).count(), 2u);
  EXPECT_EQ(reg.histogram("svc.latency.total_us").count(), 1u);
  EXPECT_EQ(reg.histogram("svc.latency.absent").count(), 0u);

  obs::Registry other;
  other.observe("svc.latency.total_us", 500.0, {{"class", "a"}});
  reg.merge(other);
  EXPECT_EQ(reg.histogram("svc.latency.total_us", {{"class", "a"}}).count(), 3u);
  EXPECT_EQ(reg.histogram("svc.latency.total_us", {{"class", "a"}}).sum_ticks(),
            900u);
  EXPECT_FALSE(reg.empty());
  reg.clear();
  EXPECT_TRUE(reg.empty());
}

// --- JSON non-finite handling ---------------------------------------------

TEST(ObsJson, NonFiniteNumbersEmitNullAndCount) {
  std::uint64_t dropped = 0;
  EXPECT_EQ(obs::json_number(1.5, dropped), "1.5");
  EXPECT_EQ(dropped, 0u);
  EXPECT_EQ(obs::json_number(std::nan(""), dropped), "null");
  EXPECT_EQ(obs::json_number(HUGE_VAL, dropped), "null");
  EXPECT_EQ(obs::json_number(-HUGE_VAL, dropped), "null");
  EXPECT_EQ(dropped, 3u);
}

TEST(ObsReport, NonFiniteGaugeBecomesNullPlusDroppedCounter) {
  obs::Registry reg;
  reg.set_gauge("sim.bad", std::nan(""));
  reg.set_gauge("sim.good", 2.5);
  obs::MetricsReport report("test_obs");
  report.add("w", "a", reg);
  const std::string json = report.json();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"sim.bad\": null"), std::string::npos);
  EXPECT_NE(json.find("\"report.dropped_nonfinite\": 1"), std::string::npos);

  // Clean reports must NOT grow the synthetic counter (baselines unchanged).
  obs::MetricsReport clean("test_obs");
  obs::Registry ok;
  ok.set_gauge("sim.good", 1.0);
  clean.add("w", "a", ok);
  EXPECT_EQ(clean.json().find("report.dropped_nonfinite"), std::string::npos);
}

// --- Unit profiler --------------------------------------------------------

void expect_profile_invariants(const sim::SimResult& r,
                               std::size_t expect_units) {
  const obs::UtilizationProfile& p = r.profile;
  ASSERT_TRUE(p.enabled());
  ASSERT_EQ(p.units.size(), expect_units);
  EXPECT_EQ(p.total_cycles, r.cycles);
  for (std::size_t u = 0; u < p.units.size(); ++u) {
    // THE invariant: the five buckets partition every simulated cycle.
    ASSERT_EQ(p.units[u].total(), p.total_cycles) << "unit " << u;
    // Class attribution partitions the occupied cycles the same way.
    std::uint64_t class_sum = 0;
    for (const auto& [cls, cycles] : p.units[u].class_occupied) class_sum += cycles;
    EXPECT_EQ(class_sum, p.units[u].occupied()) << "unit " << u;
  }
  // The aggregate view reconciles with the simulator's own utilization.
  EXPECT_NEAR(p.occupancy(), r.utilization, 0.02);
}

TEST(ObsProfiler, LevelEngineBucketsPartitionEveryCycle) {
  const workloads::CkksWl w = workloads::CkksWl::paper(44);
  const arch::ArchConfig cfg = arch::ArchConfig::alchemist();
  for (const OpGraph& g : {workloads::build_keyswitch(w),
                           workloads::build_bootstrapping(w, true)}) {
    sim::UnitProfiler prof;
    const auto r = sim::simulate_alchemist(g, cfg, nullptr, nullptr, nullptr, &prof);
    expect_profile_invariants(r, cfg.num_units);
  }
}

TEST(ObsProfiler, EventEngineBucketsPartitionEveryCycle) {
  const workloads::CkksWl w = workloads::CkksWl::paper(24);
  const arch::ArchConfig cfg = arch::ArchConfig::alchemist();
  for (const OpGraph& g :
       {workloads::build_cmult(w), workloads::build_rotation(w)}) {
    sim::UnitProfiler prof;
    const auto r =
        sim::simulate_alchemist_events(g, cfg, nullptr, nullptr, nullptr, &prof);
    expect_profile_invariants(r, cfg.num_units);
  }
}

TEST(ObsProfiler, ProfiledRunIsBitIdentical) {
  const workloads::CkksWl w = workloads::CkksWl::paper(24);
  const OpGraph g = workloads::build_keyswitch(w);
  const arch::ArchConfig cfg = arch::ArchConfig::alchemist();
  sim::UnitProfiler lp, ep;
  const auto level_off = sim::simulate_alchemist(g, cfg);
  const auto level_on =
      sim::simulate_alchemist(g, cfg, nullptr, nullptr, nullptr, &lp);
  expect_identical_results(level_off, level_on);
  EXPECT_FALSE(level_off.profile.enabled());
  EXPECT_TRUE(level_on.profile.enabled());
  const auto event_off = sim::simulate_alchemist_events(g, cfg);
  const auto event_on =
      sim::simulate_alchemist_events(g, cfg, nullptr, nullptr, nullptr, &ep);
  expect_identical_results(event_off, event_on);
  EXPECT_TRUE(event_on.profile.enabled());
}

TEST(ObsProfiler, ResumedRunComesBackUnprofiled) {
  const workloads::CkksWl w = workloads::CkksWl::paper(24);
  const OpGraph g = workloads::build_keyswitch(w);
  const arch::ArchConfig cfg = arch::ArchConfig::alchemist();

  // Interrupt a run, then resume it with a profiler attached: the cycles
  // before the cut were never observed, so the engine must hand back an
  // empty profile rather than a partial one.
  sim::Checkpoint cp;
  sim::SimControl stop;
  stop.max_steps = 2;
  stop.checkpoint_interval = 1;
  stop.checkpoint = &cp;
  EXPECT_THROW(sim::simulate_alchemist(g, cfg, nullptr, nullptr, &stop),
               sim::CancelledError);
  ASSERT_TRUE(cp.valid());
  sim::SimControl resume;
  resume.checkpoint = &cp;
  sim::UnitProfiler prof;
  const auto resumed =
      sim::simulate_alchemist(g, cfg, nullptr, nullptr, &resume, &prof);
  EXPECT_EQ(resumed.cycles, sim::simulate_alchemist(g, cfg).cycles);
  EXPECT_FALSE(resumed.profile.enabled());
}

TEST(ObsProfiler, ReportGainsUtilizationSection) {
  const workloads::CkksWl w = workloads::CkksWl::paper(24);
  const arch::ArchConfig cfg = arch::ArchConfig::alchemist();
  sim::UnitProfiler prof;
  const auto r = sim::simulate_alchemist(workloads::build_cmult(w), cfg, nullptr,
                                         nullptr, nullptr, &prof);
  obs::MetricsReport report("test_obs");
  report.add(r);
  const std::string json = report.json();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"utilization\""), std::string::npos);
  EXPECT_NE(json.find("\"schema\": \"utilization.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"stall_scratchpad\""), std::string::npos);

  // Unprofiled runs keep the report section-free (committed baselines).
  obs::MetricsReport plain("test_obs");
  plain.add(sim::simulate_alchemist(workloads::build_cmult(w), cfg));
  EXPECT_EQ(plain.json().find("\"utilization\""), std::string::npos);
}

TEST(ObsProfiler, TraceGainsPerUnitCounterTracks) {
  const workloads::CkksWl w = workloads::CkksWl::paper(24);
  arch::ArchConfig cfg = arch::ArchConfig::alchemist();
  cfg.telemetry = true;
  obs::Timeline timeline;
  sim::UnitProfiler prof;
  const auto r = sim::simulate_alchemist(workloads::build_keyswitch(w), cfg,
                                         &timeline, nullptr, nullptr, &prof);
  ASSERT_TRUE(r.profile.enabled());
  EXPECT_FALSE(timeline.counter_events().empty());
  std::ostringstream out;
  timeline.write_chrome_trace(out);
  const std::string json = out.str();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("util/unit000"), std::string::npos);
  EXPECT_NE(json.find("util/unit127"), std::string::npos);
  EXPECT_NE(json.find("\"busy\""), std::string::npos);
}

// --- Prometheus exposition ------------------------------------------------

TEST(ObsPrometheus, NameManglingAndEscaping) {
  EXPECT_EQ(obs::prometheus_name("svc.latency.total_us"), "svc_latency_total_us");
  EXPECT_EQ(obs::prometheus_name("sim.cycles"), "sim_cycles");
  EXPECT_EQ(obs::prometheus_name("a-b c"), "a_b_c");

  obs::Registry reg;
  reg.add("svc.completed", 3, {{"class", "key\"switch\nx\\y"}});
  const std::string text = obs::prometheus_exposition(reg);
  EXPECT_NE(text.find("# TYPE svc_completed counter"), std::string::npos);
  EXPECT_NE(text.find("svc_completed{class=\"key\\\"switch\\nx\\\\y\"} 3"),
            std::string::npos);
}

TEST(ObsPrometheus, HistogramRendersCumulativeBuckets) {
  obs::Registry reg;
  reg.observe("svc.latency.run_us", 5.0);
  reg.observe("svc.latency.run_us", 9.0);
  reg.observe("svc.latency.run_us", 1e6);
  const std::string text = obs::prometheus_exposition(reg);
  EXPECT_NE(text.find("# TYPE svc_latency_run_us histogram"), std::string::npos);
  EXPECT_NE(text.find("svc_latency_run_us_bucket{le=\"6\"} 1"), std::string::npos);
  EXPECT_NE(text.find("svc_latency_run_us_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("svc_latency_run_us_count 3"), std::string::npos);
  EXPECT_NE(text.find("svc_latency_run_us_sum 1000014"), std::string::npos);
  // Zero buckets are skipped: the exposition stays proportional to the data.
  EXPECT_EQ(text.find("le=\"1\"} 0"), std::string::npos);
}

TEST(ObsPrometheus, NonFiniteGaugesUseCanonicalSpelling) {
  obs::Registry reg;
  reg.set_gauge("sim.a", std::nan(""));
  reg.set_gauge("sim.b", HUGE_VAL);
  reg.set_gauge("sim.c", -HUGE_VAL);
  const std::string text = obs::prometheus_exposition(reg);
  EXPECT_NE(text.find("sim_a NaN"), std::string::npos);
  EXPECT_NE(text.find("sim_b +Inf"), std::string::npos);
  EXPECT_NE(text.find("sim_c -Inf"), std::string::npos);
}

// --- Distributed tracing / flight recorder --------------------------------

obs::SpanRecord make_span(std::uint64_t trace, std::uint64_t span,
                          std::uint64_t parent, const char* name,
                          double ts = 0, double dur = 1) {
  obs::SpanRecord s;
  s.trace_id = trace;
  s.span_id = span;
  s.parent_span = parent;
  s.name = name;
  s.kind = "svc";
  s.track = "svc/test";
  s.ts = ts;
  s.dur = dur;
  return s;
}

TEST(ObsSpan, IdMintingIsDeterministicAndNonzero) {
  EXPECT_EQ(obs::mint_trace_id(7), obs::mint_trace_id(7));
  EXPECT_NE(obs::mint_trace_id(7), obs::mint_trace_id(8));
  EXPECT_NE(obs::mint_trace_id(0), 0u);

  const std::uint64_t t = obs::mint_trace_id(1);
  EXPECT_EQ(obs::mint_span_id(t, 0, "job", 0), obs::mint_span_id(t, 0, "job", 0));
  EXPECT_NE(obs::mint_span_id(t, 0, "job", 0), obs::mint_span_id(t, 0, "job", 1));
  EXPECT_NE(obs::mint_span_id(t, 0, "job", 0), obs::mint_span_id(t, 0, "queue", 0));

  obs::TraceContext root;
  root.trace_id = t;
  root.span_id = obs::mint_span_id(t, 0, "job", 0);
  const obs::TraceContext child = obs::child_context(root, "attempt", 1);
  EXPECT_EQ(child.trace_id, t);
  EXPECT_EQ(child.parent_span, root.span_id);
  EXPECT_EQ(child.span_id, obs::mint_span_id(t, root.span_id, "attempt", 1));
  EXPECT_TRUE(child.valid());
  EXPECT_FALSE(obs::TraceContext{}.valid());
}

TEST(ObsSpan, SinkRingEvictsOldestAndCountsDrops) {
  obs::TraceSink sink(4);
  for (int i = 0; i < 6; ++i) {
    sink.record(make_span(1, 10 + i, 0, "s", /*ts=*/i));
  }
  EXPECT_EQ(sink.recorded(), 6u);
  EXPECT_EQ(sink.dropped(), 2u);
  const std::vector<obs::SpanRecord> spans = sink.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.front().span_id, 12u);  // oldest two evicted
  EXPECT_EQ(spans.back().span_id, 15u);
  sink.clear();
  EXPECT_EQ(sink.recorded(), 0u);
  EXPECT_TRUE(sink.snapshot().empty());
}

TEST(ObsSpan, RecordBatchDrainsUnderOneLockAndKeepsCapacity) {
  obs::TraceSink sink;
  std::vector<obs::SpanRecord> batch;
  for (int i = 0; i < 100; ++i) batch.push_back(make_span(1, 1 + i, 0, "s"));
  const std::size_t cap = batch.capacity();
  sink.record_batch(batch);
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.capacity(), cap);
  EXPECT_EQ(sink.recorded(), 100u);
  sink.record_batch(batch);  // empty batch is a no-op
  EXPECT_EQ(sink.recorded(), 100u);
}

TEST(ObsSpan, VirtualClockMakesTimestampsDeterministic) {
  obs::TraceSink sink;
  double now = 1000.0;
  sink.set_clock([&now] { return now; });
  EXPECT_EQ(sink.now_us(), 1000.0);
  now = 2500.0;
  EXPECT_EQ(sink.now_us(), 2500.0);
}

TEST(ObsSpan, ThreadPoolFanOutAdoptsAmbientContext) {
  obs::TraceSink sink;
  obs::TraceContext ctx;
  ctx.trace_id = obs::mint_trace_id(42);
  ctx.span_id = obs::mint_span_id(ctx.trace_id, 0, "attempt", 1);

  std::atomic<std::size_t> sum{0};
  {
    obs::ScopedTraceContext scope(&sink, ctx);
    parallel_for(1024, 1, [&](std::size_t b, std::size_t e) {
      sum.fetch_add(e - b, std::memory_order_relaxed);
    });
    parallel_for(1024, 1, [&](std::size_t b, std::size_t e) {
      sum.fetch_add(e - b, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 2048u);
  const std::vector<obs::SpanRecord> spans = sink.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  for (const obs::SpanRecord& s : spans) {
    EXPECT_EQ(s.name, "parallel_for");
    EXPECT_EQ(s.kind, "pool");
    EXPECT_EQ(s.trace_id, ctx.trace_id);
    EXPECT_EQ(s.parent_span, ctx.span_id);
  }
  // Sequential fan-outs under one scope take consecutive ordinals.
  EXPECT_EQ(spans[0].span_id,
            obs::mint_span_id(ctx.trace_id, ctx.span_id, "parallel_for", 0));
  EXPECT_EQ(spans[1].span_id,
            obs::mint_span_id(ctx.trace_id, ctx.span_id, "parallel_for", 1));

  // Outside a scope the pool records nothing: the zero-overhead no-op path.
  parallel_for(1024, 1, [&](std::size_t b, std::size_t e) {
    sum.fetch_add(e - b, std::memory_order_relaxed);
  });
  EXPECT_EQ(sink.recorded(), 2u);
}

TEST(ObsSpan, SpansJsonHasStableSchema) {
  obs::SpanRecord s = make_span(0xabcull, 0x123ull, 0, "job", 5.0, 10.0);
  s.attrs = {{"class", "Pmult"}};
  s.num_attrs = {{"seq", 3.0}};
  const std::string doc = obs::spans_json({s}, /*recorded=*/1, /*dropped=*/0, "test");
  EXPECT_NE(doc.find("\"schema\":\"spans.v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"tool\":\"test\""), std::string::npos);
  EXPECT_NE(doc.find("\"trace\":\"0x0000000000000abc\""), std::string::npos);
  EXPECT_NE(doc.find("\"span\":\"0x0000000000000123\""), std::string::npos);
  EXPECT_NE(doc.find("\"parent\":\"0x0000000000000000\""), std::string::npos);
  EXPECT_NE(doc.find("\"clock\":\"us\""), std::string::npos);
  EXPECT_NE(doc.find("\"class\":\"Pmult\""), std::string::npos);
  EXPECT_NE(doc.find("\"seq\":3"), std::string::npos);
}

TEST(ObsSpan, TracezListsRecentAndSlowestPerClass) {
  obs::TraceSink sink;
  obs::SpanRecord fast = make_span(1, 11, 0, "job", 0, 10);
  fast.attrs = {{"class", "Pmult"}};
  obs::SpanRecord slow = make_span(2, 21, 0, "job", 0, 99);
  slow.attrs = {{"class", "Pmult"}};
  obs::SpanRecord other = make_span(3, 31, 0, "job", 0, 50);
  other.attrs = {{"class", "Rotation"}};
  sink.record(fast);
  sink.record(slow);
  sink.record(other);

  const std::string doc = obs::tracez_json(sink, /*recent_n=*/10, /*slowest_n=*/1);
  EXPECT_NE(doc.find("\"recorded\":3"), std::string::npos);
  // Slowest-1 for Pmult is the dur=99 root; the dur=10 one is trimmed.
  const std::size_t slowest = doc.find("\"slowest\"");
  ASSERT_NE(slowest, std::string::npos);
  EXPECT_NE(doc.find("\"Pmult\":[", slowest), std::string::npos);
  EXPECT_NE(doc.find("\"Rotation\":[", slowest), std::string::npos);
  EXPECT_NE(doc.find("\"dur\":99", slowest), std::string::npos);
  EXPECT_EQ(doc.find("\"dur\":10", slowest), std::string::npos);

  // Class filter narrows both sections.
  const std::string filtered = obs::tracez_json(sink, 10, 1, "Rotation");
  EXPECT_EQ(filtered.find("\"Pmult\""), std::string::npos);
  EXPECT_NE(filtered.find("\"Rotation\""), std::string::npos);
}

TEST(ObsSpan, MergeIntoTimelineEmitsSlicesAndFlows) {
  const std::uint64_t trace = obs::mint_trace_id(5);
  obs::SpanRecord queue = make_span(trace, 2, 1, "queue", 0, 10);
  queue.track = "svc/queue";
  obs::SpanRecord attempt = make_span(trace, 3, 1, "attempt", 10, 20);
  attempt.track = "svc/worker0";

  obs::Timeline timeline(true);
  obs::merge_spans_into_timeline({queue, attempt}, timeline, /*tid_base=*/500);
  ASSERT_EQ(timeline.events().size(), 2u);
  for (const obs::TraceEvent& ev : timeline.events()) {
    EXPECT_GE(ev.tid, 500u);
  }
  // One queue->attempt flow arrow: a start/finish pair sharing the trace id.
  ASSERT_EQ(timeline.flow_events().size(), 2u);
  EXPECT_EQ(timeline.flow_events()[0].phase, 's');
  EXPECT_EQ(timeline.flow_events()[1].phase, 'f');
  EXPECT_EQ(timeline.flow_events()[0].id, trace);
  EXPECT_EQ(timeline.flow_events()[1].id, trace);

  const std::string json = timeline.chrome_trace_json();
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("span/svc/queue"), std::string::npos);
}

TEST(ObsLog, RingFiltersBySeverityNewestFirst) {
  obs::EventLog log;
  double now = 100.0;
  log.set_clock([&now] { return now; });
  for (int i = 0; i < 5; ++i) {
    obs::LogEvent ev;
    ev.severity = (i % 2 == 0) ? obs::Severity::Debug : obs::Severity::Warn;
    ev.component = "test";
    ev.message = "e" + std::to_string(i);
    log.record(std::move(ev));
    now += 1.0;
  }
  EXPECT_EQ(log.recorded(), 5u);

  // Newest n surviving the severity floor, returned oldest first.
  const std::vector<obs::LogEvent> warns = log.tail(10, obs::Severity::Warn);
  ASSERT_EQ(warns.size(), 2u);
  EXPECT_EQ(warns[0].message, "e1");
  EXPECT_EQ(warns[1].message, "e3");
  EXPECT_EQ(warns[0].ts_us, 101.0);  // virtual clock stamped at record time

  const std::vector<obs::LogEvent> last2 = log.tail(2, obs::Severity::Debug);
  ASSERT_EQ(last2.size(), 2u);
  EXPECT_EQ(last2[0].message, "e3");
  EXPECT_EQ(last2[1].message, "e4");

  const std::string jsonl = obs::log_jsonl(warns);
  EXPECT_NE(jsonl.find("\"sev\":\"warn\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"msg\":\"e3\""), std::string::npos);
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'),
            static_cast<std::ptrdiff_t>(warns.size()));
}

TEST(ObsLog, SeverityParsingRoundTrips) {
  EXPECT_EQ(obs::parse_severity("warn", obs::Severity::Debug), obs::Severity::Warn);
  EXPECT_EQ(obs::parse_severity("error", obs::Severity::Debug), obs::Severity::Error);
  EXPECT_EQ(obs::parse_severity("bogus", obs::Severity::Info), obs::Severity::Info);
  EXPECT_STREQ(obs::to_string(obs::Severity::Error), "error");
}

TEST(ObsSpan, LevelEngineChainsNarrowLevelsAtPhasesDetail) {
  // A long single-op chain into one wide fan-out level: Phases detail must
  // coalesce the chain and keep one "level" span for the wide level.
  OpGraph g;
  g.name = "chainy";
  std::size_t prev = g.add(make_op(OpKind::Ntt, 4096, 2));
  for (int i = 0; i < 9; ++i) {
    prev = g.add(make_op(OpKind::PointwiseMult, 4096, 2, {prev}));
  }
  std::vector<std::size_t> wide;
  for (int i = 0; i < 8; ++i) {
    wide.push_back(g.add(make_op(OpKind::PointwiseMult, 4096, 2, {prev})));
  }
  g.add(make_op(OpKind::PointwiseAdd, 4096, 2, wide));

  obs::TraceSink sink;
  sim::SimControl ctl;
  ctl.trace = &sink;
  ctl.trace_ctx.trace_id = obs::mint_trace_id(9);
  ctl.trace_ctx.span_id = obs::mint_span_id(ctl.trace_ctx.trace_id, 0, "attempt", 1);
  ctl.trace_detail = obs::TraceDetail::Phases;

  const sim::SimResult ref = sim::simulate_alchemist(g, arch::ArchConfig::alchemist());
  const sim::SimResult traced = sim::simulate_alchemist(
      g, arch::ArchConfig::alchemist(), nullptr, nullptr, &ctl);
  EXPECT_EQ(traced.cycles, ref.cycles);
  EXPECT_EQ(traced.registry.counters(), ref.registry.counters());

  std::size_t chains = 0, levels = 0, sims = 0;
  double chain_levels = 0;
  for (const obs::SpanRecord& s : sink.snapshot()) {
    EXPECT_EQ(s.trace_id, ctl.trace_ctx.trace_id);
    if (s.name == "chain") {
      ++chains;
      for (const auto& [k, v] : s.num_attrs) {
        if (k == "levels") chain_levels += v;
      }
      EXPECT_EQ(s.clock, obs::SpanClock::Cycles);
    } else if (s.name == "level") {
      ++levels;
    } else if (s.name == "sim") {
      ++sims;
    }
  }
  // 12 scheduling levels: 10-deep chain + final add chain around one wide
  // 8-op level, which alone earns a per-level span.
  EXPECT_EQ(sims, 1u);
  EXPECT_EQ(levels, 1u);
  EXPECT_GE(chains, 1u);
  EXPECT_EQ(chain_levels, 11.0);
}

TEST(ObsObserverEffect, OpTracingDoesNotPerturbEventSim) {
  const OpGraph g = tiny_graph();
  const sim::SimResult ref =
      sim::simulate_alchemist_events(g, arch::ArchConfig::alchemist());

  obs::TraceSink sink;
  sim::SimControl ctl;
  ctl.trace = &sink;
  ctl.trace_ctx.trace_id = obs::mint_trace_id(11);
  ctl.trace_ctx.span_id = obs::mint_span_id(ctl.trace_ctx.trace_id, 0, "attempt", 1);
  ctl.trace_detail = obs::TraceDetail::Ops;
  const sim::SimResult traced = sim::simulate_alchemist_events(
      g, arch::ArchConfig::alchemist(), nullptr, nullptr, &ctl);

  EXPECT_EQ(traced.cycles, ref.cycles);
  EXPECT_EQ(traced.time_us, ref.time_us);
  EXPECT_EQ(traced.registry.counters(), ref.registry.counters());
  std::size_t op_spans = 0;
  for (const obs::SpanRecord& s : sink.snapshot()) {
    if (s.track == "sim/ops") ++op_spans;
  }
  EXPECT_EQ(op_spans, g.ops.size());
}

}  // namespace
}  // namespace alchemist
