// Observability-layer tests: counter registry semantics, Chrome trace export
// schema, metrics report schema, and the observer-effect-zero guarantee
// (telemetry on/off yields bit-identical SimResults).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "arch/config.h"
#include "obs/registry.h"
#include "obs/report.h"
#include "obs/timeline.h"
#include "sim/alchemist_sim.h"
#include "sim/event_sim.h"
#include "workloads/ckks_workloads.h"

namespace alchemist {
namespace {

using metaop::HighOp;
using metaop::OpGraph;
using metaop::OpKind;

HighOp make_op(OpKind kind, std::size_t n, std::size_t channels,
               std::vector<std::size_t> deps = {}, std::uint64_t hbm = 0) {
  HighOp op;
  op.kind = kind;
  op.n = n;
  op.channels = channels;
  op.deps = std::move(deps);
  op.hbm_bytes = hbm;
  return op;
}

// The tiny fixed graph used by the trace-schema tests: an NTT feeding a
// pointwise multiply, with some key traffic.
OpGraph tiny_graph() {
  OpGraph g;
  g.name = "tiny";
  const std::size_t a = g.add(make_op(OpKind::Ntt, 16384, 2));
  g.add(make_op(OpKind::PointwiseMult, 16384, 2, {a}, /*hbm=*/1 << 20));
  return g;
}

// --- Registry -------------------------------------------------------------

TEST(ObsRegistry, CanonicalKeysAndAccumulation) {
  obs::Registry reg;
  reg.add("sim.cycles", 10);
  reg.add("sim.cycles", 5);
  EXPECT_EQ(reg.counter("sim.cycles"), 15u);

  // Tag order at the call site doesn't matter: keys canonicalize sorted.
  reg.add("sim.stall", 7, {{"cause", "hbm"}, {"level", "3"}});
  reg.add("sim.stall", 1, {{"level", "3"}, {"cause", "hbm"}});
  EXPECT_EQ(reg.counter("sim.stall", {{"cause", "hbm"}, {"level", "3"}}), 8u);
  EXPECT_EQ(reg.counter_by_key("sim.stall{cause=hbm,level=3}"), 8u);

  // Absent metrics read as zero.
  EXPECT_EQ(reg.counter("sim.nothing"), 0u);
  EXPECT_EQ(reg.gauge("sim.nothing"), 0.0);

  reg.set_gauge("sim.utilization", 0.5);
  reg.set_gauge("sim.utilization", 0.75);  // last write wins
  EXPECT_EQ(reg.gauge("sim.utilization"), 0.75);
}

TEST(ObsRegistry, MergeAndTagTotals) {
  obs::Registry a, b;
  a.add("sim.cycles", 100, {{"class", "ntt"}});
  b.add("sim.cycles", 50, {{"class", "ntt"}});
  b.add("sim.cycles", 30, {{"class", "bconv"}});
  b.set_gauge("sim.time_us", 1.5);
  a.merge(b);
  EXPECT_EQ(a.counter("sim.cycles", {{"class", "ntt"}}), 150u);
  EXPECT_EQ(a.counter("sim.cycles", {{"class", "bconv"}}), 30u);
  EXPECT_EQ(a.gauge("sim.time_us"), 1.5);
  EXPECT_EQ(a.total_over_tags("sim.cycles{class="), 180u);
}

// --- Trace schema ---------------------------------------------------------

// Minimal structural JSON scan: quotes/braces/brackets balance outside
// strings. Enough to catch malformed emission without a JSON dependency.
void expect_balanced_json(const std::string& s) {
  int depth_obj = 0, depth_arr = 0;
  bool in_string = false, escaped = false;
  for (char c : s) {
    if (in_string) {
      if (escaped) escaped = false;
      else if (c == '\\') escaped = true;
      else if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++depth_obj; break;
      case '}': --depth_obj; break;
      case '[': ++depth_arr; break;
      case ']': --depth_arr; break;
      default: break;
    }
    ASSERT_GE(depth_obj, 0);
    ASSERT_GE(depth_arr, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth_obj, 0);
  EXPECT_EQ(depth_arr, 0);
}

// Extract the values following every `"key":` occurrence (numbers only).
std::vector<double> scan_numeric_field(const std::string& json,
                                       const std::string& key) {
  std::vector<double> out;
  const std::string needle = "\"" + key + "\":";
  std::size_t pos = 0;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    out.push_back(std::stod(json.substr(pos)));
  }
  return out;
}

TEST(ObsTrace, LevelSimEmitsSchemaValidChromeTrace) {
  arch::ArchConfig cfg = arch::ArchConfig::alchemist();
  cfg.telemetry = true;
  obs::Timeline timeline;
  const auto r = sim::simulate_alchemist(tiny_graph(), cfg, &timeline);
  ASSERT_FALSE(timeline.events().empty());

  const std::string json = timeline.chrome_trace_json();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Only metadata (M) and complete (X) events — no unmatched B/E pairs.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\":\"E\""), std::string::npos);
  // The two ops, the transpose and the HBM stream all appear.
  EXPECT_NE(json.find("\"name\":\"NTT#0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"PointwiseMult#1\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"transpose\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"hbm\""), std::string::npos);

  // Timestamps are emitted sorted and non-negative; durations non-negative.
  const auto ts = scan_numeric_field(json, "ts");
  ASSERT_FALSE(ts.empty());
  for (std::size_t i = 1; i < ts.size(); ++i) EXPECT_LE(ts[i - 1], ts[i]);
  for (double t : ts) EXPECT_GE(t, 0.0);
  for (double d : scan_numeric_field(json, "dur")) EXPECT_GE(d, 0.0);

  // Trace is consistent with the aggregate result: the last slice ends at or
  // before the reported cycle count.
  double max_end = 0;
  for (const auto& ev : timeline.events()) {
    max_end = std::max(max_end, ev.ts + ev.dur);
  }
  EXPECT_LE(max_end, static_cast<double>(r.cycles) + 1.0);
}

TEST(ObsTrace, EventSimEmitsPerOpSlices) {
  arch::ArchConfig cfg = arch::ArchConfig::alchemist();
  cfg.telemetry = true;
  obs::Timeline timeline;
  const OpGraph g = tiny_graph();
  const auto r = sim::simulate_alchemist_events(g, cfg, &timeline);

  // One compute slice per op plus one HBM slice for the keyed op.
  std::size_t compute = 0, hbm = 0;
  for (const auto& ev : timeline.events()) {
    if (ev.cat == "hbm") ++hbm;
    else ++compute;
    EXPECT_GE(ev.dur, 0.0);
    EXPECT_LE(ev.ts + ev.dur, static_cast<double>(r.cycles) + 1.0);
  }
  EXPECT_EQ(compute, g.ops.size());
  EXPECT_EQ(hbm, 1u);
  expect_balanced_json(timeline.chrome_trace_json());
}

TEST(ObsTrace, DisabledTelemetryRecordsNothing) {
  arch::ArchConfig cfg = arch::ArchConfig::alchemist();  // telemetry = false
  obs::Timeline timeline;
  sim::simulate_alchemist(tiny_graph(), cfg, &timeline);
  sim::simulate_alchemist_events(tiny_graph(), cfg, &timeline);
  EXPECT_TRUE(timeline.events().empty());

  // A disabled sink also drops records even if the config enables telemetry.
  cfg.telemetry = true;
  obs::Timeline off(/*enabled=*/false);
  sim::simulate_alchemist(tiny_graph(), cfg, &off);
  EXPECT_TRUE(off.events().empty());
}

// --- Observer effect = 0 --------------------------------------------------

void expect_identical_results(const sim::SimResult& a, const sim::SimResult& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.time_us, b.time_us);  // bit-identical doubles, not NEAR
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.mem_stall_cycles, b.mem_stall_cycles);
  EXPECT_EQ(a.transpose_cycles, b.transpose_cycles);
  EXPECT_EQ(a.total_mults, b.total_mults);
  for (std::size_t c = 0; c < metaop::kNumOpClasses; ++c) {
    EXPECT_EQ(a.util_by_class[c], b.util_by_class[c]);
    EXPECT_EQ(a.cycles_by_class[c], b.cycles_by_class[c]);
  }
  EXPECT_EQ(a.registry.counters(), b.registry.counters());
  EXPECT_EQ(a.registry.gauges(), b.registry.gauges());
}

TEST(ObsObserverEffect, TelemetryDoesNotPerturbLevelSim) {
  const workloads::CkksWl w = workloads::CkksWl::paper(44);
  const OpGraph g = workloads::build_keyswitch(w);
  arch::ArchConfig off = arch::ArchConfig::alchemist();
  arch::ArchConfig on = off;
  on.telemetry = true;
  obs::Timeline timeline;
  const auto r_off = sim::simulate_alchemist(g, off);
  const auto r_on = sim::simulate_alchemist(g, on, &timeline);
  EXPECT_FALSE(timeline.events().empty());
  expect_identical_results(r_off, r_on);
}

TEST(ObsObserverEffect, TelemetryDoesNotPerturbEventSim) {
  const workloads::CkksWl w = workloads::CkksWl::paper(24);
  const OpGraph g = workloads::build_cmult(w);
  arch::ArchConfig off = arch::ArchConfig::alchemist();
  arch::ArchConfig on = off;
  on.telemetry = true;
  obs::Timeline timeline;
  const auto r_off = sim::simulate_alchemist_events(g, off);
  const auto r_on = sim::simulate_alchemist_events(g, on, &timeline);
  EXPECT_FALSE(timeline.events().empty());
  expect_identical_results(r_off, r_on);
}

// --- SimResult-on-registry ------------------------------------------------

TEST(ObsResult, AggregateFieldsMatchRegistry) {
  const workloads::CkksWl w = workloads::CkksWl::paper(44);
  const auto r = sim::simulate_alchemist(workloads::build_keyswitch(w),
                                         arch::ArchConfig::alchemist());
  using sim::metrics::kCycles;
  EXPECT_EQ(r.cycles, r.registry.counter(kCycles));
  EXPECT_EQ(r.mem_stall_cycles, r.registry.counter("sim.stall", {{"cause", "hbm"}}));
  EXPECT_EQ(r.total_mults, r.registry.counter("sim.mults", {{"lazy", "true"}}));
  EXPECT_EQ(r.time_us, r.registry.gauge("sim.time_us"));
  // Per-class wall cycles land under sim.cycles{class=...} and sum over the
  // classes derived from the (single-source-of-truth) OpClass enum.
  std::uint64_t class_sum = 0;
  for (std::size_t c = 0; c < metaop::kNumOpClasses; ++c) {
    class_sum += r.registry.counter(
        kCycles, {{"class", metaop::class_tag(static_cast<metaop::OpClass>(c))}});
  }
  EXPECT_EQ(class_sum, r.registry.total_over_tags("sim.cycles{class="));
  EXPECT_GT(class_sum, 0u);
}

// --- Metrics report -------------------------------------------------------

TEST(ObsReport, StableSchemaAndContent) {
  const workloads::CkksWl w = workloads::CkksWl::paper(24);
  const auto r = sim::simulate_alchemist(workloads::build_cmult(w),
                                         arch::ArchConfig::alchemist());
  obs::MetricsReport report("test_obs");
  report.add(r);
  const std::string json = report.json();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"schema\": \"alchemist.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"tool\": \"test_obs\""), std::string::npos);
  EXPECT_NE(json.find("\"workload\": \"Cmult\""), std::string::npos);
  EXPECT_NE(json.find("\"sim.cycles\""), std::string::npos);
  EXPECT_NE(json.find("\"sim.utilization\""), std::string::npos);
  // Two identical adds produce two runs (reports never dedupe).
  report.add(r);
  EXPECT_EQ(report.runs().size(), 2u);
}

TEST(ObsReport, EmptyReportIsValidJson) {
  obs::MetricsReport report("empty");
  expect_balanced_json(report.json());
  EXPECT_NE(report.json().find("\"runs\": []"), std::string::npos);
}

}  // namespace
}  // namespace alchemist
