#include <gtest/gtest.h>

#include "arch/area_model.h"
#include "arch/baselines.h"
#include "arch/config.h"

namespace alchemist::arch {
namespace {

TEST(ArchConfig, DefaultMatchesPaper) {
  const ArchConfig c = ArchConfig::alchemist();
  EXPECT_EQ(c.num_units, 128u);
  EXPECT_EQ(c.cores_per_unit, 16u);
  EXPECT_EQ(c.lanes, 8u);
  EXPECT_EQ(c.total_cores(), 2048u);
  EXPECT_EQ(c.peak_lanes(), 16384u);
  // 64 MB local + 2 MB shared = the paper's "64 + 2 MB".
  EXPECT_EQ(c.total_sram_kb(), 128u * 512u + 2048u);
  EXPECT_DOUBLE_EQ(c.freq_ghz, 1.0);
  EXPECT_EQ(c.word_bits, 36);
  // 1 TB/s HBM at 1 GHz = 1000 bytes per cycle.
  EXPECT_NEAR(c.hbm_bytes_per_cycle(), 1000.0, 1.0);
  // On-chip bandwidth ~66 TB/s (Table 6): 16384 lanes * 4.5 B * 1 GHz.
  EXPECT_NEAR(c.onchip_bytes_per_cycle() * c.cycles_per_second() / 1e12, 73.7, 1.0);
}

TEST(AreaModel, ReproducesTable5) {
  const AreaBreakdown a = area_model(ArchConfig::alchemist());
  EXPECT_NEAR(a.core_mm2, 0.043, 1e-9);
  EXPECT_NEAR(a.core_cluster_mm2, 16 * 0.043, 1e-9);
  EXPECT_NEAR(a.local_sram_mm2, 0.427, 1e-9);
  EXPECT_NEAR(a.computing_unit_mm2, 1.118, 1e-9);
  EXPECT_NEAR(a.all_units_mm2, 143.104, 1e-6);
  EXPECT_NEAR(a.transpose_rf_mm2, 6.380, 1e-9);
  EXPECT_NEAR(a.shared_mem_mm2, 1.801, 1e-9);
  EXPECT_NEAR(a.hbm_phy_mm2, 29.801, 1e-9);
  EXPECT_NEAR(a.total_mm2, 181.086, 1e-3);
}

TEST(AreaModel, ScalesWithConfiguration) {
  ArchConfig half = ArchConfig::alchemist();
  half.num_units = 64;
  const AreaBreakdown a = area_model(half);
  EXPECT_NEAR(a.all_units_mm2, 143.104 / 2, 1e-6);
  // All-to-all transpose network: quadratic in the unit count.
  EXPECT_NEAR(a.transpose_rf_mm2, 6.380 / 4, 1e-9);
  // HBM PHY does not shrink with compute.
  EXPECT_NEAR(a.hbm_phy_mm2, 29.801, 1e-9);

  ArchConfig big_sram = ArchConfig::alchemist();
  big_sram.local_sram_kb = 1024;
  EXPECT_NEAR(area_model(big_sram).local_sram_mm2, 0.854, 1e-9);
}

TEST(AreaModel, PowerScalesWithArea) {
  EXPECT_NEAR(average_power_watts(ArchConfig::alchemist()), 77.9, 0.1);
  ArchConfig half = ArchConfig::alchemist();
  half.num_units = 64;
  EXPECT_LT(average_power_watts(half), 77.9 * 0.7);
}

TEST(Baselines, Table6RowsComplete) {
  const auto specs = table6_specs();
  ASSERT_EQ(specs.size(), 5u);
  const AcceleratorSpec sharp = spec_by_name("SHARP");
  EXPECT_TRUE(sharp.arithmetic_fhe);
  EXPECT_FALSE(sharp.logic_fhe);
  EXPECT_DOUBLE_EQ(sharp.offchip_bw_gb_s, 1000);
  EXPECT_DOUBLE_EQ(sharp.onchip_mem_mb, 180);
  EXPECT_DOUBLE_EQ(sharp.area_14nm_mm2, 379.0);

  const AcceleratorSpec alch = spec_by_name("Alchemist");
  EXPECT_TRUE(alch.arithmetic_fhe);
  EXPECT_TRUE(alch.logic_fhe);
  EXPECT_DOUBLE_EQ(alch.onchip_mem_mb, 66);
  // Unified: no hard-wired FU split.
  EXPECT_DOUBLE_EQ(alch.fu_ntt_frac, 0.0);

  const AcceleratorSpec matcha = spec_by_name("Matcha");
  EXPECT_TRUE(matcha.logic_fhe);
  EXPECT_FALSE(matcha.arithmetic_fhe);
  EXPECT_DOUBLE_EQ(matcha.freq_ghz, 2.0);

  EXPECT_THROW(spec_by_name("F2"), std::invalid_argument);
}

TEST(Baselines, AlchemistSramIsSmallest) {
  // The paper: >60% SRAM reduction vs the latest arithmetic accelerators.
  const auto sharp = spec_by_name("SHARP");
  const auto clake = spec_by_name("CraterLake");
  const auto alch = spec_by_name("Alchemist");
  EXPECT_LT(alch.onchip_mem_mb, 0.4 * sharp.onchip_mem_mb);
  EXPECT_LT(alch.onchip_mem_mb, 0.4 * clake.onchip_mem_mb);
  EXPECT_LT(alch.area_14nm_mm2, 0.5 * sharp.area_14nm_mm2);
}

}  // namespace
}  // namespace alchemist::arch
