// Bit-identity and dispatch-safety coverage for the SIMD substrate
// (common/simd.*). The scalar lazy kernels are the pinned reference; every
// compiled vector variant must reproduce them exactly across the (q, N)
// matrix, including non-lane-multiple tails and near-kMaxModulus moduli
// where the [0, 4q) lazy representation has the least headroom.
#include "common/simd.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/primes.h"
#include "common/rng.h"
#include "poly/four_step_ntt.h"
#include "poly/lazy_kernels.h"
#include "poly/ntt.h"

namespace alchemist {
namespace {

using simd::Isa;
using simd::Kern;

std::vector<Isa> all_isas() { return {Isa::Scalar, Isa::Avx2, Isa::Avx512}; }

std::vector<Isa> supported_isas() {
  std::vector<Isa> out;
  for (Isa isa : all_isas()) {
    if (simd::isa_supported(isa)) out.push_back(isa);
  }
  return out;
}

// Restores the process-wide ISA selection on scope exit so forced-ISA tests
// cannot leak into later suites.
class IsaGuard {
 public:
  IsaGuard() : saved_(simd::active_isa()) {}
  ~IsaGuard() { simd::set_isa(saved_); }

 private:
  Isa saved_;
};

TEST(SimdDispatch, ScalarAlwaysCompiledAndSupported) {
  EXPECT_TRUE(simd::isa_compiled(Isa::Scalar));
  EXPECT_TRUE(simd::isa_supported(Isa::Scalar));
  // The resolved selection and the CPUID-best are themselves supported: the
  // dispatcher can never route to a variant this host cannot execute.
  EXPECT_TRUE(simd::isa_supported(simd::active_isa()));
  EXPECT_TRUE(simd::isa_supported(simd::best_supported_isa()));
}

TEST(SimdDispatch, SupportedRequiresCompiled) {
  for (Isa isa : all_isas()) {
    if (simd::isa_supported(isa)) EXPECT_TRUE(simd::isa_compiled(isa));
  }
}

TEST(SimdDispatch, ParseIsaNamesAndErrors) {
  EXPECT_EQ(simd::parse_isa("scalar"), Isa::Scalar);
  EXPECT_EQ(simd::parse_isa("avx2"), Isa::Avx2);
  EXPECT_EQ(simd::parse_isa("avx512"), Isa::Avx512);
  EXPECT_EQ(simd::parse_isa("native"), simd::best_supported_isa());
  EXPECT_THROW(simd::parse_isa("sse9"), std::invalid_argument);
  EXPECT_THROW(simd::parse_isa(""), std::invalid_argument);
  EXPECT_STREQ(simd::isa_name(Isa::Scalar), "scalar");
  EXPECT_STREQ(simd::isa_name(Isa::Avx2), "avx2");
  EXPECT_STREQ(simd::isa_name(Isa::Avx512), "avx512");
}

TEST(SimdDispatch, SetIsaRejectsUnsupported) {
  IsaGuard guard;
  for (Isa isa : all_isas()) {
    if (simd::isa_supported(isa)) {
      simd::set_isa(isa);
      EXPECT_EQ(simd::active_isa(), isa);
    } else {
      EXPECT_THROW(simd::set_isa(isa), std::invalid_argument);
    }
  }
}

TEST(SimdDispatch, ForcedKernelRejectsUnsupported) {
  const u64 q = max_ntt_prime(50, 16);
  NttTable table(q, 16);
  Rng rng(7);
  std::vector<u64> a = rng.uniform_vector(16, q);
  u64 hi = 0, lo = 0;
  for (Isa isa : all_isas()) {
    if (simd::isa_supported(isa)) continue;
    std::vector<u64> copy = a;
    EXPECT_THROW(table.forward(copy, isa), std::invalid_argument);
    EXPECT_THROW(simd::dot_accumulate(a.data(), a.data(), a.size(), hi, lo, isa),
                 std::invalid_argument);
  }
}

TEST(SimdDispatch, DispatchCountersTrackForcedRuns) {
  const u64 q = max_ntt_prime(50, 64);
  NttTable table(q, 64);
  Rng rng(8);
  std::vector<u64> a = rng.uniform_vector(64, q);
  for (Isa isa : supported_isas()) {
    const std::uint64_t fwd_before = simd::dispatch_count(Kern::NttFwd, isa);
    const std::uint64_t inv_before = simd::dispatch_count(Kern::NttInv, isa);
    std::vector<u64> copy = a;
    table.forward(copy, isa);
    table.inverse(copy, isa);
    EXPECT_EQ(simd::dispatch_count(Kern::NttFwd, isa), fwd_before + 1);
    EXPECT_EQ(simd::dispatch_count(Kern::NttInv, isa), inv_before + 1);
  }
}

// The (q, N) sweep: 20-bit through 62-bit (near-kMaxModulus) moduli crossed
// with sizes that exercise every kernel regime — N = 4/8 run the in-kernel
// scalar fallbacks, 16/32 the short-stride shuffle stages, larger sizes the
// broadcast stages.
class SimdNttSweep
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(SimdNttSweep, ForwardBitIdenticalToEagerAcrossIsas) {
  const auto [qbits, n] = GetParam();
  const u64 q = max_ntt_prime(qbits, n);
  NttTable table(q, n);
  Rng rng(static_cast<u64>(qbits) * 1000 + n);
  const std::vector<u64> input = rng.uniform_vector(n, q);

  std::vector<u64> expected = input;
  table.forward_eager(expected);
  for (Isa isa : supported_isas()) {
    std::vector<u64> actual = input;
    table.forward(actual, isa);
    EXPECT_EQ(actual, expected) << "isa=" << simd::isa_name(isa) << " q=" << q;
  }
  std::vector<u64> dispatched = input;
  table.forward(dispatched);
  EXPECT_EQ(dispatched, expected);
}

TEST_P(SimdNttSweep, InverseBitIdenticalToEagerAcrossIsas) {
  const auto [qbits, n] = GetParam();
  const u64 q = max_ntt_prime(qbits, n);
  NttTable table(q, n);
  Rng rng(static_cast<u64>(qbits) * 2000 + n);
  std::vector<u64> freq = rng.uniform_vector(n, q);

  std::vector<u64> expected = freq;
  table.inverse_eager(expected);
  for (Isa isa : supported_isas()) {
    std::vector<u64> actual = freq;
    table.inverse(actual, isa);
    EXPECT_EQ(actual, expected) << "isa=" << simd::isa_name(isa) << " q=" << q;
  }
}

TEST_P(SimdNttSweep, RoundTripAcrossIsas) {
  const auto [qbits, n] = GetParam();
  const u64 q = max_ntt_prime(qbits, n);
  NttTable table(q, n);
  Rng rng(static_cast<u64>(qbits) * 3000 + n);
  const std::vector<u64> original = rng.uniform_vector(n, q);
  for (Isa isa : supported_isas()) {
    std::vector<u64> a = original;
    table.forward(a, isa);
    table.inverse(a, isa);
    EXPECT_EQ(a, original) << "isa=" << simd::isa_name(isa);
  }
}

INSTANTIATE_TEST_SUITE_P(
    QnMatrix, SimdNttSweep,
    ::testing::Combine(::testing::Values(20, 36, 50, 62),
                       ::testing::Values(std::size_t{4}, std::size_t{8},
                                         std::size_t{16}, std::size_t{32},
                                         std::size_t{64}, std::size_t{256},
                                         std::size_t{2048})));

// Worst-case amplitude at the largest supported modulus: every coefficient at
// q-1 maximizes the lazy [0, 4q) intermediates, probing the overflow headroom
// argument (4q < 2^64) on each vector variant.
TEST(SimdLazyNtt, MaxAmplitudeAtMaxModulusBits) {
  const std::size_t n = 1024;
  const u64 q = max_ntt_prime(62, n);
  NttTable table(q, n);
  std::vector<u64> expected(n, q - 1);
  table.forward_eager(expected);
  for (Isa isa : supported_isas()) {
    std::vector<u64> a(n, q - 1);
    table.forward(a, isa);
    EXPECT_EQ(a, expected) << "isa=" << simd::isa_name(isa);
  }
}

// Forcing the process-wide selection must flip the dispatched (no-Isa-arg)
// path too — this is what --isa and ALCHEMIST_ISA ride on.
TEST(SimdLazyNtt, ProcessWideForcedSelectionsAgree) {
  IsaGuard guard;
  const std::size_t n = 512;
  const u64 q = max_ntt_prime(50, n);
  NttTable table(q, n);
  Rng rng(11);
  const std::vector<u64> input = rng.uniform_vector(n, q);
  std::vector<u64> expected = input;
  table.forward_eager(expected);
  for (Isa isa : supported_isas()) {
    simd::set_isa(isa);
    std::vector<u64> a = input;
    table.forward(a);
    EXPECT_EQ(a, expected) << "isa=" << simd::isa_name(isa);
  }
}

TEST(SimdAccumulate, DotBitIdenticalAcrossIsasAndTails) {
  Rng rng(21);
  const u64 q = max_ntt_prime(62, 64);
  for (std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                          std::size_t{5}, std::size_t{8}, std::size_t{9},
                          std::size_t{15}, std::size_t{16}, std::size_t{17},
                          std::size_t{100}, std::size_t{131}}) {
    const std::vector<u64> a = rng.uniform_vector(len, q);
    const std::vector<u64> b = rng.uniform_vector(len, q);
    u64 ref_hi = 0, ref_lo = 0;
    simd::dot_accumulate(a.data(), b.data(), len, ref_hi, ref_lo, Isa::Scalar);
    for (Isa isa : supported_isas()) {
      u64 hi = 1, lo = 1;  // must be overwritten, not accumulated into
      simd::dot_accumulate(a.data(), b.data(), len, hi, lo, isa);
      EXPECT_EQ(hi, ref_hi) << "isa=" << simd::isa_name(isa) << " len=" << len;
      EXPECT_EQ(lo, ref_lo) << "isa=" << simd::isa_name(isa) << " len=" << len;
    }
  }
}

TEST(SimdAccumulate, WeightedBitIdenticalAcrossIsasAndTails) {
  Rng rng(22);
  const u64 q = max_ntt_prime(62, 64);
  for (std::size_t len : {std::size_t{1}, std::size_t{4}, std::size_t{7},
                          std::size_t{8}, std::size_t{13}, std::size_t{16},
                          std::size_t{100}, std::size_t{131}}) {
    const std::vector<u64> x = rng.uniform_vector(len, q);
    const u64 w = q - 1;
    // Nonzero starting accumulators: the kernel is += not =.
    const std::vector<u64> lo0 = rng.uniform_vector(len, ~u64{0});
    const std::vector<u64> hi0 = rng.uniform_vector(len, u64{1} << 40);
    std::vector<u64> ref_lo = lo0, ref_hi = hi0;
    simd::weighted_accumulate(x.data(), w, len, ref_lo.data(), ref_hi.data(),
                              Isa::Scalar);
    for (Isa isa : supported_isas()) {
      std::vector<u64> acc_lo = lo0, acc_hi = hi0;
      simd::weighted_accumulate(x.data(), w, len, acc_lo.data(), acc_hi.data(), isa);
      EXPECT_EQ(acc_lo, ref_lo) << "isa=" << simd::isa_name(isa) << " len=" << len;
      EXPECT_EQ(acc_hi, ref_hi) << "isa=" << simd::isa_name(isa) << " len=" << len;
    }
  }
}

// The poly-layer wrappers ride the dispatched kernels; pin them against the
// eager references under every process-wide forced selection.
TEST(SimdAccumulate, LazyKernelsMatchEagerUnderForcedIsa) {
  IsaGuard guard;
  Rng rng(23);
  const u64 q = max_ntt_prime(62, 64);
  const Modulus mod(q);
  const std::vector<u64> a = rng.uniform_vector(500, q);  // forces block path
  const std::vector<u64> b = rng.uniform_vector(500, q);
  const std::size_t channels = 20, n = 777;  // non-lane-multiple length
  std::vector<std::vector<u64>> x(channels);
  for (auto& ch : x) ch = rng.uniform_vector(n, q);
  const std::vector<u64> w = rng.uniform_vector(channels, q);
  const u64 dot_ref = dot_mod_eager(a, b, mod);
  std::vector<u64> sum_ref(n);
  weighted_sum_eager(std::span<const std::vector<u64>>(x), std::span<const u64>(w),
                     mod, sum_ref);

  for (Isa isa : supported_isas()) {
    simd::set_isa(isa);
    EXPECT_EQ(dot_mod_lazy(a, b, mod), dot_ref) << "isa=" << simd::isa_name(isa);
    std::vector<u64> out(n);
    weighted_sum_lazy(std::span<const std::vector<u64>>(x), std::span<const u64>(w),
                      mod, out);
    EXPECT_EQ(out, sum_ref) << "isa=" << simd::isa_name(isa);
  }
}

TEST(FourStepWorkspace, CallerProvidedMatchesThreadLocal) {
  const std::size_t n = 256;
  const u64 q = max_ntt_prime(50, n);
  FourStepNtt ntt(q, n);
  Rng rng(31);
  const std::vector<u64> input = rng.uniform_vector(n, q);

  std::vector<u64> via_tls = input;
  ntt.forward(via_tls);

  FourStepNtt::Workspace ws;
  std::vector<u64> via_ws = input;
  ntt.forward(via_ws, ws);
  EXPECT_EQ(via_ws, via_tls);
  EXPECT_EQ(ws.buf_a.size(), n);  // scratch retained for reuse
  EXPECT_EQ(ws.buf_b.size(), n);

  ntt.inverse(via_ws, ws);
  EXPECT_EQ(via_ws, input);
}

TEST(FourStepWorkspace, WorkspaceReusableAcrossSizesAndTables) {
  FourStepNtt::Workspace ws;
  Rng rng(32);
  for (std::size_t n : {std::size_t{64}, std::size_t{1024}, std::size_t{16}}) {
    const u64 q = max_ntt_prime(40, n);
    FourStepNtt ntt(q, n);
    const std::vector<u64> input = rng.uniform_vector(n, q);
    std::vector<u64> a = input;
    ntt.forward(a, ws);
    ntt.inverse(a, ws);
    EXPECT_EQ(a, input) << "n=" << n;
  }
}

}  // namespace
}  // namespace alchemist
