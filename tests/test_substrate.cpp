// Parallel lazy-reduction substrate: thread-pool semantics, Harvey lazy
// butterfly equivalence, and bit-identity of every pooled path against the
// sequential eager reference across (q, N, limb-count) sweeps.
//
// The determinism contract under test: for any thread count (including 1,
// which runs everything inline) and for lazy vs eager butterflies, every
// functional kernel produces bit-identical polynomials. These tests also run
// under the CI TSan job, covering the get_ntt_table cache and the pool's
// queue/claim/notify machinery.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "ckks/encoder.h"
#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keygen.h"
#include "ckks/params.h"
#include "common/modarith.h"
#include "common/primes.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "obs/substrate_metrics.h"
#include "poly/lazy_kernels.h"
#include "poly/ntt.h"
#include "poly/rns.h"
#include "sim/alchemist_sim.h"
#include "svc/job_runner.h"
#include "workloads/ckks_workloads.h"

namespace alchemist {
namespace {

// Restores the pool width on scope exit so thread-count sweeps cannot leak
// into unrelated tests.
class ScopedThreads {
 public:
  explicit ScopedThreads(std::size_t n) : prev_(ThreadPool::instance().num_threads()) {
    ThreadPool::set_threads(n);
  }
  ~ScopedThreads() { ThreadPool::set_threads(prev_); }

 private:
  std::size_t prev_;
};

RnsPoly random_poly(std::size_t n, const std::vector<u64>& moduli, u64 seed) {
  RnsPoly p(n, moduli);
  Rng rng(seed);
  for (std::size_t c = 0; c < p.num_channels(); ++c) {
    auto ch = p.channel(c);
    for (auto& v : ch) v = rng.uniform(moduli[c]);
  }
  return p;
}

// ---------------------------------------------------------------------------
// ThreadPool semantics.

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ScopedThreads guard(4);
  for (std::size_t n : {1u, 7u, 64u, 1000u, 4096u}) {
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    parallel_for(n, 8, [&](std::size_t b, std::size_t e) {
      ASSERT_LE(b, e);
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ScopedThreads guard(1);
  EXPECT_EQ(ThreadPool::instance().num_threads(), 1u);
  std::thread::id caller = std::this_thread::get_id();
  parallel_for(1000, 1, [&](std::size_t, std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPool, NestedCallsRunInlineOnWorkers) {
  ScopedThreads guard(4);
  std::atomic<int> nested_chunks{0};
  parallel_for(64, 1, [&](std::size_t b, std::size_t e) {
    // Either on a pool worker or the caller lane; a nested fan-out from a
    // worker must not re-enter the queue.
    if (ThreadPool::on_worker_thread()) {
      std::thread::id self = std::this_thread::get_id();
      ThreadPool::instance().parallel_for(32, 1, [&](std::size_t, std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), self);
        nested_chunks.fetch_add(1);
      });
    }
    for (std::size_t i = b; i < e; ++i) (void)i;
  });
  // Nested inline calls deliver the whole range as one chunk.
  EXPECT_EQ(nested_chunks.load() % 1, 0);
}

TEST(ThreadPool, ExceptionPropagatesAfterAllChunks) {
  ScopedThreads guard(4);
  EXPECT_THROW(parallel_for(256, 1,
                            [&](std::size_t b, std::size_t) {
                              if (b == 0) throw std::runtime_error("chunk failed");
                            }),
               std::runtime_error);
}

TEST(ThreadPool, SetThreadsCarriesCountersAcrossResize) {
  ScopedThreads guard(2);
  const SubstrateStats before = ThreadPool::instance().stats();
  parallel_for(1 << 16, 1, [](std::size_t, std::size_t) {});
  ThreadPool::set_threads(3);
  const SubstrateStats after = ThreadPool::instance().stats();
  EXPECT_EQ(after.threads, 3u);
  EXPECT_GT(after.parallel_fors + after.inline_runs,
            before.parallel_fors + before.inline_runs);
}

TEST(ThreadPool, SubstrateRegistryExportsCounters) {
  ScopedThreads guard(2);
  parallel_for(1 << 16, 1, [](std::size_t, std::size_t) {});
  const obs::Registry reg = obs::substrate_registry();
  EXPECT_EQ(reg.gauge("substrate.threads"), 2.0);
  EXPECT_GT(reg.counter("substrate.parallel_for") + reg.counter("substrate.inline_runs"),
            0u);
}

// ---------------------------------------------------------------------------
// Harvey lazy butterflies vs the eager reference.

TEST(LazyNtt, ForwardMatchesEagerAcrossSweep) {
  for (int bits : {20, 30, 50, 61}) {
    for (std::size_t n : {8u, 64u, 256u, 2048u}) {
      const u64 q = max_ntt_prime(bits, n);
      const NttTable& table = get_ntt_table(q, n);
      Rng rng(n + static_cast<u64>(bits));
      const std::vector<u64> input = rng.uniform_vector(n, q);
      std::vector<u64> lazy = input, eager = input;
      table.forward(lazy);
      table.forward_eager(eager);
      EXPECT_EQ(lazy, eager) << "q=" << q << " n=" << n;
    }
  }
}

TEST(LazyNtt, InverseMatchesEagerAcrossSweep) {
  for (int bits : {20, 30, 50, 61}) {
    for (std::size_t n : {8u, 64u, 256u, 2048u}) {
      const u64 q = max_ntt_prime(bits, n);
      const NttTable& table = get_ntt_table(q, n);
      Rng rng(3 * n + static_cast<u64>(bits));
      const std::vector<u64> input = rng.uniform_vector(n, q);
      std::vector<u64> lazy = input, eager = input;
      table.inverse(lazy);
      table.inverse_eager(eager);
      EXPECT_EQ(lazy, eager) << "q=" << q << " n=" << n;
    }
  }
}

TEST(LazyNtt, RoundTripAtMaxModulusBits) {
  // 4q < 2^64 headroom at the largest supported primes.
  const std::size_t n = 1024;
  const u64 q = max_ntt_prime(61, n);
  const NttTable& table = get_ntt_table(q, n);
  Rng rng(17);
  const std::vector<u64> original = rng.uniform_vector(n, q);
  std::vector<u64> a = original;
  table.forward(a);
  for (u64 v : a) EXPECT_LT(v, q);  // canonical outputs
  table.inverse(a);
  EXPECT_EQ(a, original);
}

// ---------------------------------------------------------------------------
// get_ntt_table under concurrent construction (TSan regression for the
// previously unsynchronized static cache).

TEST(NttTableCache, ConcurrentConstructionIsRaceFreeAndStable) {
  const std::size_t n = 128;
  const auto primes = generate_ntt_primes(30, n, 6);
  std::vector<std::thread> threads;
  std::vector<std::vector<const NttTable*>> seen(8);
  for (std::size_t t = 0; t < seen.size(); ++t) {
    threads.emplace_back([&, t] {
      for (int rep = 0; rep < 4; ++rep) {
        for (u64 q : primes) seen[t].push_back(&get_ntt_table(q, n));
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const auto& v : seen) {
    ASSERT_EQ(v.size(), seen[0].size());
    for (std::size_t i = 0; i < v.size(); ++i) {
      EXPECT_EQ(v[i], seen[0][i]) << "cache returned different instances";
    }
  }
}

// ---------------------------------------------------------------------------
// Pooled RNS paths: bit-identical across thread counts and limb sweeps.

TEST(PooledRns, ElementwiseAndNttBitIdenticalAcrossThreadCounts) {
  for (std::size_t limbs : {1u, 3u, 8u}) {
    const std::size_t n = 512;
    const auto moduli = generate_ntt_primes(40, n, limbs);
    const RnsPoly a0 = random_poly(n, moduli, 7 * limbs);
    const RnsPoly b0 = random_poly(n, moduli, 9 * limbs);

    auto run_all = [&](std::size_t threads) {
      ScopedThreads guard(threads);
      RnsPoly a = a0, b = b0;
      a += b;
      a -= b0;
      a.negate();
      a.mul_scalar(u64{12345});
      a.to_ntt();
      RnsPoly bn = b0;
      bn.to_ntt();
      a *= bn;
      a.to_coeff();
      RnsPoly rot = a.automorphism(5);
      rot += a;
      return rot;
    };

    const RnsPoly seq = run_all(1);
    const RnsPoly par = run_all(4);
    EXPECT_TRUE(seq == par) << "limbs=" << limbs;
  }
}

TEST(PooledRns, BconvModupModdownBitIdenticalAcrossThreadCounts) {
  for (std::size_t limbs : {2u, 4u, 11u}) {
    const std::size_t n = 256;
    const auto source = generate_ntt_primes(40, n, limbs);
    const auto special = generate_ntt_primes(41, n, 2);
    const RnsPoly x = random_poly(n, source, 31 * limbs);

    auto run_all = [&](std::size_t threads) {
      ScopedThreads guard(threads);
      const RnsPoly up = modup(x, special);
      const RnsPoly down = moddown(up, special.size());
      const BConv conv(source, special);
      RnsPoly out = conv.apply(x);
      out.append_channels(down);
      return out;
    };

    const RnsPoly seq = run_all(1);
    const RnsPoly par = run_all(4);
    EXPECT_TRUE(seq == par) << "limbs=" << limbs;
  }
}

// ---------------------------------------------------------------------------
// Weighted sums: parallel lazy vs sequential eager, incl. the headroom
// boundary where the lazy 128-bit accumulation no longer fits.

TEST(PooledWeightedSum, LazyMatchesEagerAcrossThreadCounts) {
  const std::size_t n = 10000;  // forces multiple chunks at grain 4096
  const std::size_t terms = 9;
  const Modulus mod(max_ntt_prime(50, 64));
  Rng rng(99);
  std::vector<std::vector<u64>> x(terms, std::vector<u64>(n));
  std::vector<u64> w(terms);
  for (auto& xi : x) {
    for (auto& v : xi) v = rng.uniform(mod.value());
  }
  for (auto& v : w) v = rng.uniform(mod.value());

  std::vector<u64> eager_seq(n), lazy_par(n);
  {
    ScopedThreads guard(1);
    weighted_sum_eager(std::span<const std::vector<u64>>(x), std::span<const u64>(w),
                       mod, eager_seq);
  }
  {
    ScopedThreads guard(4);
    weighted_sum_lazy(std::span<const std::vector<u64>>(x), std::span<const u64>(w),
                      mod, lazy_par);
  }
  EXPECT_EQ(eager_seq, lazy_par);
}

TEST(PooledWeightedSum, HeadroomBoundaryFallsBackAndStaysExact) {
  // 62-bit operands: 16 terms need 62+62+4 = 128 > 127 bits, so the lazy path
  // must take its block-wise fallback; 8 terms (127 bits) still accumulate in
  // one shot. Both must equal the eager reference.
  EXPECT_TRUE(lazy_accumulation_fits(8, 62, 62));
  EXPECT_FALSE(lazy_accumulation_fits(16, 62, 62));
  EXPECT_TRUE(lazy_accumulation_fits(0, 62, 62));

  const u64 q = kMaxModulus;  // 2^62 - 1 (odd; Modulus only needs q < 2^62)
  const Modulus mod(q);
  Rng rng(123);
  for (std::size_t terms : {8u, 16u, 40u}) {
    const std::size_t n = 257;
    std::vector<std::vector<u64>> x(terms, std::vector<u64>(n));
    std::vector<u64> w(terms);
    for (auto& xi : x) {
      for (auto& v : xi) v = rng.uniform(q);
    }
    for (auto& v : w) v = rng.uniform(q);
    std::vector<u64> eager(n), lazy(n);
    weighted_sum_eager(std::span<const std::vector<u64>>(x), std::span<const u64>(w),
                       mod, eager);
    weighted_sum_lazy(std::span<const std::vector<u64>>(x), std::span<const u64>(w),
                      mod, lazy);
    EXPECT_EQ(eager, lazy) << "terms=" << terms;
  }
}

// ---------------------------------------------------------------------------
// CKKS keyswitch digit fan-out: pooled path bit-identical to sequential.

TEST(PooledKeyswitch, DigitFanOutBitIdenticalAcrossThreadCounts) {
  const ckks::CkksParams params = ckks::CkksParams::toy(512, 4, 2);
  const auto ctx = std::make_shared<ckks::CkksContext>(params);
  ckks::KeyGenerator keygen(ctx, 21);
  const ckks::RelinKeys rk = keygen.make_relin_keys();
  ckks::Evaluator evaluator(ctx);

  RnsPoly d = random_poly(params.n, ctx->basis_at(params.num_levels), 55);
  d.to_ntt();

  auto run = [&](std::size_t threads) {
    ScopedThreads guard(threads);
    return evaluator.keyswitch(d, params.num_levels, rk.key);
  };
  const auto seq = run(1);
  const auto par = run(4);
  EXPECT_TRUE(seq.first == par.first);
  EXPECT_TRUE(seq.second == par.second);
}

TEST(PooledKeyswitch, HoistedRotationsBitIdenticalAcrossThreadCounts) {
  const ckks::CkksParams params = ckks::CkksParams::toy(512, 3, 3);
  const auto ctx = std::make_shared<ckks::CkksContext>(params);
  ckks::KeyGenerator keygen(ctx, 5);
  ckks::CkksEncoder encoder(ctx);
  ckks::Encryptor encryptor(ctx, keygen.make_public_key());
  ckks::Evaluator evaluator(ctx);
  const std::vector<int> steps = {1, 2, -1};
  const ckks::GaloisKeys gk = keygen.make_galois_keys(steps);

  std::vector<double> msg(params.slots());
  for (std::size_t i = 0; i < msg.size(); ++i) msg[i] = 0.001 * static_cast<double>(i);
  const ckks::Ciphertext ct = encryptor.encrypt(
      encoder.encode(std::span<const double>(msg), params.num_levels, params.scale()));

  auto run = [&](std::size_t threads) {
    ScopedThreads guard(threads);
    return evaluator.rotate_hoisted(ct, steps, gk);
  };
  const auto seq = run(1);
  const auto par = run(4);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_TRUE(seq[i].c0 == par[i].c0) << i;
    EXPECT_TRUE(seq[i].c1 == par[i].c1) << i;
  }
}

// ---------------------------------------------------------------------------
// svc composition: jobs running over the shared pool report substrate.*
// counters, and resumed-checkpoint SimResults stay bit-identical with the
// pool enabled.

TEST(PooledSvc, SnapshotCarriesSubstrateCountersAndResumeStaysBitIdentical) {
  ScopedThreads guard(4);
  const auto graph = std::make_shared<const metaop::OpGraph>(
      workloads::build_keyswitch(workloads::CkksWl::paper(16)));
  const sim::SimResult ref = sim::simulate_alchemist(*graph, arch::ArchConfig::alchemist());

  svc::JobRunner runner;
  svc::JobSpec spec;
  spec.graph = graph;
  spec.max_steps = 1;
  const svc::JobPtr job = runner.submit(std::move(spec));
  job->wait();
  ASSERT_EQ(job->state(), svc::JobState::DeadlineExpired);
  ASSERT_TRUE(job->checkpoint().valid());

  svc::JobSpec resume;
  resume.graph = graph;
  resume.resume_from = job->checkpoint();
  const svc::JobPtr resumed = runner.submit(std::move(resume));
  resumed->wait();
  ASSERT_EQ(resumed->state(), svc::JobState::Completed) << resumed->error();
  EXPECT_EQ(resumed->result().registry.counters(), ref.registry.counters());

  const obs::Registry snap = runner.snapshot();
  EXPECT_EQ(snap.gauge("substrate.threads"), 4.0);
}

}  // namespace
}  // namespace alchemist
