// Structured fuzzing of the FHE serialization layer.
//
// Every serdes type is round-tripped once, then each serialized buffer is
// attacked for a few thousand seeded iterations with the three classic
// mutations — truncation, bit flips, splices — plus hand-built adversarial
// length prefixes. The contract under attack: a mutated stream either still
// parses (impossible here, every frame carries an FNV-1a footer) or fails
// with a typed std::exception. It must never crash, hang, exhaust memory or
// hand back a silently-wrong object.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/primes.h"
#include "common/rng.h"
#include "serdes/fhe_serdes.h"
#include "tfhe/integer.h"
#include "tfhe/trlwe.h"

namespace alchemist {
namespace {

struct Target {
  std::string name;
  std::vector<std::uint8_t> bytes;
  // Parses one object from the reader; throws std::exception on corruption.
  std::function<void(BinaryReader&)> parse;
};

// One serialized specimen per serdes type, each with its reader.
std::vector<Target> make_targets() {
  std::vector<Target> targets;
  Rng rng(41);

  const auto moduli = generate_ntt_primes(30, 64, 3);
  RnsPoly poly(64, moduli);
  for (std::size_t c = 0; c < 3; ++c) {
    for (auto& x : poly.channel(c)) x = rng.uniform(moduli[c]);
  }
  poly.to_ntt();
  {
    BinaryWriter w;
    serdes::write(w, poly);
    targets.push_back({"rns_poly", w.buffer(),
                       [](BinaryReader& r) { serdes::read_rns_poly(r); }});
  }

  ckks::Ciphertext ct;
  ct.level = 3;
  ct.scale = 1099511627776.0;
  ct.c0 = poly;
  ct.c1 = poly;
  {
    BinaryWriter w;
    serdes::write(w, ct);
    targets.push_back({"ckks_ct", w.buffer(),
                       [](BinaryReader& r) { serdes::read_ckks_ciphertext(r); }});
  }
  {
    BinaryWriter w;
    serdes::write(w, ckks::SecretKey{poly});
    targets.push_back({"ckks_sk", w.buffer(),
                       [](BinaryReader& r) { serdes::read_ckks_secret_key(r); }});
  }
  {
    ckks::KSwitchKey ksk;
    ksk.digits.emplace_back(poly, poly);
    ksk.digits.emplace_back(poly, poly);
    BinaryWriter w;
    serdes::write(w, ksk);
    targets.push_back({"ckks_ksk", w.buffer(),
                       [](BinaryReader& r) { serdes::read_kswitch_key(r); }});
  }
  {
    ckks::GaloisKeys gk;
    ckks::KSwitchKey ksk;
    ksk.digits.emplace_back(poly, poly);
    gk.keys.emplace(3, ksk);
    BinaryWriter w;
    serdes::write(w, gk);
    targets.push_back({"ckks_glk", w.buffer(),
                       [](BinaryReader& r) { serdes::read_galois_keys(r); }});
  }

  tfhe::LweSample lwe;
  lwe.a = {1, 2, 3, 4, 5, 6, 7, 8};
  lwe.b = 99;
  {
    BinaryWriter w;
    serdes::write(w, lwe);
    targets.push_back({"lwe", w.buffer(),
                       [](BinaryReader& r) { serdes::read_lwe_sample(r); }});
  }
  {
    tfhe::LweKey key;
    key.s = {1, 0, 1, 1, 0, 0, 1, 0};
    BinaryWriter w;
    serdes::write(w, key);
    targets.push_back({"lwe_key", w.buffer(),
                       [](BinaryReader& r) { serdes::read_lwe_key(r); }});
  }
  {
    tfhe::TrlweSample trlwe;
    trlwe.a.emplace_back(std::vector<u64>{10, 20, 30, 40});
    trlwe.b = tfhe::TorusPoly(std::vector<u64>{5, 6, 7, 8});
    BinaryWriter w;
    serdes::write(w, trlwe);
    targets.push_back({"trlwe", w.buffer(),
                       [](BinaryReader& r) { serdes::read_trlwe_sample(r); }});
  }
  {
    tfhe::EncInt value;
    value.bits = {lwe, lwe, lwe, lwe};
    BinaryWriter w;
    serdes::write(w, value);
    targets.push_back({"encint", w.buffer(),
                       [](BinaryReader& r) { serdes::read_enc_int(r); }});
  }
  return targets;
}

// The intact specimen must parse; a mutated one must throw a typed exception.
void expect_parses(const Target& t) {
  BinaryReader r(t.bytes);
  EXPECT_NO_THROW(t.parse(r)) << t.name;
}

void expect_typed_failure(const Target& t, std::vector<std::uint8_t> mutated,
                          const char* mutation, std::uint64_t iter) {
  if (mutated == t.bytes) return;  // mutation was a no-op; nothing to assert
  BinaryReader r(std::move(mutated));
  try {
    t.parse(r);
    FAIL() << t.name << ": " << mutation << " iteration " << iter
           << " was silently accepted";
  } catch (const std::exception&) {
    // Typed failure — the contract. Anything else (signal, terminate, OOM)
    // kills the test binary and fails the suite.
  }
}

TEST(SerdesFuzz, IntactSpecimensRoundTrip) {
  for (const auto& t : make_targets()) expect_parses(t);
}

TEST(SerdesFuzz, TruncationAlwaysThrows) {
  const auto targets = make_targets();
  Rng rng(1001);
  for (const auto& t : targets) {
    // Every strict prefix is a truncation; cover all short ones and sample
    // the rest so each type sees a few hundred cases.
    for (std::size_t len = 0; len < t.bytes.size();
         len += 1 + rng.uniform(4)) {
      std::vector<std::uint8_t> cut(t.bytes.begin(), t.bytes.begin() + len);
      expect_typed_failure(t, std::move(cut), "truncate", len);
    }
  }
}

TEST(SerdesFuzz, BitFlipsAlwaysThrow) {
  const auto targets = make_targets();
  Rng rng(2002);
  for (const auto& t : targets) {
    for (std::uint64_t iter = 0; iter < 400; ++iter) {
      std::vector<std::uint8_t> mutated = t.bytes;
      const std::size_t byte = rng.uniform(mutated.size());
      mutated[byte] ^= static_cast<std::uint8_t>(1u << rng.uniform(8));
      expect_typed_failure(t, std::move(mutated), "bit-flip", iter);
    }
  }
}

TEST(SerdesFuzz, SplicesAlwaysThrow) {
  const auto targets = make_targets();
  Rng rng(3003);
  for (const auto& t : targets) {
    for (std::uint64_t iter = 0; iter < 200; ++iter) {
      std::vector<std::uint8_t> mutated = t.bytes;
      // Copy a random window onto another random position (within-stream
      // splice: well-formed bytes in the wrong place).
      const std::size_t len = 1 + rng.uniform(std::min<std::size_t>(32, mutated.size()));
      const std::size_t src = rng.uniform(mutated.size() - len + 1);
      const std::size_t dst = rng.uniform(mutated.size() - len + 1);
      for (std::size_t i = 0; i < len; ++i) mutated[dst + i] = t.bytes[src + i];
      expect_typed_failure(t, std::move(mutated), "splice", iter);
    }
    // Cross-type splice: swap the tails of two different objects.
    const auto& other = targets[(&t - targets.data() + 1) % targets.size()];
    std::vector<std::uint8_t> franken(t.bytes.begin(),
                                      t.bytes.begin() + t.bytes.size() / 2);
    franken.insert(franken.end(), other.bytes.begin() + other.bytes.size() / 2,
                   other.bytes.end());
    expect_typed_failure(t, std::move(franken), "cross-splice", 0);
  }
}

TEST(SerdesFuzz, AdversarialLengthPrefixesThrowInsteadOfAllocating) {
  // A tiny stream claiming 2^60 vector elements must be rejected against the
  // remaining byte count BEFORE any allocation.
  BinaryWriter w;
  w.write_u64(u64{1} << 60);
  w.write_u64(42);
  BinaryReader r(w.buffer());
  EXPECT_THROW(r.read_u64_vector(), std::runtime_error);

  // The same attack through every length-prefixed serdes field: overwrite a
  // count inside a valid frame with a huge value. The checksum would catch
  // it anyway, but the length caps must fire first (no OOM on the way).
  for (const auto& t : make_targets()) {
    Rng rng(4004);
    for (std::uint64_t iter = 0; iter < 64; ++iter) {
      std::vector<std::uint8_t> mutated = t.bytes;
      const std::size_t pos = rng.uniform(mutated.size() > 8 ? mutated.size() - 8 : 1);
      for (std::size_t i = 0; i < 8 && pos + i < mutated.size(); ++i) {
        mutated[pos + i] = 0xFF;
      }
      expect_typed_failure(t, std::move(mutated), "huge-length", iter);
    }
  }
}

TEST(SerdesFuzz, ZeroAndTinyBuffersThrow) {
  for (const auto& t : make_targets()) {
    expect_typed_failure(t, {}, "empty", 0);
    expect_typed_failure(t, {0x00}, "one-byte", 0);
    expect_typed_failure(t, std::vector<std::uint8_t>(16, 0xFF), "all-ones", 0);
  }
}

}  // namespace
}  // namespace alchemist
