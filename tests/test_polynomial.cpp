#include "poly/polynomial.h"

#include <gtest/gtest.h>

#include "common/primes.h"
#include "common/rng.h"

namespace alchemist {
namespace {

Polynomial random_poly(std::size_t n, u64 q, u64 seed) {
  Rng rng(seed);
  return Polynomial(rng.uniform_vector(n, q), q);
}

TEST(Polynomial, ConstructionAndReduction) {
  Polynomial p({20, 21, 22, 23}, 7);
  EXPECT_EQ(p[0], 6u);
  EXPECT_EQ(p[1], 0u);
  EXPECT_EQ(p.degree(), 4u);
  EXPECT_EQ(p.modulus(), 7u);
  EXPECT_THROW(Polynomial(3, 17), std::invalid_argument);
}

TEST(Polynomial, AddSubNegate) {
  const u64 q = 17;
  Polynomial a({1, 2, 3, 4}, q), b({16, 16, 16, 16}, q);
  Polynomial sum = a + b;
  EXPECT_EQ(sum.coeffs(), (std::vector<u64>{0, 1, 2, 3}));
  Polynomial diff = sum - b;
  EXPECT_EQ(diff, a);
  Polynomial neg = a;
  neg.negate();
  EXPECT_EQ((a + neg).coeffs(), (std::vector<u64>{0, 0, 0, 0}));
}

TEST(Polynomial, MulScalar) {
  const u64 q = 97;
  Polynomial a({1, 2, 3, 4}, q);
  a.mul_scalar(10);
  EXPECT_EQ(a.coeffs(), (std::vector<u64>{10, 20, 30, 40}));
}

TEST(Polynomial, SchoolbookKnownProduct) {
  // (1 + X) * (1 + X) = 1 + 2X + X^2 in Z_q[X]/(X^4+1).
  const u64 q = max_ntt_prime(20, 4);
  Polynomial a({1, 1, 0, 0}, q);
  Polynomial c = a.mul_schoolbook(a);
  EXPECT_EQ(c.coeffs(), (std::vector<u64>{1, 2, 1, 0}));
}

TEST(Polynomial, SchoolbookWraparoundIsNegacyclic) {
  // X^(N-1) * X = -1 mod (X^N + 1).
  const std::size_t n = 8;
  const u64 q = max_ntt_prime(20, n);
  Polynomial a(n, q), b(n, q);
  a[n - 1] = 1;
  b[1] = 1;
  Polynomial c = a.mul_schoolbook(b);
  EXPECT_EQ(c[0], q - 1);
  for (std::size_t i = 1; i < n; ++i) EXPECT_EQ(c[i], 0u);
}

class PolyMulParam : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PolyMulParam, NttMulMatchesSchoolbook) {
  const std::size_t n = GetParam();
  const u64 q = max_ntt_prime(45, n);
  const Polynomial a = random_poly(n, q, 10 + n);
  const Polynomial b = random_poly(n, q, 20 + n);
  EXPECT_EQ(a * b, a.mul_schoolbook(b));
}

INSTANTIATE_TEST_SUITE_P(Sizes, PolyMulParam, ::testing::Values(4, 16, 64, 256, 1024));

TEST(Polynomial, RingAxioms) {
  const std::size_t n = 64;
  const u64 q = max_ntt_prime(30, n);
  const Polynomial a = random_poly(n, q, 1);
  const Polynomial b = random_poly(n, q, 2);
  const Polynomial c = random_poly(n, q, 3);
  EXPECT_EQ(a * b, b * a);
  EXPECT_EQ((a * b) * c, a * (b * c));
  EXPECT_EQ(a * (b + c), a * b + a * c);
  Polynomial one(n, q);
  one[0] = 1;
  EXPECT_EQ(a * one, a);
}

TEST(Polynomial, AutomorphismComposesLikeGaloisGroup) {
  const std::size_t n = 16;
  const u64 q = max_ntt_prime(20, n);
  const Polynomial a = random_poly(n, q, 4);
  // sigma_5 . sigma_5 == sigma_25; exponents compose mod 2N.
  const Polynomial lhs = a.automorphism(5).automorphism(5);
  const Polynomial rhs = a.automorphism(25 % (2 * n));
  EXPECT_EQ(lhs, rhs);
}

TEST(Polynomial, AutomorphismIsRingHomomorphism) {
  const std::size_t n = 32;
  const u64 q = max_ntt_prime(25, n);
  const Polynomial a = random_poly(n, q, 5);
  const Polynomial b = random_poly(n, q, 6);
  const u64 g = 3;
  EXPECT_EQ((a * b).automorphism(g), a.automorphism(g) * b.automorphism(g));
  EXPECT_EQ((a + b).automorphism(g), a.automorphism(g) + b.automorphism(g));
}

TEST(Polynomial, AutomorphismIdentityAndInverse) {
  const std::size_t n = 16;
  const u64 q = max_ntt_prime(20, n);
  const Polynomial a = random_poly(n, q, 7);
  EXPECT_EQ(a.automorphism(1), a);
  // g * g_inv = 1 mod 2N -> automorphisms invert.
  const u64 g = 5;
  const u64 g_inv = inv_mod(g, 2 * n);
  EXPECT_EQ(a.automorphism(g).automorphism(g_inv), a);
  EXPECT_THROW(a.automorphism(4), std::invalid_argument);
}

TEST(Polynomial, MismatchedRingsThrow) {
  Polynomial a(8, 17), b(8, 97), c(16, 17);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= c, std::invalid_argument);
  EXPECT_THROW(a* b, std::invalid_argument);
  EXPECT_THROW(a.mul_schoolbook(c), std::invalid_argument);
}

}  // namespace
}  // namespace alchemist
