#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "tfhe/torus.h"
#include "tfhe/torus_poly.h"

namespace alchemist::tfhe {
namespace {

TEST(Torus, DoubleRoundTrip) {
  for (double x : {0.0, 0.25, -0.25, 0.125, -0.4999, 0.3}) {
    EXPECT_NEAR(torus_to_double(torus_from_double(x)), x, 1e-15) << x;
  }
}

TEST(Torus, MessageRoundTrip) {
  for (u64 space : {u64{2}, u64{4}, u64{8}, u64{16}, u64{5}, u64{7}}) {
    for (u64 m = 0; m < space; ++m) {
      EXPECT_EQ(torus_to_message(torus_from_message(m, space), space), m)
          << "space=" << space << " m=" << m;
    }
  }
}

TEST(Torus, MessageRobustToSmallNoise) {
  const u64 space = 8;
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const u64 m = rng.uniform(space);
    const Torus clean = torus_from_message(m, space);
    // Noise up to 1/64 of the torus keeps the nearest-point decoding intact.
    const i64 noise = static_cast<i64>(rng.uniform(u64{1} << 57)) - (i64{1} << 56);
    EXPECT_EQ(torus_to_message(clean + static_cast<u64>(noise), space), m);
  }
}

TEST(Torus, Z2nRounding) {
  const std::size_t n = 1024;
  EXPECT_EQ(torus_to_z2n(0, n), 0u);
  // t = 1/4 -> 2N/4
  EXPECT_EQ(torus_to_z2n(u64{1} << 62, n), 512u);
  // t just below 1 wraps to 0.
  EXPECT_EQ(torus_to_z2n(~u64{0}, n), 0u);
}

class GadgetDecomposeParam : public ::testing::TestWithParam<std::pair<int, std::size_t>> {};

TEST_P(GadgetDecomposeParam, ReconstructionWithinBound) {
  const auto [bg_bits, l] = GetParam();
  const auto scales = gadget_scales(bg_bits, l);
  const i64 half_bg = i64{1} << (bg_bits - 1);
  const u64 bound = u64{1} << (64 - l * static_cast<std::size_t>(bg_bits) - 1);
  Rng rng(static_cast<u64>(bg_bits) * 1000 + l);
  for (int trial = 0; trial < 2000; ++trial) {
    const Torus t = rng.next();
    const auto digits = gadget_decompose(t, bg_bits, l);
    ASSERT_EQ(digits.size(), l);
    Torus recon = 0;
    for (std::size_t i = 0; i < l; ++i) {
      EXPECT_GE(digits[i], -half_bg);
      EXPECT_LT(digits[i], half_bg);
      recon += static_cast<u64>(digits[i]) * scales[i];
    }
    const i64 eps = static_cast<i64>(t - recon);
    EXPECT_LE(static_cast<u64>(std::abs(eps)), bound)
        << "t=" << t << " bg=" << bg_bits << " l=" << l;
  }
}

INSTANTIATE_TEST_SUITE_P(Bases, GadgetDecomposeParam,
                         ::testing::Values(std::pair{7, std::size_t{3}},
                                           std::pair{8, std::size_t{2}},
                                           std::pair{2, std::size_t{8}},
                                           std::pair{10, std::size_t{2}},
                                           std::pair{4, std::size_t{6}}));

TEST(GadgetDecompose, RejectsBadParameters) {
  EXPECT_THROW(gadget_decompose(0, 0, 3), std::invalid_argument);
  EXPECT_THROW(gadget_decompose(0, 8, 0), std::invalid_argument);
  EXPECT_THROW(gadget_decompose(0, 32, 2), std::invalid_argument);  // 64 > 63
}

TEST(TorusPoly, AddSubNegate) {
  TorusPoly a(4), b(4);
  a[0] = 5;
  a[3] = ~u64{0};
  b[0] = 3;
  b[3] = 2;
  TorusPoly sum = a + b;
  EXPECT_EQ(sum[0], 8u);
  EXPECT_EQ(sum[3], 1u);  // wraps
  TorusPoly diff = sum - b;
  EXPECT_EQ(diff, a);
  TorusPoly neg = a;
  neg.negate();
  TorusPoly zero = a + neg;
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(zero[i], 0u);
}

TEST(TorusPoly, RotateBasics) {
  const std::size_t n = 8;
  TorusPoly p(n);
  p[0] = 42;
  // X^1 shifts coefficient 0 to 1.
  EXPECT_EQ(p.rotate(1)[1], 42u);
  // X^N negates (X^N = -1).
  TorusPoly full = p.rotate(n);
  EXPECT_EQ(full[0], static_cast<u64>(-i64{42}));
  // X^2N is identity.
  EXPECT_EQ(p.rotate(2 * n), p);
}

TEST(TorusPoly, RotateComposes) {
  const std::size_t n = 16;
  Rng rng(2);
  TorusPoly p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = rng.next();
  for (u64 e1 : {u64{3}, u64{15}, u64{17}}) {
    for (u64 e2 : {u64{1}, u64{9}, u64{30}}) {
      EXPECT_EQ(p.rotate(e1).rotate(e2), p.rotate((e1 + e2) % (2 * n)));
    }
  }
}

TEST(TorusPolyMul, SchoolbookMonomials) {
  const std::size_t n = 8;
  std::vector<i64> a(n, 0);
  a[1] = 1;  // X
  TorusPoly b(n);
  b[n - 1] = 7;  // 7 X^(N-1)
  const TorusPoly prod = negacyclic_mul_schoolbook(a, b);
  EXPECT_EQ(prod[0], static_cast<u64>(-i64{7}));  // X * X^(N-1) = -1
  for (std::size_t i = 1; i < n; ++i) EXPECT_EQ(prod[i], 0u);
}

TEST(TorusPolyMul, NegativeIntCoefficients) {
  const std::size_t n = 4;
  std::vector<i64> a = {-3, 0, 0, 0};
  TorusPoly b(n);
  b[2] = 10;
  const TorusPoly prod = negacyclic_mul_schoolbook(a, b);
  EXPECT_EQ(prod[2], static_cast<u64>(-i64{30}));
}

class TorusNttMulParam : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TorusNttMulParam, NttMatchesSchoolbookExactly) {
  const std::size_t n = GetParam();
  const TorusNttContext& ctx = TorusNttContext::get(n);
  Rng rng(n * 31);
  // Digits in the TFHE gadget range, torus values across the full 2^64.
  std::vector<i64> a(n);
  for (i64& v : a) v = static_cast<i64>(rng.uniform(256)) - 128;
  TorusPoly b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = rng.next();

  auto acc = ctx.zero();
  ctx.mul_accumulate(acc, ctx.forward_int(a), ctx.forward_torus(b));
  const TorusPoly fast = ctx.inverse(acc);
  const TorusPoly reference = negacyclic_mul_schoolbook(a, b);
  EXPECT_EQ(fast, reference) << "bit-exact CRT lift failed at n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, TorusNttMulParam, ::testing::Values(16, 64, 256, 1024, 2048));

TEST(TorusNttMul, AccumulationOfManyProducts) {
  // Accumulating (k+1)*l = 8 products in the domain stays exact.
  const std::size_t n = 128;
  const TorusNttContext& ctx = TorusNttContext::get(n);
  Rng rng(77);
  auto acc = ctx.zero();
  TorusPoly expected(n);
  for (int term = 0; term < 8; ++term) {
    std::vector<i64> a(n);
    for (i64& v : a) v = static_cast<i64>(rng.uniform(256)) - 128;
    TorusPoly b(n);
    for (std::size_t i = 0; i < n; ++i) b[i] = rng.next();
    ctx.mul_accumulate(acc, ctx.forward_int(a), ctx.forward_torus(b));
    expected += negacyclic_mul_schoolbook(a, b);
  }
  EXPECT_EQ(ctx.inverse(acc), expected);
}

TEST(TorusNttContext, CacheAndErrors) {
  EXPECT_EQ(&TorusNttContext::get(64), &TorusNttContext::get(64));
  EXPECT_THROW(TorusNttContext(100), std::invalid_argument);
  const TorusNttContext& ctx = TorusNttContext::get(32);
  std::vector<i64> wrong(16, 0);
  EXPECT_THROW(ctx.forward_int(wrong), std::invalid_argument);
}

}  // namespace
}  // namespace alchemist::tfhe
