#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keygen.h"
#include "common/primes.h"
#include "common/rng.h"
#include "serdes/fhe_serdes.h"

namespace alchemist {
namespace {

TEST(BinarySerdes, PrimitiveRoundTrip) {
  BinaryWriter w;
  w.write_u8(7);
  w.write_u64(~u64{0});
  w.write_double(-3.25e100);
  w.write_u64_vector(std::vector<u64>{1, 2, 3});
  w.write_tag("hello");

  BinaryReader r(w.buffer());
  EXPECT_EQ(r.read_u8(), 7);
  EXPECT_EQ(r.read_u64(), ~u64{0});
  EXPECT_DOUBLE_EQ(r.read_double(), -3.25e100);
  EXPECT_EQ(r.read_u64_vector(), (std::vector<u64>{1, 2, 3}));
  EXPECT_NO_THROW(r.expect_tag("hello"));
  EXPECT_TRUE(r.at_end());
}

TEST(BinarySerdes, TruncationAndTagMismatchThrow) {
  BinaryWriter w;
  w.write_u64(42);
  BinaryReader r(w.buffer());
  r.read_u64();
  EXPECT_THROW(r.read_u64(), std::runtime_error);

  BinaryWriter w2;
  w2.write_tag("alpha");
  BinaryReader r2(w2.buffer());
  EXPECT_THROW(r2.expect_tag("beta"), std::runtime_error);
}

TEST(BinarySerdes, FileRoundTrip) {
  const std::string path = "/tmp/alchemist_serdes_test.bin";
  BinaryWriter w;
  w.write_u64(12345);
  w.save(path);
  BinaryReader r = BinaryReader::load(path);
  EXPECT_EQ(r.read_u64(), 12345u);
  std::remove(path.c_str());
  EXPECT_THROW(BinaryReader::load("/nonexistent/nope.bin"), std::runtime_error);
}

TEST(FheSerdes, RnsPolyRoundTrip) {
  const auto moduli = generate_ntt_primes(30, 64, 3);
  RnsPoly p(64, moduli);
  Rng rng(1);
  for (std::size_t c = 0; c < 3; ++c) {
    for (auto& x : p.channel(c)) x = rng.uniform(moduli[c]);
  }
  p.to_ntt();
  BinaryWriter w;
  serdes::write(w, p);
  BinaryReader r(w.buffer());
  EXPECT_EQ(serdes::read_rns_poly(r), p);
}

TEST(FheSerdes, RnsPolyRejectsOutOfRangeResidue) {
  const auto moduli = generate_ntt_primes(30, 16, 1);
  RnsPoly p(16, moduli);
  BinaryWriter w;
  serdes::write(w, p);
  // Corrupt one residue to >= q.
  auto buf = w.buffer();
  // Last 8 bytes hold the final residue; overwrite with ~0.
  for (std::size_t i = buf.size() - 8; i < buf.size(); ++i) buf[i] = 0xFF;
  BinaryReader r(std::move(buf));
  EXPECT_THROW(serdes::read_rns_poly(r), std::runtime_error);
}

TEST(FheSerdes, CkksCiphertextSurvivesSaveLoadDecrypt) {
  using namespace ckks;
  auto ctx = std::make_shared<CkksContext>(CkksParams::toy(512, 3, 1));
  CkksEncoder encoder(ctx);
  KeyGenerator keygen(ctx, 3);
  Encryptor encryptor(ctx, keygen.make_public_key());
  Decryptor decryptor(ctx, keygen.secret_key());

  const std::vector<double> z = {1.25, -0.75, 3.5};
  const Ciphertext ct = encryptor.encrypt(
      encoder.encode(std::span<const double>(z), 3, ctx->params().scale()));

  BinaryWriter w;
  serdes::write(w, ct);
  serdes::write(w, keygen.secret_key());
  BinaryReader r(w.buffer());
  const Ciphertext loaded_ct = serdes::read_ckks_ciphertext(r);
  const SecretKey loaded_sk = serdes::read_ckks_secret_key(r);

  Decryptor fresh_decryptor(ctx, loaded_sk);
  const auto dec = fresh_decryptor.decrypt(loaded_ct, encoder);
  EXPECT_NEAR(dec[0].real(), 1.25, 1e-5);
  EXPECT_NEAR(dec[1].real(), -0.75, 1e-5);
  EXPECT_NEAR(dec[2].real(), 3.5, 1e-5);
}

TEST(FheSerdes, CkksKeysRoundTripAndStillWork) {
  using namespace ckks;
  auto ctx = std::make_shared<CkksContext>(CkksParams::toy(512, 4, 2));
  CkksEncoder encoder(ctx);
  KeyGenerator keygen(ctx, 4);
  Encryptor encryptor(ctx, keygen.make_public_key());
  Decryptor decryptor(ctx, keygen.secret_key());
  Evaluator evaluator(ctx);

  BinaryWriter w;
  serdes::write(w, keygen.make_relin_keys());
  serdes::write(w, keygen.make_galois_keys({1}));
  BinaryReader r(w.buffer());
  const RelinKeys rk = serdes::read_relin_keys(r);
  const GaloisKeys gk = serdes::read_galois_keys(r);

  const std::vector<double> z = {0.5, -0.5, 2.0};
  const Ciphertext ct = encryptor.encrypt(
      encoder.encode(std::span<const double>(z), 4, ctx->params().scale()));
  // Reloaded keys must still relinearize and rotate correctly.
  const auto sq = decryptor.decrypt(
      evaluator.rescale(evaluator.multiply(ct, ct, rk)), encoder);
  EXPECT_NEAR(sq[0].real(), 0.25, 1e-3);
  const auto rot = decryptor.decrypt(evaluator.rotate(ct, 1, gk), encoder);
  EXPECT_NEAR(rot[0].real(), -0.5, 1e-3);
}

TEST(FheSerdes, TfheRoundTrips) {
  using namespace tfhe;
  Rng rng(5);
  const TfheParams params = TfheParams::toy();
  const LweKey key = lwe_keygen(params.n_lwe, rng);
  const LweSample ct = encrypt_bit(true, key, 1e-12, rng);
  const TrlweKey tkey = trlwe_keygen(params, rng);
  TorusPoly msg(params.degree);
  msg[0] = torus_from_message(3, 8);
  const TrlweSample tct = trlwe_encrypt(params, tkey, msg, rng);
  const EncInt value = encrypt_int(0xAB, 8, key, 1e-12, rng);

  BinaryWriter w;
  serdes::write(w, ct);
  serdes::write(w, key);
  serdes::write(w, tct);
  serdes::write(w, value);
  BinaryReader r(w.buffer());

  const LweSample ct2 = serdes::read_lwe_sample(r);
  const LweKey key2 = serdes::read_lwe_key(r);
  EXPECT_TRUE(decrypt_bit(ct2, key2));
  const TrlweSample tct2 = serdes::read_trlwe_sample(r);
  EXPECT_EQ(torus_to_message(trlwe_phase(tct2, tkey)[0], 8), 3u);
  const EncInt value2 = serdes::read_enc_int(r);
  EXPECT_EQ(decrypt_int(value2, key2), 0xABu);
}

TEST(FheSerdes, WrongTypeTagFailsLoudly) {
  using namespace tfhe;
  Rng rng(6);
  const LweKey key = lwe_keygen(16, rng);
  BinaryWriter w;
  serdes::write(w, key);
  BinaryReader r(w.buffer());
  EXPECT_THROW(serdes::read_lwe_sample(r), std::runtime_error);
}

}  // namespace
}  // namespace alchemist
