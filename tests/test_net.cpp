// The TCP job protocol end to end: exactly-once resubmission semantics of
// the IdempotencyTable, the Server's connection-lifecycle hardening (version
// mismatch, oversize frames, drain), the retrying Client, and the seeded
// determinism of the chaos proxy's fault plans.
//
// The admission-accounting regression at the heart of the idempotency design:
// a duplicate submission of the same (tenant, client_job_id) must return the
// cached terminal state WITHOUT re-charging admission — svc.submitted and the
// svc.tenant.* counters move once per key, never once per wire submission.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "net/chaos.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/idempotency.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/socket.h"
#include "svc/job_runner.h"
#include "workloads/ckks_workloads.h"

namespace alchemist {
namespace {

using namespace std::chrono_literals;

std::shared_ptr<const metaop::OpGraph> shared_graph(metaop::OpGraph g) {
  return std::make_shared<const metaop::OpGraph>(std::move(g));
}

std::shared_ptr<const metaop::OpGraph> keyswitch_graph() {
  return shared_graph(workloads::build_keyswitch(workloads::CkksWl::paper(16)));
}

svc::JobSpec tiny_spec(const std::string& name) {
  svc::JobSpec spec;
  spec.name = name;
  spec.graph = keyswitch_graph();
  return spec;
}

// Client options tuned for tests: fast ticks, tight backoff, no real sleeps
// longer than a few ms.
net::ClientOptions fast_client(int port, std::size_t attempts = 8) {
  net::ClientOptions copts;
  copts.port = port;
  copts.tick = 5ms;
  copts.response_timeout = 10s;
  copts.max_attempts = attempts;
  copts.backoff.base_us = 200;
  copts.backoff.cap_us = 2000;
  copts.backoff.jitter = 0.0;
  return copts;
}

// ------------------------------------------------------ IdempotencyTable --

TEST(IdempotencyTable, FreshThenAttachedThenReplayed) {
  svc::RunnerOptions ropts;
  ropts.workers = 1;
  ropts.start_paused = true;  // keep the first submission live (Queued)
  svc::JobRunner runner(ropts);
  net::IdempotencyTable table(8);

  int makes = 0;
  auto make = [&] {
    ++makes;
    return runner.submit(tiny_spec("idem"));
  };

  const auto first = table.submit("t", "job-1", make);
  EXPECT_EQ(first.outcome, net::IdempotencyTable::Outcome::Fresh);
  ASSERT_NE(first.job, nullptr);
  EXPECT_EQ(makes, 1);

  // Duplicate while live: re-attach to the same handle, make() not called.
  const auto dup = table.submit("t", "job-1", make);
  EXPECT_EQ(dup.outcome, net::IdempotencyTable::Outcome::Attached);
  EXPECT_EQ(dup.job, first.job);
  EXPECT_EQ(makes, 1);

  runner.set_paused(false);
  first.job->wait();
  ASSERT_EQ(first.job->state(), svc::JobState::Completed);

  // Duplicate after terminal: replay the cached state, still no new run.
  const auto replay = table.submit("t", "job-1", make);
  EXPECT_EQ(replay.outcome, net::IdempotencyTable::Outcome::Replayed);
  EXPECT_EQ(replay.job, first.job);
  EXPECT_EQ(makes, 1);
  EXPECT_EQ(table.size(), 1u);
}

TEST(IdempotencyTable, KeysAreScopedPerTenant) {
  svc::RunnerOptions ropts;
  ropts.workers = 1;
  ropts.start_paused = true;
  svc::JobRunner runner(ropts);
  net::IdempotencyTable table(8);
  auto make = [&] { return runner.submit(tiny_spec("scoped")); };

  const auto a = table.submit("tenant-a", "same-id", make);
  const auto b = table.submit("tenant-b", "same-id", make);
  EXPECT_EQ(a.outcome, net::IdempotencyTable::Outcome::Fresh);
  EXPECT_EQ(b.outcome, net::IdempotencyTable::Outcome::Fresh);
  EXPECT_NE(a.job, b.job);
  EXPECT_EQ(table.size(), 2u);
}

TEST(IdempotencyTable, ForgetDropsOnlyTheMatchingMapping) {
  svc::RunnerOptions ropts;
  ropts.workers = 1;
  ropts.start_paused = true;
  svc::JobRunner runner(ropts);
  net::IdempotencyTable table(8);
  auto make = [&] { return runner.submit(tiny_spec("forget")); };

  const auto first = table.submit("", "k", make);
  // forget() with a different job handle is a no-op (a concurrent duplicate
  // may have replaced the entry between reject and forget).
  const auto other = runner.submit(tiny_spec("other"));
  table.forget("", "k", other);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.submit("", "k", make).outcome,
            net::IdempotencyTable::Outcome::Attached);

  table.forget("", "k", first.job);
  EXPECT_EQ(table.size(), 0u);
  // The key is resubmittable: a new run, exactly the retryable-rejection flow.
  EXPECT_EQ(table.submit("", "k", make).outcome,
            net::IdempotencyTable::Outcome::Fresh);
}

TEST(IdempotencyTable, BoundedUnderCallerControlledKeysEvictsTerminalLru) {
  // Terminal handles cost nothing to make: a shut-down runner sheds every
  // submission into an immediately-terminal state.
  svc::JobRunner runner(svc::RunnerOptions{});
  runner.shutdown();
  auto make = [&] { return runner.submit(tiny_spec("shed")); };

  net::IdempotencyTable table(4);
  for (int i = 0; i < 32; ++i) {
    const auto got =
        table.submit("", "burner-" + std::to_string(i), make);
    EXPECT_EQ(got.outcome, net::IdempotencyTable::Outcome::Fresh);
    ASSERT_NE(got.job, nullptr);
    ASSERT_TRUE(got.job->terminal());
    EXPECT_LE(table.size(), 4u);
  }
  EXPECT_EQ(table.size(), 4u);
  EXPECT_EQ(table.evictions(), 28u);

  // LRU order: the survivors are the most recently touched keys, so the
  // oldest key restarts Fresh while the newest replays.
  int makes_before = 0;
  auto counting = [&] {
    ++makes_before;
    return runner.submit(tiny_spec("again"));
  };
  EXPECT_EQ(table.submit("", "burner-31", counting).outcome,
            net::IdempotencyTable::Outcome::Replayed);
  EXPECT_EQ(makes_before, 0);
  EXPECT_EQ(table.submit("", "burner-0", counting).outcome,
            net::IdempotencyTable::Outcome::Fresh);
  EXPECT_EQ(makes_before, 1);
}

TEST(IdempotencyTable, RefusesBusyRatherThanEvictingLiveEntries) {
  svc::RunnerOptions ropts;
  ropts.workers = 1;
  ropts.start_paused = true;  // every submission stays live
  svc::JobRunner runner(ropts);
  int makes = 0;
  auto make = [&] {
    ++makes;
    return runner.submit(tiny_spec("live"));
  };

  net::IdempotencyTable table(2);
  EXPECT_EQ(table.submit("", "a", make).outcome,
            net::IdempotencyTable::Outcome::Fresh);
  EXPECT_EQ(table.submit("", "b", make).outcome,
            net::IdempotencyTable::Outcome::Fresh);

  const auto refused = table.submit("", "c", make);
  EXPECT_EQ(refused.outcome, net::IdempotencyTable::Outcome::Busy);
  EXPECT_EQ(refused.job, nullptr);
  EXPECT_EQ(makes, 2);  // make() must not run for a refused submission

  // Existing keys still resolve while the table is full.
  EXPECT_EQ(table.submit("", "a", make).outcome,
            net::IdempotencyTable::Outcome::Attached);
}

// -------------------------------------------------------------- raw wire --

// Minimal hand-rolled protocol speaker for the lifecycle tests the retrying
// Client deliberately papers over (version mismatch, oversize, reattach).
struct RawConn {
  net::ScopedFd fd;
  net::FrameParser parser;

  explicit RawConn(int port) : fd(net::connect_loopback(port)) {
    if (fd.valid()) net::set_recv_timeout(fd.get(), 20000us);
  }

  bool send(net::FrameType type, std::span<const std::uint8_t> payload,
            std::uint8_t version = net::kProtocolVersion) {
    const auto frame = net::encode_frame(type, payload, version);
    return net::send_all(fd.get(), frame.data(), frame.size());
  }

  // Waits for the next frame; false on close/timeout/parse failure.
  bool recv_frame(net::Frame& out, std::chrono::milliseconds timeout = 5000ms) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    std::array<std::uint8_t, 4096> buf;
    for (;;) {
      if (parser.next(out) == net::FrameError::None) return true;
      if (parser.failed()) return false;
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::size_t got = 0;
      const auto rs = net::recv_some(fd.get(), buf.data(), buf.size(), got);
      if (rs == net::RecvStatus::Data) {
        parser.feed(std::span<const std::uint8_t>(buf.data(), got));
      } else if (rs != net::RecvStatus::TimedOut) {
        // Peer closed: drain whatever was already buffered.
        if (parser.next(out) == net::FrameError::None) return true;
        return false;
      }
    }
  }

  bool handshake() {
    net::HelloPayload hello;
    hello.client = "raw-test";
    if (!send(net::FrameType::Hello, net::encode(hello))) return false;
    net::Frame f;
    return recv_frame(f) && f.type == net::FrameType::HelloAck;
  }
};

struct ServerFixture {
  obs::TraceSink sink;  // trace ids on the wire require a tracing runner
  svc::JobRunner runner;
  net::Server server;

  explicit ServerFixture(svc::RunnerOptions ropts = make_runner_opts(),
                         net::ServerOptions sopts = make_server_opts())
      : runner(with_trace(ropts, sink)),
        server(runner, {{"keyswitch", keyswitch_graph()}}, sopts) {}

  static svc::RunnerOptions make_runner_opts() {
    svc::RunnerOptions r;
    r.workers = 2;
    return r;
  }
  static net::ServerOptions make_server_opts() {
    net::ServerOptions s;
    s.tick = 5ms;
    return s;
  }
  static svc::RunnerOptions with_trace(svc::RunnerOptions r,
                                       obs::TraceSink& sink) {
    r.trace = &sink;
    return r;
  }
};

// ------------------------------------------------------------ server e2e --

TEST(NetServer, CompletesAJobEndToEnd) {
  ServerFixture fx;
  ASSERT_TRUE(fx.server.start()) << fx.server.error();

  net::Client client(fast_client(fx.server.port()));
  net::SubmitPayload sub;
  sub.client_job_id = "e2e-1";
  sub.workload = "keyswitch";
  const auto out = client.run(sub);
  ASSERT_TRUE(out.delivered) << out.error;
  EXPECT_EQ(static_cast<svc::JobState>(out.state), svc::JobState::Completed);
  ASSERT_TRUE(out.has_result);
  EXPECT_GT(out.result.cycles, 0u);
  EXPECT_FALSE(out.replayed);
  EXPECT_NE(out.trace_id, 0u);

  const auto reg = fx.server.snapshot();
  EXPECT_EQ(reg.counter(net::metrics::kSubmitted), 1u);
  EXPECT_EQ(reg.counter(net::metrics::kResults), 1u);
  EXPECT_EQ(reg.counter(net::metrics::kAccepted), 1u);
}

TEST(NetServer, DuplicateSubmitReplaysWithoutRechargingAdmission) {
  ServerFixture fx;
  ASSERT_TRUE(fx.server.start()) << fx.server.error();

  net::SubmitPayload sub;
  sub.client_job_id = "dup-1";
  sub.tenant = "acme";
  sub.workload = "keyswitch";

  net::Client client(fast_client(fx.server.port()));
  const auto first = client.run(sub);
  ASSERT_TRUE(first.delivered) << first.error;
  ASSERT_EQ(static_cast<svc::JobState>(first.state), svc::JobState::Completed);

  // Resubmission of the same (tenant, client_job_id): the cached terminal
  // replays — bit-identical result, no second run, no second charge.
  const auto again = client.run(sub);
  ASSERT_TRUE(again.delivered) << again.error;
  EXPECT_TRUE(again.replayed);
  EXPECT_EQ(again.trace_id, first.trace_id);
  ASSERT_TRUE(again.has_result);
  EXPECT_EQ(again.result.registry.counters(), first.result.registry.counters());

  // Admission accounting moved exactly once. Tenant names outside the policy
  // table coalesce under the reserved "_other" label.
  const auto reg = fx.runner.snapshot();
  EXPECT_EQ(reg.counter(svc::metrics::kSubmitted), 1u);
  EXPECT_EQ(reg.counter(svc::metrics::kAdmitted), 1u);
  EXPECT_EQ(reg.counter(svc::metrics::kCompleted), 1u);
  EXPECT_EQ(
      reg.counter(svc::metrics::kTenantSubmitted, {{"tenant", "_other"}}), 1u);
  EXPECT_EQ(
      reg.counter(svc::metrics::kTenantAdmitted, {{"tenant", "_other"}}), 1u);
  EXPECT_EQ(reg.counter(svc::metrics::kTenantTerminal,
                        {{"state", "completed"}, {"tenant", "_other"}}),
            1u);

  const auto net_reg = fx.server.snapshot();
  EXPECT_EQ(net_reg.counter(net::metrics::kSubmitted), 1u);
  EXPECT_EQ(net_reg.counter(net::metrics::kReplayed), 1u);
  EXPECT_EQ(net_reg.counter(net::metrics::kResults), 2u);
}

TEST(NetServer, ReattachJoinsTheLiveJobAndItsTrace) {
  // The torn-response half of exactly-once: connection dies after the server
  // admits the job; the resubmission must re-attach (attached=true), share
  // the original trace id, and deliver a RESULT that was run exactly once.
  svc::RunnerOptions ropts = ServerFixture::make_runner_opts();
  ropts.start_paused = true;  // hold the job live across the reconnect
  ServerFixture fx(ropts);
  ASSERT_TRUE(fx.server.start()) << fx.server.error();

  net::SubmitPayload sub;
  sub.client_job_id = "reattach-1";
  sub.workload = "keyswitch";

  std::uint64_t first_trace = 0;
  {
    RawConn conn(fx.server.port());
    ASSERT_TRUE(conn.fd.valid());
    ASSERT_TRUE(conn.handshake());
    ASSERT_TRUE(conn.send(net::FrameType::Submit, net::encode(sub)));
    net::Frame f;
    ASSERT_TRUE(conn.recv_frame(f));
    ASSERT_EQ(f.type, net::FrameType::Status);
    const auto st = net::decode_status(f.payload);
    EXPECT_FALSE(st.attached);
    first_trace = st.trace_id;
    EXPECT_NE(first_trace, 0u);
  }  // connection torn here, job still queued

  RawConn conn2(fx.server.port());
  ASSERT_TRUE(conn2.fd.valid());
  ASSERT_TRUE(conn2.handshake());
  ASSERT_TRUE(conn2.send(net::FrameType::Submit, net::encode(sub)));
  net::Frame f;
  ASSERT_TRUE(conn2.recv_frame(f));
  ASSERT_EQ(f.type, net::FrameType::Status);
  const auto st2 = net::decode_status(f.payload);
  EXPECT_TRUE(st2.attached);
  EXPECT_EQ(st2.trace_id, first_trace);

  fx.runner.set_paused(false);
  net::Frame result;
  for (;;) {
    ASSERT_TRUE(conn2.recv_frame(result));
    if (result.type == net::FrameType::Result) break;
    ASSERT_EQ(result.type, net::FrameType::Status);
  }
  const auto rp = net::decode_result(result.payload);
  EXPECT_EQ(static_cast<svc::JobState>(rp.state), svc::JobState::Completed);
  EXPECT_EQ(rp.trace_id, first_trace);
  EXPECT_FALSE(rp.replayed);  // live re-attach, not a cache replay

  // One run, one admission charge — despite two wire submissions.
  const auto reg = fx.runner.snapshot();
  EXPECT_EQ(reg.counter(svc::metrics::kSubmitted), 1u);
  const auto net_reg = fx.server.snapshot();
  EXPECT_EQ(net_reg.counter(net::metrics::kSubmitted), 1u);
  EXPECT_EQ(net_reg.counter(net::metrics::kAttached), 1u);
}

TEST(NetServer, VersionMismatchAnsweredTypedThenClosed) {
  ServerFixture fx;
  ASSERT_TRUE(fx.server.start()) << fx.server.error();

  RawConn conn(fx.server.port());
  ASSERT_TRUE(conn.fd.valid());
  net::HelloPayload hello;
  hello.client = "time-traveler";
  ASSERT_TRUE(conn.send(net::FrameType::Hello, net::encode(hello),
                        static_cast<std::uint8_t>(net::kProtocolVersion + 7)));
  net::Frame f;
  ASSERT_TRUE(conn.recv_frame(f));
  ASSERT_EQ(f.type, net::FrameType::Error);
  const auto err = net::decode_error(f.payload);
  EXPECT_EQ(static_cast<net::ErrorCode>(err.code),
            net::ErrorCode::VersionMismatch);
}

TEST(NetServer, OversizeFrameRefusedAsFrameTooLarge) {
  net::ServerOptions sopts = ServerFixture::make_server_opts();
  sopts.max_payload = 512;  // hello payloads fit, the attack below does not
  ServerFixture fx(ServerFixture::make_runner_opts(), sopts);
  ASSERT_TRUE(fx.server.start()) << fx.server.error();

  // Before the handshake the oversize claim is the peer's own doing and gets
  // the specific non-retryable 431 analogue.
  RawConn conn(fx.server.port());
  ASSERT_TRUE(conn.fd.valid());
  const std::vector<std::uint8_t> huge(4096, 0x5a);
  ASSERT_TRUE(conn.send(net::FrameType::Hello, huge));
  net::Frame f;
  ASSERT_TRUE(conn.recv_frame(f));
  ASSERT_EQ(f.type, net::FrameType::Error);
  EXPECT_EQ(static_cast<net::ErrorCode>(net::decode_error(f.payload).code),
            net::ErrorCode::FrameTooLarge);
}

TEST(NetServer, PostHandshakeParseFailuresAreRetryableBadFrame) {
  // After a successful Hello the peer has proven it speaks this version
  // within the cap, so a bad version byte or hostile length prefix can only
  // be corruption in flight — it must map to the retryable BadFrame, never
  // to a fatal VersionMismatch/FrameTooLarge that would strand a client one
  // resubmission away from its result (found by the chaos soak).
  net::ServerOptions sopts = ServerFixture::make_server_opts();
  sopts.max_payload = 512;
  for (int attack = 0; attack < 2; ++attack) {
    ServerFixture fx(ServerFixture::make_runner_opts(), sopts);
    ASSERT_TRUE(fx.server.start()) << fx.server.error();
    RawConn conn(fx.server.port());
    ASSERT_TRUE(conn.fd.valid());
    ASSERT_TRUE(conn.handshake());
    if (attack == 0) {
      net::SubmitPayload sub;
      sub.client_job_id = "corrupted";
      sub.workload = "keyswitch";
      auto frame = net::encode_frame(net::FrameType::Submit, net::encode(sub));
      frame[4] ^= 0x40;  // version byte flipped in flight
      ASSERT_TRUE(net::send_all(conn.fd.get(), frame.data(), frame.size()));
    } else {
      const std::vector<std::uint8_t> huge(4096, 0x5a);  // length over the cap
      ASSERT_TRUE(conn.send(net::FrameType::Submit, huge));
    }
    net::Frame f;
    ASSERT_TRUE(conn.recv_frame(f));
    ASSERT_EQ(f.type, net::FrameType::Error);
    const auto err = net::decode_error(f.payload);
    EXPECT_EQ(static_cast<net::ErrorCode>(err.code), net::ErrorCode::BadFrame)
        << "attack " << attack;
    EXPECT_TRUE(net::is_retryable(static_cast<net::ErrorCode>(err.code)));
  }
}

TEST(NetServer, SubmitBeforeHelloIsAProtocolViolation) {
  ServerFixture fx;
  ASSERT_TRUE(fx.server.start()) << fx.server.error();

  RawConn conn(fx.server.port());
  ASSERT_TRUE(conn.fd.valid());
  net::SubmitPayload sub;
  sub.client_job_id = "rude";
  sub.workload = "keyswitch";
  ASSERT_TRUE(conn.send(net::FrameType::Submit, net::encode(sub)));
  net::Frame f;
  ASSERT_TRUE(conn.recv_frame(f));
  ASSERT_EQ(f.type, net::FrameType::Error);
  EXPECT_EQ(static_cast<net::ErrorCode>(net::decode_error(f.payload).code),
            net::ErrorCode::ProtocolViolation);
}

TEST(NetServer, UnknownWorkloadSurfacesWithoutRetry) {
  ServerFixture fx;
  ASSERT_TRUE(fx.server.start()) << fx.server.error();

  net::Client client(fast_client(fx.server.port()));
  net::SubmitPayload sub;
  sub.client_job_id = "missing-1";
  sub.workload = "not-in-catalog";
  const auto out = client.run(sub);
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(static_cast<net::ErrorCode>(out.last_error_code),
            net::ErrorCode::UnknownWorkload);
  EXPECT_EQ(out.connections, 1u);  // non-retryable: no second attempt
  EXPECT_EQ(fx.runner.snapshot().counter(svc::metrics::kSubmitted), 0u);
}

TEST(NetServer, DrainNotifiesAndRefusesNewSubmissions) {
  // A paused in-flight job keeps the connection open across the drain window
  // (a drained connection with nothing owed closes right after its notice).
  svc::RunnerOptions ropts = ServerFixture::make_runner_opts();
  ropts.start_paused = true;
  ServerFixture fx(ropts);
  ASSERT_TRUE(fx.server.start()) << fx.server.error();

  RawConn conn(fx.server.port());
  ASSERT_TRUE(conn.fd.valid());
  ASSERT_TRUE(conn.handshake());
  net::SubmitPayload held;
  held.client_job_id = "held-1";
  held.workload = "keyswitch";
  ASSERT_TRUE(conn.send(net::FrameType::Submit, net::encode(held)));
  net::Frame f;
  ASSERT_TRUE(conn.recv_frame(f));
  ASSERT_EQ(f.type, net::FrameType::Status);

  fx.server.drain("maintenance window");
  EXPECT_TRUE(fx.server.draining());

  // The live connection hears about the drain...
  ASSERT_TRUE(conn.recv_frame(f));
  ASSERT_EQ(f.type, net::FrameType::Drain);
  EXPECT_EQ(net::decode_drain(f.payload).message, "maintenance window");

  // ...and a new submission on it is refused with the retryable Draining
  // code, while the held job stays admitted.
  net::SubmitPayload sub;
  sub.client_job_id = "late-1";
  sub.workload = "keyswitch";
  ASSERT_TRUE(conn.send(net::FrameType::Submit, net::encode(sub)));
  ASSERT_TRUE(conn.recv_frame(f));
  ASSERT_EQ(f.type, net::FrameType::Error);
  const auto err = net::decode_error(f.payload);
  EXPECT_EQ(static_cast<net::ErrorCode>(err.code), net::ErrorCode::Draining);
  EXPECT_TRUE(net::is_retryable(net::ErrorCode::Draining));
  EXPECT_EQ(fx.runner.snapshot().counter(svc::metrics::kSubmitted), 1u);

  // New connections are no longer accepted.
  RawConn probe(fx.server.port());
  if (probe.fd.valid()) {
    EXPECT_FALSE(probe.handshake());
  }

  fx.runner.set_paused(false);  // let the held job finish before teardown
}

TEST(NetServer, DrainLetsInFlightJobsFinish) {
  svc::RunnerOptions ropts = ServerFixture::make_runner_opts();
  ropts.start_paused = true;
  ServerFixture fx(ropts);
  ASSERT_TRUE(fx.server.start()) << fx.server.error();

  RawConn conn(fx.server.port());
  ASSERT_TRUE(conn.fd.valid());
  ASSERT_TRUE(conn.handshake());
  net::SubmitPayload sub;
  sub.client_job_id = "inflight-1";
  sub.workload = "keyswitch";
  ASSERT_TRUE(conn.send(net::FrameType::Submit, net::encode(sub)));
  net::Frame f;
  ASSERT_TRUE(conn.recv_frame(f));
  ASSERT_EQ(f.type, net::FrameType::Status);  // admitted, queued

  fx.server.drain();
  fx.runner.set_paused(false);

  // The in-flight job still delivers its terminal Result through the drain.
  bool got_result = false;
  for (int i = 0; i < 100 && !got_result; ++i) {
    if (!conn.recv_frame(f)) break;
    if (f.type == net::FrameType::Result) {
      got_result = true;
      EXPECT_EQ(static_cast<svc::JobState>(net::decode_result(f.payload).state),
                svc::JobState::Completed);
    }
  }
  EXPECT_TRUE(got_result);
}

// ------------------------------------------------------------ chaos plans --

TEST(ChaosProxy, PlansAreAPureFunctionOfSeedAndIndex) {
  net::ChaosOptions opts;
  opts.seed = 0x5eed;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const auto a = net::plan_for(opts, i);
    const auto b = net::plan_for(opts, i);
    EXPECT_EQ(a.kind, b.kind) << i;
    EXPECT_EQ(a.downstream, b.downstream) << i;
    EXPECT_EQ(a.offset, b.offset) << i;
  }
  // A different seed reshuffles the plans.
  net::ChaosOptions other = opts;
  other.seed = 0xd1ff;
  int diff = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const auto a = net::plan_for(opts, i);
    const auto b = net::plan_for(other, i);
    if (a.kind != b.kind || a.offset != b.offset) ++diff;
  }
  EXPECT_GT(diff, 0);
}

TEST(ChaosProxy, PlanDistributionRespectsProbabilitiesAndOffsets) {
  net::ChaosOptions opts;
  opts.seed = 9;
  opts.kill_prob = 0.3;
  opts.corrupt_prob = 0.3;
  opts.delay_prob = 0.3;
  opts.max_offset = 100;
  int kills = 0, corrupts = 0, delays = 0, none = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const auto p = net::plan_for(opts, i);
    switch (p.kind) {
      case net::FaultPlan::Kind::Kill: ++kills; break;
      case net::FaultPlan::Kind::Corrupt: ++corrupts; break;
      case net::FaultPlan::Kind::Delay: ++delays; break;
      case net::FaultPlan::Kind::None: ++none; break;
    }
    if (p.kind != net::FaultPlan::Kind::None) {
      EXPECT_GE(p.offset, 1u);
      EXPECT_LE(p.offset, 100u);
    }
  }
  // ~300 of each fault kind, ~100 clean; generous tolerances.
  EXPECT_GT(kills, 200);
  EXPECT_GT(corrupts, 200);
  EXPECT_GT(delays, 200);
  EXPECT_GT(none, 30);
}

TEST(ChaosProxy, ClientSurvivesFaultsAndResultsStayBitIdentical) {
  // A miniature of bench/net_soak: jobs submitted through the fault proxy
  // must all reach Completed exactly once, with the same deterministic
  // registry as a fault-free run.
  ServerFixture fx;
  ASSERT_TRUE(fx.server.start()) << fx.server.error();

  // Fault-free reference.
  net::Client direct(fast_client(fx.server.port()));
  net::SubmitPayload ref;
  ref.client_job_id = "ref-0";
  ref.workload = "keyswitch";
  const auto ref_out = direct.run(ref);
  ASSERT_TRUE(ref_out.delivered) << ref_out.error;
  ASSERT_TRUE(ref_out.has_result);

  net::ChaosOptions copts;
  copts.target_port = fx.server.port();
  copts.seed = 0xc4a05;
  copts.kill_prob = 0.35;
  copts.corrupt_prob = 0.35;
  copts.delay_prob = 0.1;
  copts.delay = 5ms;
  copts.max_faults = 12;  // guarantee forward progress in the retry budget
  net::ChaosProxy proxy(copts);
  ASSERT_TRUE(proxy.start()) << proxy.error();

  net::Client chaotic(fast_client(proxy.port(), 24));
  std::size_t completed = 0;
  for (int i = 0; i < 4; ++i) {
    net::SubmitPayload sub;
    sub.client_job_id = "chaos-" + std::to_string(i);
    sub.workload = "keyswitch";
    const auto out = chaotic.run(sub);
    ASSERT_TRUE(out.delivered) << sub.client_job_id << ": " << out.error;
    ASSERT_EQ(static_cast<svc::JobState>(out.state), svc::JobState::Completed);
    ASSERT_TRUE(out.has_result);
    // Same workload, same config: the simulated outcome is bit-identical to
    // the fault-free reference no matter what the wire did.
    EXPECT_EQ(out.result.registry.counters(),
              ref_out.result.registry.counters());
    ++completed;
  }
  EXPECT_EQ(completed, 4u);

  // Exactly-once: every wire retry resolved to the one run per key.
  const auto reg = fx.runner.snapshot();
  EXPECT_EQ(reg.counter(svc::metrics::kSubmitted), 5u);  // ref + 4 chaos keys
  EXPECT_EQ(reg.counter(svc::metrics::kCompleted), 5u);
  proxy.stop();
}

}  // namespace
}  // namespace alchemist
