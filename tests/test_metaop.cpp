#include <gtest/gtest.h>

#include "metaop/lowering.h"
#include "metaop/mult_count.h"

namespace alchemist::metaop {
namespace {

TEST(MetaOpBatch, CycleAndMultMath) {
  // One (M_8 A_8)_n R_8 occupies a core for n + 2 cycles (§5.2, Fig. 5d).
  MetaOpBatch b{3, 10, AccessPattern::Slots, OpClass::Ntt};
  EXPECT_EQ(b.core_cycles(), 10u * 5u);
  EXPECT_EQ(b.mult_count(), 10u * 8u * 5u);
  EXPECT_EQ(b.macs(), 10u * 8u * 3u);
}

TEST(NttStagePlan, AllPaperSizes) {
  // The paper supports N in [2^10, 2^16]; every size must decompose into
  // radix-8 and radix-4 passes exactly.
  for (std::size_t log_n = 10; log_n <= 16; ++log_n) {
    const std::size_t n = std::size_t{1} << log_n;
    const NttStagePlan plan = plan_ntt_stages(n);
    EXPECT_EQ(3 * plan.radix8_stages + 2 * plan.radix4_stages, log_n) << n;
  }
  // N = 16384 = 2^14: 4 radix-8 + 1 radix-4.
  const NttStagePlan p14 = plan_ntt_stages(16384);
  EXPECT_EQ(p14.radix8_stages, 4u);
  EXPECT_EQ(p14.radix4_stages, 1u);
  EXPECT_THROW(plan_ntt_stages(100), std::invalid_argument);
  EXPECT_THROW(plan_ntt_stages(8), std::invalid_argument);
}

TEST(Lowering, NttStreamShape) {
  const MetaOpStream s = lower_ntt(4096, 2);  // log2 = 12: 4 radix-8 stages
  ASSERT_EQ(s.batches.size(), 1u);
  EXPECT_EQ(s.batches[0].n, 3u);
  EXPECT_EQ(s.batches[0].count, 4096u / 8 * 2 * 4);
  EXPECT_EQ(s.batches[0].pattern, AccessPattern::Slots);
  EXPECT_EQ(s.batches[0].op_class, OpClass::Ntt);
}

TEST(Lowering, BconvMatchesTable3) {
  // Meta-OP lowering must reproduce Table 3's (KL + 3L + 2K) * N exactly.
  for (std::size_t l = 1; l <= 12; ++l) {
    for (std::size_t k : {std::size_t{1}, std::size_t{4}, std::size_t{11}}) {
      const std::size_t n = 4096;
      const MetaOpStream s = lower_bconv(n, l, k);
      EXPECT_EQ(s.mult_count(), n * (k * l + 3 * l + 2 * k)) << l << " " << k;
      const MultCounts c = bconv_mults(n, l, k);
      EXPECT_EQ(c.meta, s.mult_count());
      EXPECT_EQ(c.origin, n * (3 * k * l + 3 * l));
    }
  }
}

TEST(Lowering, DecompMatchesTable2) {
  for (std::size_t dnum = 1; dnum <= 8; ++dnum) {
    const std::size_t n = 8192;
    const MetaOpStream s = lower_decomp_poly_mult(n, dnum, 1);
    EXPECT_EQ(s.mult_count(), n * (dnum + 2));
    const MultCounts c = decomp_mults(n, dnum, 1);
    EXPECT_EQ(c.meta, s.mult_count());
    EXPECT_EQ(c.origin, n * 3 * dnum);
    // The paper: up to 3x multiplication reduction as dnum grows.
    if (dnum >= 6) {
      EXPECT_GT(static_cast<double>(c.origin) / c.meta, 2.2);
    }
  }
}

TEST(MultCount, NttOverheadAboutTenPercent) {
  // §4.2: radix-8 Meta-OP NTT costs 40 vs 36 word-mults per butterfly (+11%).
  for (std::size_t n : {std::size_t{4096}, std::size_t{32768}}) {  // radix-8 only
    const MultCounts c = ntt_mults(n, 1);
    EXPECT_NEAR(static_cast<double>(c.meta) / c.origin, 40.0 / 36.0, 1e-9) << n;
  }
  // Sizes needing radix-4 passes pay slightly more but stay below +20%.
  for (std::size_t n : {std::size_t{1024}, std::size_t{65536}}) {
    const MultCounts c = ntt_mults(n, 1);
    EXPECT_LE(c.relative_change(), 0.201) << n;
    EXPECT_GT(c.relative_change(), 0.08) << n;
  }
}

TEST(MultCount, OriginNttIsOnePointFiveNLogN) {
  // Eager counting: N/2 * log2(N) radix-2 butterflies, 3 word-mults each.
  const std::size_t n = 4096;
  EXPECT_EQ(ntt_mults(n, 1).origin, n / 2 * 12 * 3);
}

TEST(MultCount, AddsAndAutomorphismsAreFree) {
  HighOp add;
  add.kind = OpKind::PointwiseAdd;
  add.n = 1024;
  add.channels = 10;
  EXPECT_EQ(count(add).origin, 0u);
  EXPECT_EQ(count(add).meta, 0u);
  add.kind = OpKind::Automorphism;
  EXPECT_EQ(count(add).meta, 0u);
}

TEST(MultCount, GraphAggregation) {
  OpGraph g;
  HighOp ntt;
  ntt.kind = OpKind::Ntt;
  ntt.n = 4096;
  ntt.channels = 2;
  g.add(ntt);
  HighOp bc;
  bc.kind = OpKind::Bconv;
  bc.n = 4096;
  bc.param_a = 4;
  bc.param_b = 2;
  g.add(bc);
  const MultCounts total = count(g);
  EXPECT_EQ(total.origin, ntt_mults(4096, 2).origin + bconv_mults(4096, 4, 2).origin);
  EXPECT_EQ(total.meta, ntt_mults(4096, 2).meta + bconv_mults(4096, 4, 2).meta);

  const auto by_class_meta = class_mults(g, /*meta=*/true);
  EXPECT_EQ(by_class_meta[static_cast<std::size_t>(OpClass::Ntt)],
            ntt_mults(4096, 2).meta);
  EXPECT_EQ(by_class_meta[static_cast<std::size_t>(OpClass::Bconv)],
            bconv_mults(4096, 4, 2).meta);
  EXPECT_EQ(by_class_meta[static_cast<std::size_t>(OpClass::DecompPolyMult)], 0u);
}

TEST(Lowering, StreamAppendAndTotals) {
  MetaOpStream s = lower_ntt(1024, 1);
  const std::uint64_t c1 = s.core_cycles();
  s.append(lower_elementwise(1024, 4));
  EXPECT_EQ(s.core_cycles(), c1 + lower_elementwise(1024, 4).core_cycles());
  EXPECT_GT(s.meta_op_count(), 0u);
}

TEST(Lowering, RejectsBadArguments) {
  EXPECT_THROW(lower_bconv(1024, 0, 1), std::invalid_argument);
  EXPECT_THROW(lower_bconv(1024, 1, 0), std::invalid_argument);
  EXPECT_THROW(lower_decomp_poly_mult(1024, 0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace alchemist::metaop
