#include <gtest/gtest.h>

#include "common/rng.h"
#include "tfhe/bootstrap.h"
#include "tfhe/lwe.h"
#include "tfhe/trlwe.h"

namespace alchemist::tfhe {
namespace {

TEST(Lwe, EncryptDecryptAllMessages) {
  Rng rng(1);
  const LweKey key = lwe_keygen(64, rng);
  const u64 space = 8;
  for (u64 m = 0; m < space; ++m) {
    const LweSample ct = lwe_encrypt(torus_from_message(m, space), key, 1e-10, rng);
    EXPECT_EQ(lwe_decrypt(ct, key, space), m);
  }
}

TEST(Lwe, HomomorphicAddSub) {
  Rng rng(2);
  const LweKey key = lwe_keygen(64, rng);
  const u64 space = 16;
  const LweSample c3 = lwe_encrypt(torus_from_message(3, space), key, 1e-12, rng);
  const LweSample c5 = lwe_encrypt(torus_from_message(5, space), key, 1e-12, rng);
  EXPECT_EQ(lwe_decrypt(c3 + c5, key, space), 8u);
  EXPECT_EQ(lwe_decrypt(c5 - c3, key, space), 2u);
  LweSample neg = c3;
  neg.negate();
  EXPECT_EQ(lwe_decrypt(neg, key, space), space - 3);
  LweSample doubled = c3;
  doubled.mul_int(2);
  EXPECT_EQ(lwe_decrypt(doubled, key, space), 6u);
}

TEST(Lwe, TrivialSampleDecryptsUnderAnyKey) {
  Rng rng(3);
  const LweKey key = lwe_keygen(32, rng);
  const LweSample triv = lwe_trivial(32, torus_from_message(2, 4));
  EXPECT_EQ(lwe_decrypt(triv, key, 4), 2u);
}

TEST(Lwe, DimensionChecks) {
  Rng rng(4);
  const LweKey key = lwe_keygen(32, rng);
  LweSample a = lwe_trivial(32, 0), b = lwe_trivial(16, 0);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(lwe_phase(b, key), std::invalid_argument);
}

TEST(LweKeyswitch, PreservesMessage) {
  Rng rng(5);
  const LweKey from = lwe_keygen(128, rng);
  const LweKey to = lwe_keygen(64, rng);
  const KeySwitchKey ksk = make_keyswitch_key(from, to, 4, 8, 1e-12, rng);
  const u64 space = 8;
  for (u64 m = 0; m < space; ++m) {
    const LweSample ct = lwe_encrypt(torus_from_message(m, space), from, 1e-12, rng);
    const LweSample switched = keyswitch(ct, ksk);
    EXPECT_EQ(switched.dimension(), 64u);
    EXPECT_EQ(lwe_decrypt(switched, to, space), m);
  }
}

TEST(Trlwe, EncryptPhaseRoundTrip) {
  Rng rng(6);
  const TfheParams params = TfheParams::toy();
  const TrlweKey key = trlwe_keygen(params, rng);
  TorusPoly msg(params.degree);
  for (std::size_t i = 0; i < params.degree; ++i) {
    msg[i] = torus_from_message(rng.uniform(4), 4);
  }
  const TrlweSample ct = trlwe_encrypt(params, key, msg, rng);
  const TorusPoly phase = trlwe_phase(ct, key);
  for (std::size_t i = 0; i < params.degree; ++i) {
    EXPECT_EQ(torus_to_message(phase[i], 4), torus_to_message(msg[i], 4)) << i;
  }
}

TEST(Trlwe, TrivialAndLinearity) {
  Rng rng(7);
  const TfheParams params = TfheParams::toy();
  const TrlweKey key = trlwe_keygen(params, rng);
  TorusPoly m1(params.degree), m2(params.degree);
  m1[0] = torus_from_message(1, 4);
  m2[3] = torus_from_message(3, 8);
  const TrlweSample t1 = trlwe_trivial(params, m1);
  TrlweSample sum = trlwe_encrypt(params, key, m2, rng);
  sum += t1;
  const TorusPoly phase = trlwe_phase(sum, key);
  EXPECT_EQ(torus_to_message(phase[0], 4), 1u);
  EXPECT_EQ(torus_to_message(phase[3], 8), 3u);
}

TEST(Tgsw, ExternalProductByBit) {
  Rng rng(8);
  const TfheParams params = TfheParams::toy();
  const TrlweKey key = trlwe_keygen(params, rng);
  TorusPoly msg(params.degree);
  for (std::size_t i = 0; i < params.degree; ++i) {
    msg[i] = torus_from_message(rng.uniform(8), 8);
  }
  const TrlweSample ct = trlwe_encrypt(params, key, msg, rng);

  // TGSW(0): product decrypts to 0. TGSW(1): product preserves the message.
  const TgswNtt g0 = tgsw_encrypt(params, key, 0, rng);
  const TgswNtt g1 = tgsw_encrypt(params, key, 1, rng);
  const TorusPoly p0 = trlwe_phase(external_product(g0, ct), key);
  const TorusPoly p1 = trlwe_phase(external_product(g1, ct), key);
  for (std::size_t i = 0; i < params.degree; ++i) {
    EXPECT_EQ(torus_to_message(p0[i], 8), 0u) << i;
    EXPECT_EQ(torus_to_message(p1[i], 8), torus_to_message(msg[i], 8)) << i;
  }
}

TEST(Tgsw, CmuxSelects) {
  Rng rng(9);
  const TfheParams params = TfheParams::toy();
  const TrlweKey key = trlwe_keygen(params, rng);
  TorusPoly m0(params.degree), m1(params.degree);
  m0[0] = torus_from_message(2, 8);
  m1[0] = torus_from_message(5, 8);
  const TrlweSample c0 = trlwe_encrypt(params, key, m0, rng);
  const TrlweSample c1 = trlwe_encrypt(params, key, m1, rng);
  const TgswNtt sel0 = tgsw_encrypt(params, key, 0, rng);
  const TgswNtt sel1 = tgsw_encrypt(params, key, 1, rng);
  EXPECT_EQ(torus_to_message(trlwe_phase(cmux(sel0, c0, c1), key)[0], 8), 2u);
  EXPECT_EQ(torus_to_message(trlwe_phase(cmux(sel1, c0, c1), key)[0], 8), 5u);
}

TEST(Trlwe, SampleExtractMatchesPhase) {
  Rng rng(10);
  const TfheParams params = TfheParams::toy();
  const TrlweKey key = trlwe_keygen(params, rng);
  TorusPoly msg(params.degree);
  for (std::size_t i = 0; i < params.degree; ++i) msg[i] = rng.next();
  const TrlweSample ct = trlwe_encrypt(params, key, msg, rng);
  const LweSample extracted = sample_extract(ct);
  const LweKey ext_key = extract_key(key);
  EXPECT_EQ(extracted.dimension(), params.k * params.degree);
  // Extracted phase == constant coefficient of the polynomial phase.
  const Torus poly_phase0 = trlwe_phase(ct, key)[0];
  const Torus lwe_phase0 = lwe_phase(extracted, ext_key);
  EXPECT_EQ(lwe_phase0, poly_phase0);
}

TEST(BlindRotate, TrivialInputRotatesTestVector) {
  Rng rng(11);
  const TfheParams params = TfheParams::toy();
  const TrlweKey key = trlwe_keygen(params, rng);
  // LWE key of all zeros: rotation amount is exactly -barb.
  LweKey zero_key;
  zero_key.s.assign(params.n_lwe, 0);
  std::vector<TgswNtt> bk;
  for (std::size_t i = 0; i < params.n_lwe; ++i) {
    bk.push_back(tgsw_encrypt(params, key, 0, rng));
  }
  TorusPoly tv(params.degree);
  for (std::size_t i = 0; i < params.degree; ++i) tv[i] = torus_from_message(i % 4, 8);
  const u64 barb = 5;
  const std::vector<u64> bara(params.n_lwe, 3);  // ignored: all s_i = 0
  const TrlweSample rotated = blind_rotate(trlwe_trivial(params, tv), bara, barb, bk);
  const TorusPoly phase = trlwe_phase(rotated, key);
  // Coefficient 0 of X^{-5} * tv is tv[5].
  EXPECT_EQ(torus_to_message(phase[0], 8), torus_to_message(tv[barb], 8));
}

TEST(Pbs, SignExtractionToyParams) {
  Rng rng(12);
  const TfheParams params = TfheParams::toy();
  const LweKey lwe_key = lwe_keygen(params.n_lwe, rng);
  const TrlweKey trlwe_key = trlwe_keygen(params, rng);
  const BootstrapContext ctx = make_bootstrap_context(params, lwe_key, trlwe_key, rng);

  const Torus eighth = u64{1} << 61;
  const TorusPoly tv = make_constant_test_poly(params.degree, eighth);
  // Positive phase -> +1/8; negative phase -> -1/8.
  for (double x : {0.1, 0.3, -0.1, -0.3, 0.05, -0.05}) {
    const LweSample in = lwe_encrypt(torus_from_double(x), lwe_key, 1e-12, rng);
    const LweSample out = programmable_bootstrap(in, tv, ctx);
    const double result = torus_to_double(lwe_phase(out, lwe_key));
    EXPECT_NEAR(result, x > 0 ? 0.125 : -0.125, 0.02) << "x=" << x;
  }
}

TEST(Pbs, LutEvaluationToyParams) {
  Rng rng(13);
  const TfheParams params = TfheParams::toy();
  const LweKey lwe_key = lwe_keygen(params.n_lwe, rng);
  const TrlweKey trlwe_key = trlwe_keygen(params, rng);
  const BootstrapContext ctx = make_bootstrap_context(params, lwe_key, trlwe_key, rng);

  // f(m) = 3*m mod 8 over the first half of a space of 16 messages.
  const u64 space = 16;
  const TorusPoly tv = make_lut_test_poly(params.degree, space, [](u64 m) {
    return torus_from_message((3 * m) % 8, 8);
  });
  for (u64 m = 1; m < space / 2; ++m) {
    const LweSample in = lwe_encrypt(torus_from_message(m, space), lwe_key, 1e-12, rng);
    const LweSample out = programmable_bootstrap(in, tv, ctx);
    EXPECT_EQ(lwe_decrypt(out, lwe_key, 8), (3 * m) % 8) << "m=" << m;
  }
}

class GateTruthTables : public ::testing::Test {
 protected:
  GateTruthTables() : rng_(14), params_(TfheParams::toy()) {
    lwe_key_ = lwe_keygen(params_.n_lwe, rng_);
    trlwe_key_ = trlwe_keygen(params_, rng_);
    ctx_ = make_bootstrap_context(params_, lwe_key_, trlwe_key_, rng_);
  }

  LweSample enc(bool b) { return encrypt_bit(b, lwe_key_, 1e-12, rng_); }
  bool dec(const LweSample& c) { return decrypt_bit(c, lwe_key_); }

  Rng rng_;
  TfheParams params_;
  LweKey lwe_key_;
  TrlweKey trlwe_key_;
  BootstrapContext ctx_;
};

TEST_F(GateTruthTables, AllBinaryGates) {
  for (bool a : {false, true}) {
    for (bool b : {false, true}) {
      EXPECT_EQ(dec(gate_nand(enc(a), enc(b), ctx_)), !(a && b)) << a << b;
      EXPECT_EQ(dec(gate_and(enc(a), enc(b), ctx_)), a && b) << a << b;
      EXPECT_EQ(dec(gate_or(enc(a), enc(b), ctx_)), a || b) << a << b;
      EXPECT_EQ(dec(gate_nor(enc(a), enc(b), ctx_)), !(a || b)) << a << b;
      EXPECT_EQ(dec(gate_xor(enc(a), enc(b), ctx_)), a != b) << a << b;
      EXPECT_EQ(dec(gate_xnor(enc(a), enc(b), ctx_)), a == b) << a << b;
    }
  }
}

TEST_F(GateTruthTables, NotAndMux) {
  for (bool a : {false, true}) {
    EXPECT_EQ(dec(gate_not(enc(a))), !a);
  }
  for (bool sel : {false, true}) {
    for (bool t : {false, true}) {
      for (bool f : {false, true}) {
        EXPECT_EQ(dec(gate_mux(enc(sel), enc(t), enc(f), ctx_)), sel ? t : f)
            << sel << t << f;
      }
    }
  }
}

TEST(Pbs, GateBootstrapRealParamsSingleNand) {
  // One NAND with the full 128-bit-security parameter set: exercises N=1024,
  // n=630 blind rotation end to end (the paper's TFHE-PBS workload).
  Rng rng(15);
  const TfheParams params = TfheParams::set_i();
  const LweKey lwe_key = lwe_keygen(params.n_lwe, rng);
  const TrlweKey trlwe_key = trlwe_keygen(params, rng);
  const BootstrapContext ctx = make_bootstrap_context(params, lwe_key, trlwe_key, rng);
  const LweSample a = encrypt_bit(true, lwe_key, params.lwe_sigma, rng);
  const LweSample b = encrypt_bit(true, lwe_key, params.lwe_sigma, rng);
  EXPECT_FALSE(decrypt_bit(gate_nand(a, b, ctx), lwe_key));
  const LweSample c = encrypt_bit(false, lwe_key, params.lwe_sigma, rng);
  EXPECT_TRUE(decrypt_bit(gate_nand(a, c, ctx), lwe_key));
}

}  // namespace
}  // namespace alchemist::tfhe
