#include "poly/ntt.h"

#include <gtest/gtest.h>

#include "common/primes.h"
#include "common/rng.h"

namespace alchemist {
namespace {

// Direct negacyclic DFT: X[k] = sum_i a[i] psi^(i(2k+1)) — O(N^2) reference.
std::vector<u64> direct_negacyclic_dft(const std::vector<u64>& a, u64 q, u64 psi) {
  const std::size_t n = a.size();
  std::vector<u64> out(n, 0);
  for (std::size_t k = 0; k < n; ++k) {
    u64 acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const u64 w = pow_mod(psi, (i * (2 * k + 1)) % (2 * n), q);
      acc = add_mod(acc, mul_mod(a[i], w, q), q);
    }
    out[k] = acc;
  }
  return out;
}

TEST(Ntt, BitReverse) {
  EXPECT_EQ(bit_reverse(0, 3), 0u);
  EXPECT_EQ(bit_reverse(1, 3), 4u);
  EXPECT_EQ(bit_reverse(3, 3), 6u);
  EXPECT_EQ(bit_reverse(5, 4), 10u);
  for (std::size_t x = 0; x < 64; ++x) EXPECT_EQ(bit_reverse(bit_reverse(x, 6), 6), x);
}

TEST(Ntt, ForwardMatchesDirectDftUpToBitReversal) {
  const std::size_t n = 16;
  const u64 q = max_ntt_prime(20, n);
  NttTable table(q, n);
  Rng rng(1);
  std::vector<u64> a = rng.uniform_vector(n, q);
  const auto expected = direct_negacyclic_dft(a, q, table.psi());
  std::vector<u64> actual = a;
  table.forward(actual);
  // forward() emits bit-reversed order.
  int log_n = 4;
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_EQ(actual[bit_reverse(k, log_n)], expected[k]) << k;
  }
}

class NttRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NttRoundTrip, InverseUndoesForward) {
  const std::size_t n = GetParam();
  const u64 q = max_ntt_prime(50, n);
  const NttTable& table = get_ntt_table(q, n);
  Rng rng(n);
  const std::vector<u64> original = rng.uniform_vector(n, q);
  std::vector<u64> a = original;
  table.forward(a);
  EXPECT_NE(a, original);  // astronomically unlikely to collide
  table.inverse(a);
  EXPECT_EQ(a, original);
}

INSTANTIATE_TEST_SUITE_P(Sizes, NttRoundTrip,
                         ::testing::Values(4, 8, 64, 256, 1024, 4096, 16384));

TEST(Ntt, ConvolutionTheorem) {
  // ifft(fft(a) . fft(b)) must equal the schoolbook negacyclic product.
  const std::size_t n = 64;
  const u64 q = max_ntt_prime(30, n);
  const NttTable& table = get_ntt_table(q, n);
  Rng rng(3);
  std::vector<u64> a = rng.uniform_vector(n, q);
  std::vector<u64> b = rng.uniform_vector(n, q);

  // Schoolbook negacyclic convolution.
  std::vector<u64> expected(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const u64 prod = mul_mod(a[i], b[j], q);
      if (i + j < n) {
        expected[i + j] = add_mod(expected[i + j], prod, q);
      } else {
        expected[i + j - n] = sub_mod(expected[i + j - n], prod, q);
      }
    }
  }

  table.forward(a);
  table.forward(b);
  for (std::size_t i = 0; i < n; ++i) a[i] = mul_mod(a[i], b[i], q);
  table.inverse(a);
  EXPECT_EQ(a, expected);
}

TEST(Ntt, LinearityOfTransform) {
  const std::size_t n = 128;
  const u64 q = max_ntt_prime(36, n);
  const NttTable& table = get_ntt_table(q, n);
  Rng rng(4);
  std::vector<u64> a = rng.uniform_vector(n, q);
  std::vector<u64> b = rng.uniform_vector(n, q);
  const u64 c = rng.uniform(q);

  std::vector<u64> lhs(n);  // NTT(a + c*b)
  for (std::size_t i = 0; i < n; ++i) lhs[i] = add_mod(a[i], mul_mod(c, b[i], q), q);
  table.forward(lhs);

  table.forward(a);
  table.forward(b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(lhs[i], add_mod(a[i], mul_mod(c, b[i], q), q));
  }
}

TEST(Ntt, NegacyclicShiftProperty) {
  // Multiplying by X rotates coefficients with a sign flip at wraparound:
  // NTT(X * a) == NTT(X) .* NTT(a).
  const std::size_t n = 32;
  const u64 q = max_ntt_prime(25, n);
  const NttTable& table = get_ntt_table(q, n);
  Rng rng(5);
  std::vector<u64> a = rng.uniform_vector(n, q);

  std::vector<u64> xa(n);
  xa[0] = neg_mod(a[n - 1], q);
  for (std::size_t i = 1; i < n; ++i) xa[i] = a[i - 1];

  std::vector<u64> x_poly(n, 0);
  x_poly[1] = 1;

  table.forward(a);
  table.forward(x_poly);
  table.forward(xa);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(xa[i], mul_mod(a[i], x_poly[i], q));
  }
}

TEST(Ntt, TableCacheReturnsSameInstance) {
  const u64 q = max_ntt_prime(30, 256);
  const NttTable& t1 = get_ntt_table(q, 256);
  const NttTable& t2 = get_ntt_table(q, 256);
  EXPECT_EQ(&t1, &t2);
  const NttTable& t3 = get_ntt_table(q, 128);
  EXPECT_NE(&t1, &t3);
}

TEST(Ntt, SizeMismatchThrows) {
  const u64 q = max_ntt_prime(30, 64);
  NttTable table(q, 64);
  std::vector<u64> wrong(32, 0);
  EXPECT_THROW(table.forward(wrong), std::invalid_argument);
  EXPECT_THROW(table.inverse(wrong), std::invalid_argument);
}

TEST(Ntt, RejectsNonNttPrime) {
  // 17 is prime but 17 != 1 mod 2*64.
  EXPECT_THROW(NttTable(17, 64), std::invalid_argument);
}

}  // namespace
}  // namespace alchemist
