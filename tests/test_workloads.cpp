#include <gtest/gtest.h>

#include "metaop/lowering.h"
#include "metaop/mult_count.h"
#include "workloads/ckks_workloads.h"
#include "workloads/tfhe_workloads.h"

namespace alchemist::workloads {
namespace {

using metaop::OpClass;
using metaop::OpGraph;
using metaop::OpKind;

void expect_valid_dag(const OpGraph& g) {
  for (std::size_t i = 0; i < g.ops.size(); ++i) {
    for (std::size_t dep : g.ops[i].deps) {
      EXPECT_LT(dep, i) << "forward dep in " << g.name;
    }
  }
}

std::size_t count_kind(const OpGraph& g, OpKind kind) {
  std::size_t c = 0;
  for (const auto& op : g.ops) c += op.kind == kind ? 1 : 0;
  return c;
}

TEST(CkksWl, ParameterDerivation) {
  const CkksWl w = CkksWl::paper(44);
  EXPECT_EQ(w.n, 65536u);
  EXPECT_EQ(w.dnum, 4u);
  EXPECT_EQ(w.alpha(), 11u);
  EXPECT_EQ(w.num_special(), 11u);
}

TEST(CkksGraphs, AllAreValidDags) {
  const CkksWl w = CkksWl::paper(24);
  for (const OpGraph& g :
       {build_hadd(w), build_pmult(w), build_rescale(w), build_keyswitch(w),
        build_cmult(w), build_rotation(w), build_hoisted_rotations(w, 4),
        build_helr_iteration(w), build_lola_mnist(false), build_lola_mnist(true)}) {
    expect_valid_dag(g);
    EXPECT_FALSE(g.ops.empty()) << g.name;
  }
}

TEST(CkksGraphs, BootstrappingIsValidAndLarge) {
  const CkksWl w = CkksWl::paper(44);
  const OpGraph plain = build_bootstrapping(w, false);
  const OpGraph hoisted = build_bootstrapping(w, true);
  expect_valid_dag(plain);
  expect_valid_dag(hoisted);
  EXPECT_GT(plain.ops.size(), 1000u);
  EXPECT_GT(hoisted.ops.size(), 100u);
}

TEST(CkksGraphs, KeyswitchStructure) {
  const CkksWl w = CkksWl::paper(44);
  const OpGraph g = build_keyswitch(w);
  // dnum = 4 digit conversions plus the P->Q Moddown conversions (2).
  EXPECT_EQ(count_kind(g, OpKind::Bconv), 4u + 2u);
  EXPECT_EQ(count_kind(g, OpKind::DecompPolyMult), 1u);
  // evk streaming traffic is attached to the DecompPolyMult.
  for (const auto& op : g.ops) {
    if (op.kind == OpKind::DecompPolyMult) {
      EXPECT_GT(op.hbm_bytes, 0u);
      EXPECT_EQ(op.param_a, 4u);  // digits
    }
  }
}

TEST(CkksGraphs, HbmStreamFractionScalesKeyTraffic) {
  CkksWl full = CkksWl::paper(44);
  CkksWl cached = full;
  cached.hbm_stream_fraction = 0.25;
  auto bytes = [](const OpGraph& g) {
    std::uint64_t total = 0;
    for (const auto& op : g.ops) total += op.hbm_bytes;
    return total;
  };
  EXPECT_NEAR(static_cast<double>(bytes(build_keyswitch(cached))),
              0.25 * static_cast<double>(bytes(build_keyswitch(full))),
              static_cast<double>(bytes(build_keyswitch(full))) * 0.01);
}

TEST(CkksGraphs, CmultCostsMoreThanKeyswitchAlone) {
  const CkksWl w = CkksWl::paper(24);
  EXPECT_GT(metaop::count(build_cmult(w)).meta,
            metaop::count(build_keyswitch(w)).meta);
}

TEST(CkksGraphs, HoistingSavesBconvWork) {
  // Fig. 1: BSP-L=44+ (hoisting) has a smaller Bconv share than BSP-L=44.
  const CkksWl w = CkksWl::paper(44);
  const std::size_t rotations = 8;
  OpGraph separate;
  separate.name = "separate";
  for (std::size_t r = 0; r < rotations; ++r) {
    const OpGraph one = build_rotation(w);
    const std::size_t base = separate.ops.size();
    for (auto op : one.ops) {
      for (auto& d : op.deps) d += base;
      separate.add(std::move(op));
    }
  }
  const OpGraph hoisted = build_hoisted_rotations(w, rotations);

  const auto sep_mults = metaop::class_mults(separate, true);
  const auto hoist_mults = metaop::class_mults(hoisted, true);
  const std::size_t bconv = static_cast<std::size_t>(OpClass::Bconv);
  EXPECT_LT(hoist_mults[bconv], sep_mults[bconv] / 2);
}

TEST(CkksGraphs, MultRatiosMatchFig1Shape) {
  // Cmult at higher level has proportionally more Bconv work (Fig. 1 trend).
  auto bconv_share = [](std::size_t level) {
    const OpGraph g = build_cmult(CkksWl::paper(level));
    const auto mults = metaop::class_mults(g, true);
    const double total = static_cast<double>(mults[0] + mults[1] + mults[2] + mults[3]);
    return static_cast<double>(mults[static_cast<std::size_t>(OpClass::Bconv)]) / total;
  };
  EXPECT_GT(bconv_share(24), bconv_share(8));
}

TEST(CkksGraphs, MetaOpReducesCmultMults) {
  // Fig. 7(a): Cmult L=24 saves ~23% of multiplications with the Meta-OP.
  const auto c = metaop::count(build_cmult(CkksWl::paper(24)));
  EXPECT_LT(c.relative_change(), -0.05);
  EXPECT_GT(c.relative_change(), -0.45);
  // Savings grow with level (more Bconv/DecompPolyMult share).
  EXPECT_LT(metaop::count(build_cmult(CkksWl::paper(44))).relative_change(),
            c.relative_change());
}

TEST(CkksGraphs, EncryptedWeightsCostMore) {
  EXPECT_GT(static_cast<double>(metaop::count(build_lola_mnist(true)).meta),
            1.4 * static_cast<double>(metaop::count(build_lola_mnist(false)).meta));
}

TEST(TfheGraphs, PbsStructure) {
  const TfheWl w = TfheWl::set_i();
  const OpGraph g = build_pbs(w);
  expect_valid_dag(g);
  // One NTT + DecompPolyMult + INTT per blind-rotation step.
  EXPECT_EQ(count_kind(g, OpKind::Ntt), w.n_lwe);
  EXPECT_EQ(count_kind(g, OpKind::DecompPolyMult), w.n_lwe);
  EXPECT_EQ(count_kind(g, OpKind::Intt), w.n_lwe);
}

TEST(TfheGraphs, PbsIsNttDominated) {
  // Fig. 1: TFHE-PBS is NTT-heavy.
  const OpGraph g = build_pbs(TfheWl::set_i());
  const auto mults = metaop::class_mults(g, true);
  const double total = static_cast<double>(mults[0] + mults[1] + mults[2] + mults[3]);
  EXPECT_GT(mults[static_cast<std::size_t>(OpClass::Ntt)] / total, 0.5);
}

TEST(TfheGraphs, MetaOpSavingSmallForTfhe) {
  // Fig. 7(a): TFHE PBS only saves ~3% — NTT dominates and pays +11%, offset
  // by the DecompPolyMult savings.
  const auto c = metaop::count(build_pbs(TfheWl::set_i()));
  EXPECT_LT(c.relative_change(), 0.10);
  EXPECT_GT(c.relative_change(), -0.15);
}

TEST(TfheGraphs, BkBytesMatchesFormula) {
  const TfheWl w = TfheWl::set_i();
  // n=630 TGSWs, (k+1)*l=6 rows, (k+1)=2 polys of 1024 coeffs at 4.5 B.
  EXPECT_NEAR(w.bk_bytes(), 630.0 * 6 * 2 * 1024 * 4.5, 1.0);
  const TfheWl w2 = TfheWl::set_ii();
  EXPECT_GT(w2.bk_bytes(), 0);
}

TEST(TfheGraphs, BatchScalesWork) {
  TfheWl w1 = TfheWl::set_i();
  w1.batch = 1;
  TfheWl w16 = TfheWl::set_i();
  w16.batch = 16;
  EXPECT_NEAR(static_cast<double>(metaop::count(build_pbs(w16)).meta),
              16.0 * static_cast<double>(metaop::count(build_pbs(w1)).meta),
              0.01 * 16.0 * static_cast<double>(metaop::count(build_pbs(w1)).meta));
}

}  // namespace
}  // namespace alchemist::workloads
