// Cooperative cancellation, deadlines and checkpoint/resume for both
// simulator engines. The load-bearing property pinned here: a run that is
// interrupted at an arbitrary step boundary and resumed from its checkpoint
// produces a SimResult bit-identical to an uninterrupted run — including
// under an active fault model, whose RNG draws must replay exactly.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>

#include "arch/config.h"
#include "fault/fault_model.h"
#include "metaop/op_graph.h"
#include "sim/alchemist_sim.h"
#include "sim/checkpoint.h"
#include "sim/event_sim.h"
#include "sim/sim_control.h"
#include "workloads/ckks_workloads.h"

namespace alchemist {
namespace {

metaop::OpGraph keyswitch_graph() {
  return workloads::build_keyswitch(workloads::CkksWl::paper(16));
}

sim::SimResult run_engine(bool event, const metaop::OpGraph& g,
                          const arch::ArchConfig& cfg,
                          fault::FaultModel* fault = nullptr,
                          sim::SimControl* control = nullptr) {
  return event ? sim::simulate_alchemist_events(g, cfg, nullptr, fault, control)
               : sim::simulate_alchemist(g, cfg, nullptr, fault, control);
}

void expect_same_result(const sim::SimResult& a, const sim::SimResult& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.time_us, b.time_us);  // exact: resumed runs must be bit-identical
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.registry.counters(), b.registry.counters());
}

TEST(CancelToken, StopReasons) {
  sim::CancelToken token;
  EXPECT_EQ(token.should_stop(), sim::StopReason::None);

  token.set_deadline(std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1));
  EXPECT_EQ(token.should_stop(), sim::StopReason::DeadlineExpired);
  token.clear_deadline();
  EXPECT_EQ(token.should_stop(), sim::StopReason::None);

  token.request_cancel();
  EXPECT_EQ(token.should_stop(), sim::StopReason::Cancelled);
  // Cancellation wins over an expired deadline.
  token.set_deadline(std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1));
  EXPECT_EQ(token.should_stop(), sim::StopReason::Cancelled);
}

TEST(SimControl, PreCancelledRunStopsAtStepZero) {
  const metaop::OpGraph g = keyswitch_graph();
  const arch::ArchConfig cfg = arch::ArchConfig::alchemist();
  sim::CancelToken token;
  token.request_cancel();
  sim::Checkpoint cp;
  sim::SimControl ctl;
  ctl.cancel = &token;
  ctl.checkpoint = &cp;
  for (bool event : {false, true}) {
    cp.clear();
    try {
      run_engine(event, g, cfg, nullptr, &ctl);
      FAIL() << "expected CancelledError";
    } catch (const sim::CancelledError& e) {
      EXPECT_EQ(e.reason(), sim::StopReason::Cancelled);
      EXPECT_EQ(e.step(), 0u);
    }
    EXPECT_TRUE(cp.valid());
    EXPECT_EQ(cp.step, 0u);
  }
}

TEST(SimControl, UnlimitedBudgetMatchesPlainRun) {
  const metaop::OpGraph g = keyswitch_graph();
  const arch::ArchConfig cfg = arch::ArchConfig::alchemist();
  for (bool event : {false, true}) {
    const sim::SimResult ref = run_engine(event, g, cfg);
    sim::SimControl ctl;  // no token, no budget, no checkpoint
    expect_same_result(run_engine(event, g, cfg, nullptr, &ctl), ref);
  }
}

void check_resume_bit_identical(bool event, bool with_fault) {
  const metaop::OpGraph g = keyswitch_graph();
  const arch::ArchConfig cfg = arch::ArchConfig::alchemist();
  fault::FaultConfig fc;
  fc.seed = 0xdead'beefull;
  fc.compute_fault_rate = fc.sram_fault_rate = fc.hbm_fault_rate = 5e-9;

  std::unique_ptr<fault::FaultModel> ref_fault, run_fault;
  if (with_fault) {
    ref_fault = std::make_unique<fault::FaultModel>(fc, cfg.num_units);
    run_fault = std::make_unique<fault::FaultModel>(fc, cfg.num_units);
  }
  const sim::SimResult ref = run_engine(event, g, cfg, ref_fault.get());

  // Interrupt after every possible number of steps and resume each time.
  for (std::uint64_t budget = 1;; ++budget) {
    sim::Checkpoint cp;
    sim::SimControl ctl;
    ctl.max_steps = budget;
    ctl.checkpoint = &cp;
    if (run_fault) run_fault->reset();
    sim::SimResult result;
    try {
      result = run_engine(event, g, cfg, run_fault.get(), &ctl);
      expect_same_result(result, ref);  // budget outlived the run
      EXPECT_GE(budget, 1u);
      return;
    } catch (const sim::CancelledError& e) {
      ASSERT_EQ(e.reason(), sim::StopReason::StepBudget);
      ASSERT_TRUE(cp.valid());
      // The level engine's cursor counts levels (== executed steps); the
      // event engine's counts completed ops, which can run ahead of the
      // iteration budget when one interval completes several ops.
      ASSERT_GE(cp.step, event ? 1u : budget);
      if (!event) {
        ASSERT_EQ(cp.step, budget);
      }
    }
    // Resume with no budget: must land exactly on the reference.
    sim::SimControl resume;
    resume.checkpoint = &cp;
    if (run_fault) run_fault->reset();
    expect_same_result(run_engine(event, g, cfg, run_fault.get(), &resume), ref);
  }
}

TEST(SimControl, LevelEngineResumeBitIdentical) {
  check_resume_bit_identical(false, false);
}
TEST(SimControl, LevelEngineResumeBitIdenticalWithFaults) {
  check_resume_bit_identical(false, true);
}
TEST(SimControl, EventEngineResumeBitIdentical) {
  check_resume_bit_identical(true, false);
}
TEST(SimControl, EventEngineResumeBitIdenticalWithFaults) {
  check_resume_bit_identical(true, true);
}

TEST(SimControl, ChainedResumesReachReference) {
  const metaop::OpGraph g = keyswitch_graph();
  const arch::ArchConfig cfg = arch::ArchConfig::alchemist();
  const sim::SimResult ref = sim::simulate_alchemist(g, cfg);

  sim::Checkpoint cp;
  sim::SimResult result;
  bool done = false;
  std::size_t legs = 0;
  while (!done) {
    sim::SimControl ctl;
    ctl.max_steps = 2;  // fresh two-step budget per leg
    ctl.checkpoint = &cp;
    try {
      result = sim::simulate_alchemist(g, cfg, nullptr, nullptr, &ctl);
      done = true;
    } catch (const sim::CancelledError&) {
      ASSERT_TRUE(cp.valid());
    }
    ASSERT_LT(++legs, 100u) << "chained resume did not terminate";
  }
  EXPECT_GT(legs, 1u) << "workload too small to exercise chained resume";
  expect_same_result(result, ref);
}

TEST(SimControl, IntervalCheckpointResumes) {
  const metaop::OpGraph g = keyswitch_graph();
  const arch::ArchConfig cfg = arch::ArchConfig::alchemist();
  const sim::SimResult ref = sim::simulate_alchemist(g, cfg);

  // A completed run leaves its last interval snapshot behind; resuming from
  // it replays only the tail and still matches the reference.
  sim::Checkpoint cp;
  sim::SimControl ctl;
  ctl.checkpoint_interval = 1;
  ctl.checkpoint = &cp;
  expect_same_result(sim::simulate_alchemist(g, cfg, nullptr, nullptr, &ctl), ref);
  ASSERT_TRUE(cp.valid());
  EXPECT_GT(cp.step, 0u);

  sim::SimControl resume;
  resume.checkpoint = &cp;
  expect_same_result(sim::simulate_alchemist(g, cfg, nullptr, nullptr, &resume), ref);
}

TEST(Checkpoint, SerializeRoundtrip) {
  const metaop::OpGraph g = keyswitch_graph();
  const arch::ArchConfig cfg = arch::ArchConfig::alchemist();
  sim::Checkpoint cp;
  sim::SimControl ctl;
  ctl.max_steps = 1;
  ctl.checkpoint = &cp;
  EXPECT_THROW(sim::simulate_alchemist(g, cfg, nullptr, nullptr, &ctl),
               sim::CancelledError);
  ASSERT_TRUE(cp.valid());

  const std::vector<std::uint8_t> bytes = cp.serialize();
  const sim::Checkpoint back = sim::Checkpoint::deserialize(bytes);
  EXPECT_EQ(back.engine, cp.engine);
  EXPECT_EQ(back.workload, cp.workload);
  EXPECT_EQ(back.op_count, cp.op_count);
  EXPECT_EQ(back.fingerprint, cp.fingerprint);
  EXPECT_EQ(back.step, cp.step);
  EXPECT_EQ(back.state, cp.state);

  // A deserialized checkpoint must actually resume.
  sim::Checkpoint resumable = back;
  sim::SimControl resume;
  resume.checkpoint = &resumable;
  expect_same_result(sim::simulate_alchemist(g, cfg, nullptr, nullptr, &resume),
                     sim::simulate_alchemist(g, cfg));
}

TEST(Checkpoint, RejectsCorruption) {
  const metaop::OpGraph g = keyswitch_graph();
  const arch::ArchConfig cfg = arch::ArchConfig::alchemist();
  sim::Checkpoint cp;
  sim::SimControl ctl;
  ctl.max_steps = 1;
  ctl.checkpoint = &cp;
  EXPECT_THROW(sim::simulate_alchemist(g, cfg, nullptr, nullptr, &ctl),
               sim::CancelledError);
  const std::vector<std::uint8_t> bytes = cp.serialize();

  // Empty and truncated buffers.
  EXPECT_THROW(sim::Checkpoint::deserialize({}), sim::CheckpointError);
  for (std::size_t keep : {1ul, 8ul, bytes.size() / 2, bytes.size() - 1}) {
    std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + keep);
    EXPECT_THROW(sim::Checkpoint::deserialize(cut), sim::CheckpointError);
  }
  // Every single-byte flip must be caught (magic, framing or the footer).
  for (std::size_t i = 0; i < bytes.size(); i += 7) {
    std::vector<std::uint8_t> bad = bytes;
    bad[i] ^= 0x40;
    EXPECT_THROW(sim::Checkpoint::deserialize(bad), sim::CheckpointError)
        << "flip at byte " << i << " not detected";
  }
  // Trailing garbage.
  std::vector<std::uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_THROW(sim::Checkpoint::deserialize(padded), sim::CheckpointError);
}

TEST(Checkpoint, RejectsMismatchedResume) {
  const metaop::OpGraph g = keyswitch_graph();
  const arch::ArchConfig cfg = arch::ArchConfig::alchemist();
  sim::Checkpoint cp;
  sim::SimControl ctl;
  ctl.max_steps = 1;
  ctl.checkpoint = &cp;
  EXPECT_THROW(sim::simulate_alchemist(g, cfg, nullptr, nullptr, &ctl),
               sim::CancelledError);
  ASSERT_TRUE(cp.valid());

  // Wrong engine.
  {
    sim::Checkpoint c = cp;
    sim::SimControl r;
    r.checkpoint = &c;
    EXPECT_THROW(sim::simulate_alchemist_events(g, cfg, nullptr, nullptr, &r),
                 sim::CheckpointError);
  }
  // Wrong workload.
  {
    const metaop::OpGraph other =
        workloads::build_pmult(workloads::CkksWl::paper(16));
    sim::Checkpoint c = cp;
    sim::SimControl r;
    r.checkpoint = &c;
    EXPECT_THROW(sim::simulate_alchemist(other, cfg, nullptr, nullptr, &r),
                 sim::CheckpointError);
  }
  // Wrong machine geometry.
  {
    arch::ArchConfig smaller = cfg;
    smaller.num_units = cfg.num_units / 2;
    sim::Checkpoint c = cp;
    sim::SimControl r;
    r.checkpoint = &c;
    EXPECT_THROW(sim::simulate_alchemist(g, smaller, nullptr, nullptr, &r),
                 sim::CheckpointError);
  }
  // Fault configuration appeared that the checkpoint was not taken under.
  {
    fault::FaultConfig fc;
    fc.compute_fault_rate = 1e-9;
    fault::FaultModel fm(fc, cfg.num_units);
    sim::Checkpoint c = cp;
    sim::SimControl r;
    r.checkpoint = &c;
    EXPECT_THROW(sim::simulate_alchemist(g, cfg, nullptr, &fm, &r),
                 sim::CheckpointError);
  }
}

}  // namespace
}  // namespace alchemist
