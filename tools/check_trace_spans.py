#!/usr/bin/env python3
"""Validate span well-formedness in a spans.v1 trace document.

Usage:
    check_trace_spans.py TRACE.json [--allow-drops] [--min-spans N]
                         [--require-reattach]

Accepts either a standalone `spans.v1` document (alchemist_serve --trace-out,
svc_soak --trace-out) or a `metrics.v1` report whose runs embed a spans
section (Registry::attach_spans).  Checks, per span set:

  * document bookkeeping: count matches the span array, recorded = count +
    dropped, and dropped == 0 unless --allow-drops is passed;
  * ids: every span/trace id is nonzero and (trace, span) pairs are unique;
  * parentage: a span's parent is either 0 (root) or another span of the
    same trace present in the document (with --allow-drops a missing parent
    is tolerated, since the ring may have evicted it);
  * containment: a child's [ts, ts+dur] interval lies inside its parent's,
    checked only when both spans are stamped in the same clock domain
    (host wall-us spans never nest inside cycle-domain simulator spans);
  * thread serialization: spans on the svc/worker* tracks are recorded by a
    single worker thread each, so within a track they must be pairwise
    disjoint or nested.  Queue and simulator tracks interleave concurrent
    jobs (and independent cycle timelines) and are exempt;
  * reattach continuity (--require-reattach): at least one net.reattach span
    exists, and every net.reattach span joins a trace that also holds the
    original submission's net.submit span on a *different* net/ track and
    the runner's job span — i.e. a job resumed over a reconnect stayed in
    the trace its first submission started, instead of minting a new one.

Exit status 0 when every span set passes, 1 otherwise.
"""

import argparse
import json
import sys

# Sequential tracks: one producer thread, wall-clock domain.  svc/queue holds
# concurrently-queued jobs and sim* tracks restart their cycle timeline per
# job, so only the worker tracks promise serialization.
SEQUENTIAL_TRACK_PREFIXES = ("svc/worker",)

# Slack for float round-trips and for parents whose end is stamped a hair
# before the child's recording (microseconds / cycles).
EPS = 0.51


def fail(errors, fmt, *args):
    errors.append(fmt % args if args else fmt)


def check_span_set(label, doc, allow_drops, errors):
    """Validate one spans.v1 object; append human-readable errors."""
    if doc.get("schema") != "spans.v1":
        fail(errors, "%s: schema is %r, expected 'spans.v1'", label, doc.get("schema"))
        return 0
    spans = doc.get("spans", [])
    recorded = doc.get("recorded", 0)
    dropped = doc.get("dropped", 0)
    if doc.get("count") != len(spans):
        fail(errors, "%s: count=%s but document holds %d spans", label, doc.get("count"), len(spans))
    if recorded != len(spans) + dropped:
        fail(errors, "%s: recorded=%d != kept %d + dropped %d", label, recorded, len(spans), dropped)
    if dropped and not allow_drops:
        fail(errors, "%s: %d spans dropped (ring overflow); size the sink or pass --allow-drops", label, dropped)

    ids = {}
    for i, s in enumerate(spans):
        trace, span = int(s["trace"], 16), int(s["span"], 16)
        if trace == 0:
            fail(errors, "%s: span #%d (%s) has zero trace id", label, i, s["name"])
        if span == 0:
            fail(errors, "%s: span #%d (%s) has zero span id", label, i, s["name"])
        if (trace, span) in ids:
            fail(errors, "%s: duplicate span id 0x%016x in trace 0x%016x (%s and %s)",
                 label, span, trace, ids[(trace, span)]["name"], s["name"])
        ids[(trace, span)] = s

    for s in spans:
        trace, parent = int(s["trace"], 16), int(s["parent"], 16)
        if parent == 0:
            continue
        p = ids.get((trace, parent))
        if p is None:
            if not (allow_drops and dropped):
                fail(errors, "%s: span %s/%s names missing parent 0x%016x",
                     label, s["trace"], s["name"], parent)
            continue
        if p["clock"] != s["clock"]:
            continue  # cross-clock nesting carries no interval contract
        if s["name"] == "job" and p["name"] == "job":
            # A resumed job parents its root span under the interrupted
            # job's root: follows-from linkage, which by construction starts
            # after the parent ended.  Only the tree edge is asserted.
            continue
        if s["ts"] < p["ts"] - EPS or s["ts"] + s["dur"] > p["ts"] + p["dur"] + EPS:
            fail(errors,
                 "%s: child %s [%.3f, %.3f] escapes parent %s [%.3f, %.3f] (trace %s)",
                 label, s["name"], s["ts"], s["ts"] + s["dur"],
                 p["name"], p["ts"], p["ts"] + p["dur"], s["trace"])

    by_track = {}
    for s in spans:
        if s["track"].startswith(SEQUENTIAL_TRACK_PREFIXES):
            by_track.setdefault(s["track"], []).append(s)
    for track, ts in by_track.items():
        ts.sort(key=lambda s: (s["ts"], -s["dur"]))
        # Nested spans are fine (a backoff inside an attempt window would
        # be); partial overlap on a single-threaded track is a clock bug.
        open_stack = []
        for s in ts:
            while open_stack and open_stack[-1]["ts"] + open_stack[-1]["dur"] <= s["ts"] + EPS:
                open_stack.pop()
            if open_stack:
                top = open_stack[-1]
                if s["ts"] + s["dur"] > top["ts"] + top["dur"] + EPS:
                    fail(errors,
                         "%s: %s spans %s [%.3f, %.3f] and %s [%.3f, %.3f] partially overlap",
                         label, track, top["name"], top["ts"], top["ts"] + top["dur"],
                         s["name"], s["ts"], s["ts"] + s["dur"])
                    continue
            open_stack.append(s)
    return len(spans)


def check_reattach(label, doc, errors):
    """Gate the exactly-once reconnect path: a job resumed over a reconnect
    must join its original trace.  Returns the number of net.reattach spans."""
    spans = doc.get("spans", [])
    by_trace = {}
    for s in spans:
        by_trace.setdefault(s["trace"], []).append(s)
    reattaches = [s for s in spans if s["name"] == "net.reattach"]
    for s in reattaches:
        peers = by_trace.get(s["trace"], [])
        submits = [p for p in peers
                   if p["name"] == "net.submit" and p["track"] != s["track"]]
        if not submits:
            fail(errors,
                 "%s: net.reattach on %s (trace %s) has no originating "
                 "net.submit on another connection — the reconnect minted a "
                 "fresh trace instead of joining the original",
                 label, s["track"], s["trace"])
        if not any(p["name"] == "job" for p in peers):
            fail(errors,
                 "%s: net.reattach trace %s holds no runner job span — the "
                 "re-attached handle never ran under this trace",
                 label, s["trace"])
    return len(reattaches)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="spans.v1 document or metrics.v1 report")
    ap.add_argument("--allow-drops", action="store_true",
                    help="tolerate ring overflow (dropped > 0 and orphaned parents)")
    ap.add_argument("--min-spans", type=int, default=1,
                    help="fail if fewer than N spans total survive (default 1)")
    ap.add_argument("--require-reattach", action="store_true",
                    help="fail unless a net.reattach span exists and every one "
                         "joins its original submission's trace")
    args = ap.parse_args()

    with open(args.trace) as f:
        doc = json.load(f)

    errors = []
    total = 0
    reattaches = 0
    if doc.get("schema") == "spans.v1":
        total += check_span_set(args.trace, doc, args.allow_drops, errors)
        if args.require_reattach:
            reattaches += check_reattach(args.trace, doc, errors)
    elif "runs" in doc:
        for i, run in enumerate(doc["runs"]):
            if "spans" in run:
                label = "%s run[%d]" % (args.trace, i)
                total += check_span_set(label, run["spans"], args.allow_drops, errors)
                if args.require_reattach:
                    reattaches += check_reattach(label, run["spans"], errors)
    else:
        errors.append("%s: neither a spans.v1 document nor a metrics report with runs" % args.trace)

    if total < args.min_spans:
        errors.append("%s: only %d spans present, expected at least %d" % (args.trace, total, args.min_spans))
    if args.require_reattach and reattaches == 0:
        errors.append("%s: --require-reattach but no net.reattach span present" % args.trace)

    for e in errors:
        print("check_trace_spans: FAIL:", e, file=sys.stderr)
    if errors:
        return 1
    print("check_trace_spans: OK: %d spans validated in %s" % (total, args.trace))
    return 0


if __name__ == "__main__":
    sys.exit(main())
