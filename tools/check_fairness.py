#!/usr/bin/env python3
"""Gate the multi-tenant isolation guarantees of a fairness.v1 report.

Usage:
    tools/check_fairness.py FILE [--max-p99-ratio R] [--p99-floor-us US]

Reads the fairness.v1 JSON written by `svc_soak --overload --fairness-out F`
and enforces the serving layer's isolation contract — stdlib only:

  * quota enforcement: in every scenario where the adversary carries a quota,
    `admitted == quota` exactly (a misbehaving tenant is throttled to its
    contract, never above it) and `admitted + quota_exceeded + shed ==
    submitted` (every rejection is typed and accounted);
  * victim integrity: the well-behaved tenant completes everything it
    submits in every scenario — an adversary can cost the victim latency,
    never outcomes;
  * bounded interference: in every contended scenario the victim's p99 stays
    within --max-p99-ratio (default 2.0) of its solo-baseline p99, with a
    --p99-floor-us absolute allowance (default 5000) so microsecond-scale
    baselines don't turn scheduler noise into failures:
        p99 <= max(ratio * solo_p99, solo_p99 + floor_us)
  * degradation accounting: the degrade scenario reports at least one
    degraded completion (the ladder actually engaged) and no quota noise.

Exit codes: 0 all gates hold, 1 violations found, 2 usage / unreadable input.
"""
import argparse
import json
import sys

CONTENDED = ("bursty", "slowjob", "quota_probe")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("file", help="fairness.v1 JSON report")
    ap.add_argument("--max-p99-ratio", type=float, default=2.0,
                    help="max victim p99 as a multiple of the solo baseline")
    ap.add_argument("--p99-floor-us", type=float, default=5000.0,
                    help="absolute p99 allowance added to the solo baseline")
    args = ap.parse_args()

    try:
        with open(args.file, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_fairness: cannot read {args.file}: {e}", file=sys.stderr)
        return 2

    if doc.get("schema") != "fairness.v1":
        print(f"check_fairness: not a fairness.v1 document: {doc.get('schema')!r}",
              file=sys.stderr)
        return 2

    scenarios = doc.get("scenarios", {})
    errors = []

    def tenant(scenario, name):
        t = scenarios.get(scenario, {}).get("tenants", {}).get(name)
        if t is None:
            errors.append(f"{scenario}: tenant {name!r} missing from report")
        return t

    solo = tenant("solo", "victim")
    if solo is None:
        for e in errors:
            print(f"check_fairness: {e}", file=sys.stderr)
        return 1
    solo_p99 = float(solo["p99_us"])
    bound = max(args.max_p99_ratio * solo_p99, solo_p99 + args.p99_floor_us)

    for scenario in CONTENDED + ("degrade",):
        victim = tenant(scenario, "victim")
        if victim is None:
            continue
        if victim["completed"] != victim["submitted"]:
            errors.append(
                f"{scenario}: victim completed {victim['completed']} of "
                f"{victim['submitted']} submitted — adversary cost it outcomes")
        if scenario in CONTENDED:
            p99 = float(victim["p99_us"])
            if p99 > bound:
                errors.append(
                    f"{scenario}: victim p99 {p99:.0f}us exceeds bound "
                    f"{bound:.0f}us (solo {solo_p99:.0f}us, "
                    f"ratio {args.max_p99_ratio}, floor {args.p99_floor_us:.0f}us)")

    for scenario in CONTENDED:
        adv = tenant(scenario, "adversary")
        if adv is None:
            continue
        quota = adv.get("quota", 0)
        if quota and adv["admitted"] != quota:
            errors.append(
                f"{scenario}: adversary admitted {adv['admitted']} != quota {quota}")
        accounted = adv["admitted"] + adv["quota_exceeded"] + adv["shed"]
        if accounted != adv["submitted"]:
            errors.append(
                f"{scenario}: adversary admitted+rejected {accounted} != "
                f"submitted {adv['submitted']} — untyped rejection leak")

    degrade = tenant("degrade", "victim")
    if degrade is not None:
        if degrade["degraded"] == 0:
            errors.append("degrade: ladder never degraded a job")
        if degrade["quota_exceeded"] != 0:
            errors.append("degrade: unexpected quota rejections")

    if errors:
        for e in errors:
            print(f"check_fairness: {e}", file=sys.stderr)
        print(f"check_fairness: FAILED ({len(errors)} violation(s))",
              file=sys.stderr)
        return 1

    ratios = {}
    for scenario in CONTENDED:
        v = scenarios.get(scenario, {}).get("tenants", {}).get("victim")
        if v and solo_p99 > 0:
            ratios[scenario] = float(v["p99_us"]) / solo_p99
    summary = ", ".join(f"{s} {r:.2f}x" for s, r in ratios.items())
    print(f"check_fairness: OK — victim p99 vs solo baseline: {summary} "
          f"(bound {bound:.0f}us)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
