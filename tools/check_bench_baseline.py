#!/usr/bin/env python3
"""Compare an alchemist.metrics.v1 report against the committed baseline.

Usage:
    tools/check_bench_baseline.py BASELINE.json CURRENT.json [--tolerance 0.05]
                                  [--ignore REGEX] [--optional REGEX]
                                  [--md-out FILE]

--md-out writes the full per-counter comparison as a GitHub-flavored Markdown
table (written on success AND failure; CI appends it to $GITHUB_STEP_SUMMARY
so every run's counter landscape is one click away).

Runs are matched by (workload, accelerator). Every counter present in the
baseline must exist in the current report and stay within the relative
tolerance (default 5%); `sim.cycles*` and `sim.stall*` counters are the
regression gate the CI job exists for, but all shared counters are checked —
a silent change in, say, sim.mults{lazy=true} is a model change that should
show up in review. Counters only present in the current report are allowed
(new telemetry is not a regression) but reported for information.

Wall-clock counters are machine-dependent and must not gate: pass
--ignore 'wall_ns|kernel_ns' to skip any counter whose name matches the
regex (skips are reported as notes, never as failures).

Some runs only exist on capable hosts (e.g. the per-ISA NTT substrate runs
`ntt_substrate_t2_avx2` / `_avx512` need AVX hardware): pass
--optional '(avx2|avx512)' to demote "run missing from current report" to a
note for any run whose workload matches the regex. Optional runs ARE still
fully gated whenever both reports contain them, so a host that can run them
cannot silently regress them.

Exit codes: 0 ok, 1 regression/missing data, 2 usage or unreadable input.
"""
import argparse
import json
import re
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "alchemist.metrics.v1":
        print(f"error: {path}: unexpected schema {doc.get('schema')!r}", file=sys.stderr)
        sys.exit(2)
    return {
        (run["workload"], run["accelerator"]): run.get("counters", {})
        for run in doc.get("runs", [])
    }


def write_markdown(path, md_rows, failures, tolerance):
    """One GitHub-flavored table over every compared counter."""
    verdict = (f"❌ **FAIL** — {len(failures)} deviation(s)" if failures
               else "✅ **OK**")
    lines = [
        "### Bench baseline check",
        "",
        f"{verdict} (tolerance ±{tolerance:.0%}; wall-clock counters skipped)",
        "",
        "| Run | Counter | Baseline | Current | Drift | Status |",
        "|---|---|---:|---:|---:|---|",
    ]
    for label, key, base, cur, drift, status in md_rows:
        drift_s = "—" if drift is None else f"{drift:+.2%}"
        mark = {"ok": "✅", "FAIL": "❌", "skipped": "⏭ skipped",
                "new": "🆕 new"}.get(status, status)
        lines.append(f"| {label} | `{key}` | {base} | {cur} | {drift_s} | {mark} |")
    if failures:
        lines += ["", "<details><summary>Deviations</summary>", ""]
        lines += [f"- {f}" for f in failures]
        lines += ["", "</details>"]
    try:
        with open(path, "w") as f:
            f.write("\n".join(lines) + "\n")
    except OSError as e:
        print(f"error: cannot write {path}: {e}", file=sys.stderr)
        sys.exit(2)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.05,
                    help="max allowed relative drift per counter (default 0.05)")
    ap.add_argument("--ignore", metavar="REGEX", default=None,
                    help="skip counters whose name matches this regex "
                         "(e.g. 'wall_ns|kernel_ns' for wall-clock rows)")
    ap.add_argument("--optional", metavar="REGEX", default=None,
                    help="runs whose workload matches this regex may be "
                         "absent from the current report without failing "
                         "(e.g. '(avx2|avx512)' for host-dependent ISA runs); "
                         "they are still gated when present in both reports")
    ap.add_argument("--md-out", metavar="FILE", default=None,
                    help="also write the comparison as a Markdown summary table")
    args = ap.parse_args()
    ignore = re.compile(args.ignore) if args.ignore else None
    optional = re.compile(args.optional) if args.optional else None

    baseline = load(args.baseline)
    current = load(args.current)

    failures = []
    infos = []
    # Per-run diff rows (counter, baseline, current, drift, violation flag),
    # printed as a summary table when the check fails so a reviewer sees the
    # whole counter landscape, not just the counters that crossed the line.
    diff_rows = {}
    # Every compared counter, for --md-out: (run label, counter, baseline,
    # current, drift, status string).
    md_rows = []
    for run_key, base_counters in sorted(baseline.items()):
        label = f"{run_key[0]} [{run_key[1]}]"
        cur_counters = current.get(run_key)
        if cur_counters is None:
            if optional is not None and optional.search(run_key[0]):
                infos.append(f"{label}: optional run absent from current "
                             f"report (ok, matches --optional)")
                md_rows.append((label, "(run)", "-", "absent", None, "skipped"))
                continue
            failures.append(f"{label}: run missing from current report")
            md_rows.append((label, "(run)", "-", "missing", None, "FAIL"))
            continue
        rows = diff_rows.setdefault(label, [])
        run_failed = False
        ignored = []
        for key, base_value in sorted(base_counters.items()):
            if ignore is not None and ignore.search(key):
                ignored.append(key)
                md_rows.append((label, key, base_value,
                                cur_counters.get(key, "missing"), None,
                                "skipped"))
                continue
            if key not in cur_counters:
                failures.append(f"{label}: counter {key} missing")
                rows.append((key, base_value, None, None, True))
                md_rows.append((label, key, base_value, "missing", None, "FAIL"))
                run_failed = True
                continue
            cur_value = cur_counters[key]
            if base_value == 0:
                bad = cur_value != 0
                if bad:
                    failures.append(f"{label}: {key} was 0, now {cur_value}")
                    run_failed = True
                rows.append((key, base_value, cur_value, None, bad))
                md_rows.append((label, key, base_value, cur_value, None,
                                "FAIL" if bad else "ok"))
                continue
            drift = (cur_value - base_value) / base_value
            bad = abs(drift) > args.tolerance
            if bad:
                failures.append(
                    f"{label}: {key} drifted {drift:+.1%} "
                    f"({base_value} -> {cur_value}, tolerance {args.tolerance:.0%})")
                run_failed = True
            rows.append((key, base_value, cur_value, drift, bad))
            md_rows.append((label, key, base_value, cur_value, drift,
                            "FAIL" if bad else "ok"))
        if not run_failed:
            del diff_rows[label]
        if ignored:
            infos.append(f"{label}: ignored {len(ignored)} counter(s) matching "
                         f"--ignore: {', '.join(ignored)}")
        new_keys = sorted(set(cur_counters) - set(base_counters))
        if new_keys:
            infos.append(f"{label}: new counters (ok): {', '.join(new_keys)}")
            for key in new_keys:
                md_rows.append((label, key, "-", cur_counters[key], None, "new"))
    for run_key in sorted(set(current) - set(baseline)):
        infos.append(f"{run_key[0]} [{run_key[1]}]: new run (ok)")

    if args.md_out:
        write_markdown(args.md_out, md_rows, failures, args.tolerance)

    for line in infos:
        print(f"note: {line}")
    if failures:
        print(f"\nFAIL: {len(failures)} baseline deviation(s):")
        for line in failures:
            print(f"  {line}")
        for label, rows in sorted(diff_rows.items()):
            print(f"\nper-counter diff for {label} "
                  f"(! marks counters beyond the {args.tolerance:.0%} tolerance):")
            width = max(len(r[0]) for r in rows)
            print(f"  {'counter':<{width}}  {'baseline':>14}  {'current':>14}  drift")
            for key, base_value, cur_value, drift, bad in rows:
                mark = "!" if bad else " "
                cur_s = "missing" if cur_value is None else str(cur_value)
                drift_s = "-" if drift is None else f"{drift:+.2%}"
                print(f"{mark} {key:<{width}}  {base_value:>14}  {cur_s:>14}  {drift_s}")
        print("\nIf the change is intended, regenerate the baseline with:\n"
              "  ./build/bench/metaop_core_timing --metrics-out BENCH_sim.json")
        return 1
    checked = sum(len(c) for c in baseline.values())
    print(f"OK: {checked} counters across {len(baseline)} runs within "
          f"{args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
