#!/usr/bin/env python3
"""Validate a Prometheus text-exposition (format 0.0.4) document.

Usage:
    tools/check_prom_exposition.py [FILE] [--require-metric NAME]...
                                   [--require-histogram NAME]...

Reads FILE (or stdin) and checks the structural rules an exposition consumer
relies on — stdlib only, no prometheus_client dependency:

  * every non-comment line parses as  name[{labels}] value  with a legal
    metric name ([a-zA-Z_:][a-zA-Z0-9_:]*), legal label names, quoted and
    correctly escaped label values, and a float-parseable value
    (NaN/+Inf/-Inf included);
  * at most one  # TYPE <name> <counter|gauge|histogram|summary|untyped>
    per metric family, appearing before the family's first sample;
  * histogram families have  _bucket  series with an `le` label whose
    cumulative counts are monotonically non-decreasing in le order and end
    in an le="+Inf" bucket equal to  _count,  plus a  _sum  sample;
  * no duplicate sample (same name + label set).

--require-metric / --require-histogram fail the check when the named family
is absent (the CI smoke uses these to pin the svc.latency.* histograms and
the svc_* counters in the live /metrics endpoint).

Exit codes: 0 valid, 1 violations found, 2 usage / unreadable input.
"""
import argparse
import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# name{labels} value  — labels part captured raw, parsed separately.
SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})?\s+(\S+)$")
TYPE_RE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) "
                     r"(counter|gauge|histogram|summary|untyped)$")


def parse_labels(raw, errors, lineno):
    """'{a="x",b="y"}' -> dict; appends to errors on malformed input."""
    labels = {}
    body = raw[1:-1]
    i = 0
    while i < len(body):
        m = re.match(r'([a-zA-Z_][a-zA-Z0-9_]*)="', body[i:])
        if not m:
            errors.append(f"line {lineno}: malformed label at ...{body[i:i+30]!r}")
            return labels
        name = m.group(1)
        i += m.end()
        value = []
        while i < len(body):
            c = body[i]
            if c == "\\":
                if i + 1 >= len(body) or body[i + 1] not in '\\"n':
                    errors.append(f"line {lineno}: bad escape in label {name}")
                    return labels
                value.append({"\\": "\\", '"': '"', "n": "\n"}[body[i + 1]])
                i += 2
            elif c == '"':
                i += 1
                break
            else:
                value.append(c)
                i += 1
        else:
            errors.append(f"line {lineno}: unterminated label value for {name}")
            return labels
        if name in labels:
            errors.append(f"line {lineno}: duplicate label {name}")
        labels[name] = "".join(value)
        if i < len(body):
            if body[i] != ",":
                errors.append(f"line {lineno}: expected ',' between labels")
                return labels
            i += 1
    return labels


def parse_value(text, errors, lineno):
    try:
        return float(text)
    except ValueError:
        errors.append(f"line {lineno}: unparseable value {text!r}")
        return None


def base_family(name):
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("file", nargs="?", default="-",
                    help="exposition file (default: stdin)")
    ap.add_argument("--require-metric", action="append", default=[],
                    metavar="NAME", help="fail unless this family has samples")
    ap.add_argument("--require-histogram", action="append", default=[],
                    metavar="NAME",
                    help="fail unless this family is a complete histogram")
    args = ap.parse_args()

    try:
        text = (sys.stdin.read() if args.file == "-"
                else open(args.file, encoding="utf-8").read())
    except OSError as e:
        print(f"error: cannot read {args.file}: {e}", file=sys.stderr)
        return 2

    errors = []
    types = {}            # family -> declared type
    samples_seen = set()  # (name, frozen labels) for duplicate detection
    families = set()      # families with at least one sample
    # histogram family -> {"buckets": [(le, value, labels-minus-le)],
    #                      "sum": bool, "count": {labelset: value}}
    histograms = {}

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            m = TYPE_RE.match(line)
            if m:
                family, ftype = m.groups()
                if family in types:
                    errors.append(f"line {lineno}: duplicate # TYPE for {family}")
                elif family in families:
                    errors.append(
                        f"line {lineno}: # TYPE {family} after its samples")
                else:
                    types[family] = ftype
            elif not line.startswith("# HELP") and not line.startswith("# EOF"):
                # Arbitrary comments are legal; only malformed TYPE lines are not.
                if line.startswith("# TYPE"):
                    errors.append(f"line {lineno}: malformed # TYPE line")
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name, raw_labels, raw_value = m.groups()
        labels = parse_labels(raw_labels, errors, lineno) if raw_labels else {}
        value = parse_value(raw_value, errors, lineno)
        key = (name, tuple(sorted(labels.items())))
        if key in samples_seen:
            errors.append(f"line {lineno}: duplicate sample {name}{labels}")
        samples_seen.add(key)
        family = base_family(name) if types.get(base_family(name)) == "histogram" \
            else name
        families.add(family)
        if types.get(family) == "histogram" and value is not None:
            h = histograms.setdefault(family, {"buckets": {}, "sum": False,
                                               "count": {}})
            rest = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            if name.endswith("_bucket"):
                if "le" not in labels:
                    errors.append(f"line {lineno}: {name} without le label")
                else:
                    h["buckets"].setdefault(rest, []).append(
                        (labels["le"], value, lineno))
            elif name.endswith("_sum"):
                h["sum"] = True
            elif name.endswith("_count"):
                h["count"][rest] = value

    for family, h in sorted(histograms.items()):
        if not h["sum"]:
            errors.append(f"histogram {family}: missing _sum")
        if not h["count"]:
            errors.append(f"histogram {family}: missing _count")
        for rest, buckets in sorted(h["buckets"].items()):
            les = [b[0] for b in buckets]
            if les != sorted(les, key=lambda s: math.inf if s == "+Inf"
                             else float(s)):
                errors.append(f"histogram {family}{dict(rest)}: le out of order")
            prev = -1.0
            for le, value, lineno in buckets:
                if value < prev:
                    errors.append(f"line {lineno}: {family} bucket le={le} "
                                  f"not cumulative ({value} < {prev})")
                prev = value
            if not les or les[-1] != "+Inf":
                errors.append(f"histogram {family}{dict(rest)}: no +Inf bucket")
            elif rest in h["count"] and buckets[-1][1] != h["count"][rest]:
                errors.append(f"histogram {family}{dict(rest)}: +Inf bucket "
                              f"{buckets[-1][1]} != _count {h['count'][rest]}")

    for name in args.require_metric:
        if name not in families:
            errors.append(f"required metric {name} absent")
    for name in args.require_histogram:
        if name not in histograms:
            errors.append(f"required histogram {name} absent or not declared "
                          f"'# TYPE {name} histogram'")

    if errors:
        print(f"FAIL: {len(errors)} exposition violation(s):")
        for e in errors:
            print(f"  {e}")
        return 1
    print(f"OK: {len(samples_seen)} samples, {len(families)} families, "
          f"{len(histograms)} histograms")
    return 0


if __name__ == "__main__":
    sys.exit(main())
