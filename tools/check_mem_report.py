#!/usr/bin/env python3
"""Validate the memory.v1 section of a metrics.v1 report.

Usage:
    tools/check_mem_report.py REPORT.json [--min-runs N] [--require-refetch]

Reads a metrics report produced with --mem-profile (alchemist_cli,
alchemist_serve, svc_soak) and gates the invariants the memory profiler
promises — stdlib only:

  * schema: every memory section declares "memory.v1";
  * byte conservation: attributed_total equals the sum over the
    (operand x op-class) attribution matrix, equals total_bytes, and equals
    the run's sim.hbm.bytes counter when present — every streamed HBM byte
    is attributed exactly once, none invented;
  * key ledger: every key has fetches >= 1; refetch_bytes <= total_bytes
    per key, and refetch_bytes > 0 implies fetches >= 2; the ledger sums
    match the report's key_fetch_bytes / key_refetch_bytes rollups and the
    key bytes never exceed total traffic; key operand classes are key-like
    (evk / rotation_key);
  * timeline: bw_util and occupancy_bytes are equal-length, non-empty
    epoch vectors; every bw_util entry lies in [0, 1]; occupancy entries
    are non-negative integers;
  * scratchpad: capacity is positive; peak is reported (peak above
    capacity is legal — it is the signal that the working set spills);
  * bookkeeping: total_cycles > 0 whenever bytes moved.

--min-runs fails the check unless at least N runs carry a memory section
(default 1).  --require-refetch additionally demands at least one run with
key_refetch_bytes > 0 — the CI bootstrap/HELR smokes use it to pin the
key-thrash signal the ledger exists to expose.

Exit codes: 0 valid, 1 violations found, 2 usage / unreadable input.
"""

import argparse
import json
import sys

KEY_OPERANDS = ("evk", "rotation_key")
HBM_COUNTER = "sim.hbm.bytes"


def fail(errors, fmt, *args):
    errors.append(fmt % args if args else fmt)


def check_run(run, idx, errors):
    """Validate one run's memory section; returns its key_refetch_bytes."""
    mem = run["memory"]
    tag = "run %d (%s)" % (idx, run.get("workload", "?"))

    if mem.get("schema") != "memory.v1":
        fail(errors, "%s: schema %r, expected 'memory.v1'", tag,
             mem.get("schema"))

    total = mem.get("total_bytes", 0)
    attributed_total = mem.get("attributed_total", 0)
    matrix_sum = sum(
        bytes_
        for classes in mem.get("attributed", {}).values()
        for bytes_ in classes.values())
    if matrix_sum != attributed_total:
        fail(errors, "%s: attribution matrix sums to %d but "
             "attributed_total says %d", tag, matrix_sum, attributed_total)
    if attributed_total != total:
        fail(errors, "%s: attributed_total %d != total_bytes %d "
             "(conservation broken)", tag, attributed_total, total)
    counters = run.get("counters", {})
    if HBM_COUNTER in counters and counters[HBM_COUNTER] != total:
        fail(errors, "%s: total_bytes %d != %s counter %d", tag, total,
             HBM_COUNTER, counters[HBM_COUNTER])

    key_bytes = 0
    key_refetch = 0
    for key_id, key in mem.get("keys", {}).items():
        ktag = "%s key %s" % (tag, key_id)
        if key.get("fetches", 0) < 1:
            fail(errors, "%s: %d fetches (ledger entry without a fetch)",
                 ktag, key.get("fetches", 0))
        if key.get("refetch_bytes", 0) > key.get("total_bytes", 0):
            fail(errors, "%s: refetch_bytes %d > total_bytes %d", ktag,
                 key["refetch_bytes"], key["total_bytes"])
        if key.get("refetch_bytes", 0) > 0 and key.get("fetches", 0) < 2:
            fail(errors, "%s: refetch bytes with only %d fetch(es)", ktag,
                 key.get("fetches", 0))
        if key.get("operand") not in KEY_OPERANDS:
            fail(errors, "%s: operand %r is not a key class %s", ktag,
                 key.get("operand"), list(KEY_OPERANDS))
        key_bytes += key.get("total_bytes", 0)
        key_refetch += key.get("refetch_bytes", 0)
    if key_bytes != mem.get("key_fetch_bytes", 0):
        fail(errors, "%s: ledger sums to %d fetched bytes but "
             "key_fetch_bytes says %d", tag, key_bytes,
             mem.get("key_fetch_bytes", 0))
    if key_refetch != mem.get("key_refetch_bytes", 0):
        fail(errors, "%s: ledger sums to %d refetched bytes but "
             "key_refetch_bytes says %d", tag, key_refetch,
             mem.get("key_refetch_bytes", 0))
    if key_bytes > total:
        fail(errors, "%s: key bytes %d exceed total traffic %d", tag,
             key_bytes, total)

    bw = mem.get("bw_util", [])
    occ = mem.get("occupancy_bytes", [])
    if not bw or len(bw) != len(occ):
        fail(errors, "%s: bw_util (%d) / occupancy_bytes (%d) must be "
             "equal-length, non-empty epoch vectors", tag, len(bw), len(occ))
    for i, v in enumerate(bw):
        if not 0.0 <= v <= 1.0:
            fail(errors, "%s: bw_util[%d] = %r outside [0, 1]", tag, i, v)
    for i, v in enumerate(occ):
        if not isinstance(v, int) or v < 0:
            fail(errors, "%s: occupancy_bytes[%d] = %r not a non-negative "
                 "integer", tag, i, v)

    if mem.get("scratch_capacity_bytes", 0) <= 0:
        fail(errors, "%s: scratch_capacity_bytes %r not positive", tag,
             mem.get("scratch_capacity_bytes"))
    if "scratch_peak_bytes" not in mem:
        fail(errors, "%s: scratch_peak_bytes missing", tag)
    if total > 0 and mem.get("total_cycles", 0) <= 0:
        fail(errors, "%s: %d bytes moved in %r cycles", tag, total,
             mem.get("total_cycles"))

    return mem.get("key_refetch_bytes", 0)


def main():
    parser = argparse.ArgumentParser(
        description="Validate memory.v1 sections in a metrics report")
    parser.add_argument("report", help="metrics.v1 JSON file")
    parser.add_argument("--min-runs", type=int, default=1,
                        help="require at least N runs with a memory section")
    parser.add_argument("--require-refetch", action="store_true",
                        help="require at least one run with nonzero "
                             "key_refetch_bytes")
    args = parser.parse_args()

    try:
        with open(args.report) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print("error: cannot read %s: %s" % (args.report, exc),
              file=sys.stderr)
        return 2

    if doc.get("schema") != "alchemist.metrics.v1":
        print("error: %s is not a metrics.v1 report (schema %r)"
              % (args.report, doc.get("schema")), file=sys.stderr)
        return 2

    errors = []
    mem_runs = 0
    refetch_total = 0
    for idx, run in enumerate(doc.get("runs", [])):
        if "memory" not in run:
            continue
        mem_runs += 1
        refetch_total += check_run(run, idx, errors)

    if mem_runs < args.min_runs:
        fail(errors, "%d run(s) carry a memory section, need >= %d "
             "(was --mem-profile passed?)", mem_runs, args.min_runs)
    if args.require_refetch and refetch_total == 0:
        fail(errors, "no run reports key re-fetch bytes "
             "(--require-refetch)")

    if errors:
        for e in errors:
            print("FAIL: %s" % e, file=sys.stderr)
        print("%s: %d violation(s) across %d memory run(s)"
              % (args.report, len(errors), mem_runs), file=sys.stderr)
        return 1

    print("%s: %d memory run(s) ok, %d key re-fetch bytes"
          % (args.report, mem_runs, refetch_total))
    return 0


if __name__ == "__main__":
    sys.exit(main())
